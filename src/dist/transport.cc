#include "dist/transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/fault.h"

namespace cac::dist {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw DistError(DistError::Kind::Io,
                  what + ": " + std::strerror(errno));
}

bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

/// Errors worth retrying in place: the socket is still usable, the
/// condition is load/latency, not a dead peer.  EAGAIN can reach the
/// blocking send path via SO_SNDTIMEO or injection; it is load, not
/// death.
bool send_transient(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT ||
         err == ENOBUFS || err == ENOMEM;
}

std::atomic<std::uint64_t> g_send_retries{0};
std::atomic<std::uint64_t> g_connect_retries{0};

std::chrono::steady_clock::time_point now() {
  return std::chrono::steady_clock::now();
}

int ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              now() - start)
                              .count());
}

/// Split "host:port" at the last colon (empty host allowed).
std::pair<std::string, std::string> split_spec(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw DistError(DistError::Kind::Protocol,
                    "endpoint must be host:port, got '" + spec + "'");
  }
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

TransportCounters transport_counters() {
  TransportCounters c;
  c.send_retries = g_send_retries.load(std::memory_order_relaxed);
  c.connect_retries = g_connect_retries.load(std::memory_order_relaxed);
  return c;
}

void transport_counters_reset() {
  g_send_retries.store(0, std::memory_order_relaxed);
  g_connect_retries.store(0, std::memory_order_relaxed);
}

void send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  int backoff_ms = 1;
  int retries_left = 5;
  while (n > 0) {
    int err = support::fault_check("send");
    ssize_t w = -1;
    if (err == 0) {
      w = ::send(fd, p, n, MSG_NOSIGNAL);
      if (w < 0) err = errno;
    }
    if (w < 0) {
      if (err == EINTR) continue;
      if (send_transient(err) && retries_left > 0) {
        --retries_left;
        g_send_retries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 100);
        continue;
      }
      if (peer_gone(err)) {
        throw DistError(DistError::Kind::PeerDied, "peer closed the socket");
      }
      errno = err;
      io_fail("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool pump_reads(int fd, FrameReader& fr, std::uint64_t* bytes) {
  char buf[1 << 16];
  for (;;) {
    if (int err = support::fault_check("recv")) {
      if (peer_gone(err)) return false;
      if (err == EAGAIN || err == EWOULDBLOCK) return true;
      errno = err;
      io_fail("recv");
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      fr.feed(buf, static_cast<std::size_t>(n));
      if (bytes != nullptr) *bytes += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    if (peer_gone(errno)) return false;
    io_fail("recv");
  }
}

bool flush_some(int fd, SendBuf& buf) {
  while (buf.pos < buf.data.size()) {
    if (int err = support::fault_check("send")) {
      if (err == EAGAIN || err == EWOULDBLOCK || send_transient(err)) break;
      if (peer_gone(err)) return false;
      errno = err;
      io_fail("send");
    }
    const ssize_t w =
        ::send(fd, buf.data.data() + buf.pos, buf.data.size() - buf.pos,
               MSG_DONTWAIT | MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (peer_gone(errno)) return false;
      io_fail("send");
    }
    buf.pos += static_cast<std::size_t>(w);
  }
  if (buf.pos == buf.data.size()) {
    buf.data.clear();
    buf.pos = 0;
  } else if (buf.pos >= buf.data.size() / 2) {
    buf.data.erase(0, buf.pos);
    buf.pos = 0;
  }
  return true;
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    io_fail("socketpair");
  }
  return {Fd(fds[0]), Fd(fds[1])};
}

Fd tcp_listen(const std::string& spec) {
  const auto [host, port] = split_spec(spec);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &res);
  if (rc != 0) {
    throw DistError(DistError::Kind::Io,
                    "resolve " + spec + ": " + gai_strerror(rc));
  }
  Fd fd;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd cand(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!cand.valid()) continue;
    const int one = 1;
    ::setsockopt(cand.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(cand.get(), ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(cand.get(), 64) == 0) {
      fd = std::move(cand);
      break;
    }
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) io_fail("listen on " + spec);
  return fd;
}

Fd tcp_accept(int listen_fd) {
  for (;;) {
    if (int err = support::fault_check("accept")) {
      errno = err;
      io_fail("accept");
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    io_fail("accept");
  }
}

Fd tcp_connect(const std::string& spec) {
  if (int err = support::fault_check("connect", spec)) {
    errno = err;
    io_fail("connect to " + spec);
  }
  const auto [host, port] = split_spec(spec);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                    port.c_str(), &hints, &res);
  if (rc != 0) {
    throw DistError(DistError::Kind::Io,
                    "resolve " + spec + ": " + gai_strerror(rc));
  }
  Fd fd;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd cand(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!cand.valid()) continue;
    if (::connect(cand.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(cand.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
      fd = std::move(cand);
      break;
    }
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) io_fail("connect to " + spec);
  return fd;
}

namespace {

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw DistError(DistError::Kind::Protocol,
                    "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Fd unix_listen(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  const sockaddr_un addr = unix_addr(path);
  ::unlink(path.c_str());  // a stale socket file would fail the bind
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    io_fail("bind " + path);
  }
  if (::listen(fd.get(), 64) != 0) io_fail("listen on " + path);
  return fd;
}

Fd unix_accept(int listen_fd) {
  for (;;) {
    if (int err = support::fault_check("accept")) {
      errno = err;
      io_fail("accept");
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    io_fail("accept");
  }
}

Fd unix_connect(const std::string& path) {
  if (int err = support::fault_check("connect", path)) {
    errno = err;
    io_fail("connect to " + path);
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  const sockaddr_un addr = unix_addr(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    io_fail("connect to " + path);
  }
  return fd;
}

Fd connect_with_retry(const std::function<Fd()>& connect_fn,
                      const RetryPolicy& policy, const std::string& what) {
  const auto start = now();
  int backoff_ms = policy.initial_backoff_ms > 0 ? policy.initial_backoff_ms
                                                 : 1;
  std::string last_error;
  for (int attempt = 1;; ++attempt) {
    try {
      return connect_fn();
    } catch (const DistError& e) {
      if (e.kind() != DistError::Kind::Io) throw;
      last_error = e.what();
    }
    const bool out_of_attempts =
        policy.max_attempts > 0 && attempt >= policy.max_attempts;
    const bool out_of_time =
        policy.deadline_ms > 0 && ms_since(start) >= policy.deadline_ms;
    if (out_of_attempts || out_of_time) {
      throw DistError(DistError::Kind::Timeout,
                      what + " unreachable after " +
                          std::to_string(attempt) + " attempt(s): " +
                          last_error);
    }
    g_connect_retries.fetch_add(1, std::memory_order_relaxed);
    int sleep_ms = backoff_ms;
    if (policy.deadline_ms > 0) {
      const int left = policy.deadline_ms - ms_since(start);
      sleep_ms = std::min(sleep_ms, left > 0 ? left : 0);
    }
    if (sleep_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms > 0
                                              ? policy.max_backoff_ms
                                              : backoff_ms);
  }
}

std::optional<Frame> recv_frame(int fd, FrameReader& fr, int deadline_ms) {
  const auto start = now();
  for (;;) {
    if (std::optional<Frame> f = fr.next()) return f;
    int wait_ms = -1;  // poll forever
    if (deadline_ms > 0) {
      wait_ms = deadline_ms - ms_since(start);
      if (wait_ms <= 0) {
        throw DistError(DistError::Kind::Timeout,
                        "no frame within " + std::to_string(deadline_ms) +
                            " ms");
      }
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      io_fail("poll");
    }
    if (rc == 0) continue;  // re-check the deadline at the loop head
    if (!pump_reads(fd, fr)) {
      // EOF: a final complete frame may still be buffered.
      if (std::optional<Frame> f = fr.next()) return f;
      return std::nullopt;
    }
  }
}

}  // namespace cac::dist
