#include "dist/transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cac::dist {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw DistError(DistError::Kind::Io,
                  what + ": " + std::strerror(errno));
}

bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

/// Split "host:port" at the last colon (empty host allowed).
std::pair<std::string, std::string> split_spec(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw DistError(DistError::Kind::Protocol,
                    "endpoint must be host:port, got '" + spec + "'");
  }
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (peer_gone(errno)) {
        throw DistError(DistError::Kind::PeerDied, "peer closed the socket");
      }
      io_fail("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool pump_reads(int fd, FrameReader& fr, std::uint64_t* bytes) {
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      fr.feed(buf, static_cast<std::size_t>(n));
      if (bytes != nullptr) *bytes += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    if (peer_gone(errno)) return false;
    io_fail("recv");
  }
}

bool flush_some(int fd, SendBuf& buf) {
  while (buf.pos < buf.data.size()) {
    const ssize_t w =
        ::send(fd, buf.data.data() + buf.pos, buf.data.size() - buf.pos,
               MSG_DONTWAIT | MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (peer_gone(errno)) return false;
      io_fail("send");
    }
    buf.pos += static_cast<std::size_t>(w);
  }
  if (buf.pos == buf.data.size()) {
    buf.data.clear();
    buf.pos = 0;
  } else if (buf.pos >= buf.data.size() / 2) {
    buf.data.erase(0, buf.pos);
    buf.pos = 0;
  }
  return true;
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    io_fail("socketpair");
  }
  return {Fd(fds[0]), Fd(fds[1])};
}

Fd tcp_listen(const std::string& spec) {
  const auto [host, port] = split_spec(spec);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &res);
  if (rc != 0) {
    throw DistError(DistError::Kind::Io,
                    "resolve " + spec + ": " + gai_strerror(rc));
  }
  Fd fd;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd cand(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!cand.valid()) continue;
    const int one = 1;
    ::setsockopt(cand.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(cand.get(), ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(cand.get(), 64) == 0) {
      fd = std::move(cand);
      break;
    }
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) io_fail("listen on " + spec);
  return fd;
}

Fd tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    io_fail("accept");
  }
}

Fd tcp_connect(const std::string& spec) {
  const auto [host, port] = split_spec(spec);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                    port.c_str(), &hints, &res);
  if (rc != 0) {
    throw DistError(DistError::Kind::Io,
                    "resolve " + spec + ": " + gai_strerror(rc));
  }
  Fd fd;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd cand(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!cand.valid()) continue;
    if (::connect(cand.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(cand.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
      fd = std::move(cand);
      break;
    }
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) io_fail("connect to " + spec);
  return fd;
}

namespace {

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw DistError(DistError::Kind::Protocol,
                    "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Fd unix_listen(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  const sockaddr_un addr = unix_addr(path);
  ::unlink(path.c_str());  // a stale socket file would fail the bind
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    io_fail("bind " + path);
  }
  if (::listen(fd.get(), 64) != 0) io_fail("listen on " + path);
  return fd;
}

Fd unix_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    io_fail("accept");
  }
}

Fd unix_connect(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  const sockaddr_un addr = unix_addr(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    io_fail("connect to " + path);
  }
  return fd;
}

}  // namespace cac::dist
