// Wire format of the distributed explorer (docs/distributed.md).
//
// Everything that crosses a process boundary — frontier states, edge
// resolutions, the control protocol, per-worker checkpoint files and
// the coordinator manifest — is one *frame*: a fixed 20-byte header
// (magic, protocol version, frame type, payload length, and an FNV-1a
// checksum covering the header prefix plus the payload, so damage to
// any frame byte is detected) followed by the payload, encoded with the same
// support/binio.h codec the single-process checkpoint format uses.
// Frame payloads that mention schedule choices or exploration options
// reuse sched::codec (sched/checkpoint_codec.h) byte-for-byte, and
// frontier states travel as StateStore::encode_state records, so the
// distributed layer introduces no second serialization of any sched
// concept.
//
// Robustness contract (pinned by tests/dist/frame_test.cc): a peer fed
// truncated, bit-flipped, or length-lying bytes raises a structured
// DistError/support::BinError and never crashes, hangs, or acts on a
// partially decoded message.  The checksum is validated before any
// payload decoding; counts are validated against the remaining bytes
// before any allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sched/checkpoint.h"
#include "sched/explore.h"

namespace cac::dist {

/// Structured failure anywhere in the distributed layer.
class DistError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    Io,        // socket / file syscall failure
    Corrupt,   // malformed frame: bad magic, checksum, truncation
    Protocol,  // well-formed frame that violates the protocol state
    PeerDied,  // a peer process vanished and recovery is exhausted
    Timeout,   // a deadline expired waiting on a peer (retryable)
  };

  DistError(Kind kind, const std::string& msg)
      : std::runtime_error("dist: " + msg), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

std::string to_string(DistError::Kind k);

/// Global state id: (owning worker, that worker's StateId.v).  The
/// distributed analogue of StateId — edges in the distributed state
/// graph name children by Gid, so a graph part is meaningful outside
/// the process that built it.
struct Gid {
  static constexpr std::uint64_t kInvalid = ~0ull;
  std::uint64_t v = kInvalid;

  static Gid make(std::uint32_t worker, std::uint32_t local) {
    return Gid{(static_cast<std::uint64_t>(worker) << 32) | local};
  }
  [[nodiscard]] std::uint32_t worker() const {
    return static_cast<std::uint32_t>(v >> 32);
  }
  [[nodiscard]] std::uint32_t local() const {
    return static_cast<std::uint32_t>(v);
  }
  [[nodiscard]] bool valid() const { return v != kInvalid; }
  friend bool operator==(const Gid&, const Gid&) = default;
};

/// Which worker owns a state, by its memoized machine hash.  Same
/// splitmix-finalized top bits as the in-process 64-way VisitedShards
/// (explore_parallel.cc) — the process partition is the shard map
/// folded onto n_workers, so every structurally equal machine maps to
/// exactly one owner in every process.
inline std::uint32_t owner_of(std::uint64_t hash, std::uint32_t n_workers) {
  return (static_cast<std::uint32_t>(hash >> 58) & 63u) % n_workers;
}

// --- frame layer -----------------------------------------------------

enum class FrameType : std::uint8_t {
  // worker <-> coordinator (routed work frames carry a u32 target
  // worker as their first payload field)
  kSetup = 1,        // coordinator -> worker: identity, options, resume
  kState = 2,        // routed: frontier state for its owner
  kResolve = 3,      // routed: owner's verdict on a kState
  kRootAck = 4,      // root owner -> coordinator: the root Gid
  kProbe = 5,        // coordinator -> worker: termination probe
  kProbeAck = 6,     // worker -> coordinator: counters + idleness
  kPause = 7,        // coordinator -> worker: stop expanding
  kResume = 8,       // coordinator -> worker: resume expanding
  kWriteCheckpoint = 9,   // coordinator -> worker: persist partition
  kCheckpointAck = 10,    // worker -> coordinator
  kDump = 11,        // coordinator -> worker: send your graph part
  kGraphPart = 12,   // worker -> coordinator: nodes + store + stats
  kStop = 13,        // coordinator -> worker: exit
  // on-disk frames (never sent on a socket)
  kWorkerCheckpoint = 14,  // one worker's partition snapshot
  kManifest = 15,          // coordinator's generation commit record
  // piecemeal recovery (docs/distributed.md): when one worker dies the
  // survivors roll back in-process instead of the whole fleet being
  // relaunched.
  kRollback = 16,     // coordinator -> worker: reload generation g
  kRollbackAck = 17,  // worker -> coordinator: rollback done
  // verification-as-a-service (docs/serve.md): `cacval serve` and its
  // clients exchange UTF-8 JSON documents as frame payloads, reusing
  // this layer's checksummed length-prefixed framing verbatim.
  kServeRequest = 18,   // client -> server: one job request
  kServeResponse = 19,  // server -> client: the job's final response
  kServeEvent = 20,     // server -> client: streamed progress event
};

// v5: GraphPartMsg store stats carry degraded_spill (the worker's
// spill tier failed and it degraded to resident-only).  v4 added the
// kServeRequest/kServeResponse/kServeEvent frames
// (JSON payloads for the verification service) and SetupMsg carries
// die_after_generation.  v3 added the
// transient store-tier knobs to SetupMsg (they are not part of
// codec::encode_options, which persists structural fields only) and
// the kRollback/kRollbackAck recovery frames.
constexpr std::uint8_t kProtoVersion = 5;
constexpr std::size_t kFrameHeaderSize = 4 + 1 + 1 + 2 + 4 + 8;
/// Upper bound on one payload: a graph part carries a whole partition,
/// so the cap is generous — it exists to reject length lies, not to
/// size-limit honest peers.
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

struct Frame {
  FrameType type = FrameType::kStop;
  std::string payload;
};

/// Header + checksum + payload, ready to write to a socket or file.
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame parser over a byte stream.  feed() appends raw
/// bytes; next() yields the next complete, checksum-verified frame or
/// nullopt when more bytes are needed.  Throws DistError(Corrupt) on
/// bad magic / version / reserved bytes, an implausible length, or a
/// checksum mismatch — the stream is then poisoned and must be
/// discarded.
class FrameReader {
 public:
  void feed(const char* data, std::size_t n);
  std::optional<Frame> next();
  /// True when no partial frame is buffered (a clean stream end).
  [[nodiscard]] bool idle() const { return buf_.size() == pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

// --- message payloads ------------------------------------------------
//
// Every message is a struct with encode()/decode(); decode throws
// support::BinError on malformed payloads (wrapped into
// DistError(Corrupt) by the peers).  Routed frames (kState, kResolve)
// put `target` first so the coordinator forwards by peeking exactly
// four payload bytes.

constexpr std::uint32_t kNoWorker = 0xffffffffu;

struct SetupMsg {
  std::uint32_t worker_index = 0;
  std::uint32_t n_workers = 1;
  std::uint64_t program_fp = 0;
  std::uint64_t config_fp = 0;
  /// Structural option fields only (sched::codec::encode_options).
  sched::ExploreOptions options;
  /// Base path for this run's per-worker checkpoint files
  /// ("<base>.g<gen>.w<idx>"); empty disables checkpointing.
  std::string checkpoint_base;
  /// Resume: reload the partition from "<resume_base>.g<gen>.w<idx>".
  std::uint8_t resume = 0;
  std::string resume_base;
  std::uint64_t generation = 0;
  /// Deterministic fault seam (tools/dist_crash_drill.py): the worker
  /// SIGKILLs itself once it owns this many states.  kNoWorker / 0
  /// disables.  The coordinator clears the seam after the first death
  /// so relaunched workers survive.
  std::uint32_t die_worker = kNoWorker;
  std::uint64_t die_after_states = 0;
  /// Hold the death until a checkpoint for generation >= this has been
  /// written by this worker and the coordinator resumed it (0 = no
  /// gate); see DistOptions::die_after_generation.
  std::uint64_t die_after_generation = 0;
  /// Transient store-tier knobs (sched::ExploreOptions::store_*).  Set
  /// explicitly because codec::encode_options persists structural
  /// fields only; the coordinator divides the run's resident budget by
  /// n_workers so the fleet's total matches the configured bound.
  std::string store_spill_dir;
  std::uint64_t store_resident_budget_bytes = 0;
  std::uint64_t store_bloom_bits = 0;
  std::uint32_t store_delta_depth = 8;

  void encode(support::BinWriter& w) const;
  static SetupMsg decode(support::BinReader& r);
};

struct StateMsg {
  std::uint32_t target = 0;  // owner of the carried state
  /// Discovering node (its worker is who gets the kResolve); invalid
  /// for the coordinator's root seed (answered with kRootAck instead).
  Gid parent;
  std::uint32_t edge_index = 0;
  /// Sender's mirror-store id for this state, echoed in the kResolve
  /// so the sender can patch every edge waiting on it.
  std::uint32_t mirror_id = 0;
  std::uint64_t depth = 0;
  /// StateStore::encode_state record.
  std::string state;

  void encode(support::BinWriter& w) const;
  static StateMsg decode(support::BinReader& r);
};

struct ResolveMsg {
  std::uint32_t target = 0;  // the worker that sent the kState
  Gid parent;
  std::uint32_t edge_index = 0;
  std::uint32_t mirror_id = 0;
  std::uint8_t overflow = 0;  // owner's partition is at max_states
  Gid child;                  // invalid iff overflow

  void encode(support::BinWriter& w) const;
  static ResolveMsg decode(support::BinReader& r);
};

struct RootAckMsg {
  Gid root;  // invalid iff even the root was over the state cap

  void encode(support::BinWriter& w) const;
  static RootAckMsg decode(support::BinReader& r);
};

struct ProbeMsg {
  std::uint64_t nonce = 0;

  void encode(support::BinWriter& w) const;
  static ProbeMsg decode(support::BinReader& r);
};

struct ProbeAckMsg {
  std::uint64_t nonce = 0;
  std::uint32_t worker = 0;
  /// Monotone work-frame counters (kState + kResolve only): the
  /// termination detector declares quiescence when two consecutive
  /// probe rounds observe all-idle and identical, balanced counters.
  std::uint64_t sent = 0;
  std::uint64_t processed = 0;
  std::uint8_t idle = 0;    // no queued expansion tasks
  std::uint8_t paused = 0;  // parked by kPause
  std::uint64_t owned = 0;  // states in this worker's partition
  std::uint64_t rss_bytes = 0;

  void encode(support::BinWriter& w) const;
  static ProbeAckMsg decode(support::BinReader& r);
};

struct WriteCheckpointMsg {
  std::uint64_t generation = 0;

  void encode(support::BinWriter& w) const;
  static WriteCheckpointMsg decode(support::BinReader& r);
};

/// Piecemeal recovery: a survivor discards its in-memory partition and
/// reloads "<base>.g<gen>.w<idx>" — the same file a freshly forked
/// replacement resumes from — so the whole fleet re-enters the last
/// committed generation without being re-exec'd.
struct RollbackMsg {
  std::uint64_t generation = 0;
  std::string resume_base;
  /// Epoch counter for the recovery barrier: frames from before the
  /// rollback are stale and the coordinator discards work frames until
  /// every survivor acked this epoch.
  std::uint32_t epoch = 0;

  void encode(support::BinWriter& w) const;
  static RollbackMsg decode(support::BinReader& r);
};

struct RollbackAckMsg {
  std::uint32_t worker = 0;
  std::uint32_t epoch = 0;
  std::uint8_t ok = 0;
  std::string error;

  void encode(support::BinWriter& w) const;
  static RollbackAckMsg decode(support::BinReader& r);
};

struct CheckpointAckMsg {
  std::uint32_t worker = 0;
  std::uint8_t ok = 0;
  std::string error;

  void encode(support::BinWriter& w) const;
  static CheckpointAckMsg decode(support::BinReader& r);
};

/// One worker's slice of the distributed state graph: node flags and
/// Gid-valued edges (in eligible-choice order, exactly as the serial
/// engine would enumerate them), the encoded partition StateStore the
/// coordinator materializes finals from, and the worker's stats.
struct GraphPartMsg {
  struct Edge {
    sem::Choice choice;
    std::uint8_t faulted = 0;
    std::uint8_t overflow = 0;
    Gid child;  // invalid iff faulted or overflow
    std::string fault;
  };
  struct Node {
    std::uint32_t local = 0;  // StateId.v in the owner's store
    std::uint8_t processed = 0;
    std::uint8_t terminal = 0;
    std::uint8_t stuck = 0;
    std::string stuck_reason;
    std::vector<Edge> edges;
  };

  std::uint32_t worker = 0;
  std::uint8_t has_root = 0;
  std::uint32_t root_local = 0;
  std::string store;  // StateStore::encode bytes
  std::vector<Node> nodes;
  // stats
  std::uint64_t owned = 0;
  std::uint64_t frontier_sent = 0;   // kState frames sent
  std::uint64_t resolves_sent = 0;   // kResolve frames sent
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// This worker's partition-store tier accounting; the coordinator
  /// sums the parts into ExploreResult::store_stats.
  sched::StateStore::Stats store_stats;

  void encode(support::BinWriter& w) const;
  static GraphPartMsg decode(support::BinReader& r);
};

/// On-disk snapshot of one worker's partition (frame kWorkerCheckpoint
/// at "<base>.g<gen>.w<idx>").  Written only at a coordinator-enforced
/// quiescent cut, so there are never unresolved cross-worker edges or
/// in-flight frames to persist.
struct WorkerCheckpointMsg {
  std::uint64_t program_fp = 0;
  std::uint64_t config_fp = 0;
  sched::ExploreOptions options;
  std::uint32_t n_workers = 1;
  std::uint32_t worker_index = 0;
  std::uint64_t generation = 0;
  std::uint8_t has_root = 0;
  std::uint32_t root_local = 0;
  std::string store;  // StateStore::encode bytes
  std::vector<GraphPartMsg::Node> nodes;
  /// Discovered-but-unexpanded (StateId.v, depth) pairs.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> frontier;

  void encode(support::BinWriter& w) const;
  static WorkerCheckpointMsg decode(support::BinReader& r);
};

/// The coordinator's generation commit record (frame kManifest at the
/// checkpoint path).  A generation exists iff its manifest does: the
/// manifest is renamed into place only after every worker acknowledged
/// its "<base>.g<gen>.w<idx>" file, so resume always sees a complete,
/// mutually consistent set of partition snapshots.
struct ManifestMsg {
  std::uint64_t program_fp = 0;
  std::uint64_t config_fp = 0;
  sched::ExploreOptions options;
  std::uint32_t n_workers = 1;
  std::uint64_t generation = 0;
  Gid root;

  void encode(support::BinWriter& w) const;
  static ManifestMsg decode(support::BinReader& r);
};

// --- helpers ---------------------------------------------------------

/// Encode a raw machine in the StateStore::encode_state record layout
/// (the coordinator seeds the root without owning a store).
void encode_machine_as_state(const sem::Machine& m, support::BinWriter& w);

/// Atomic write of a single on-disk frame (tmp + fsync + rename) and
/// its fully-validating load.  Errors surface as sched::CheckpointError
/// so distributed checkpoint failures compose with the existing
/// cacval/ctest handling of single-process checkpoint damage.
void write_frame_file(const std::string& path, FrameType type,
                      std::string_view payload);
Frame load_frame_file(const std::string& path, FrameType want);

/// Per-worker checkpoint file path for one generation.
std::string worker_checkpoint_path(const std::string& base,
                                   std::uint64_t generation,
                                   std::uint32_t worker);

}  // namespace cac::dist
