#include "dist/worker.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dist/transport.h"
#include "dist/wire.h"
#include "sched/checkpoint.h"
#include "sched/explore_internal.h"
#include "sched/state_store.h"
#include "support/binio.h"

namespace cac::dist {

namespace {

using support::BinError;
using support::BinReader;
using support::BinWriter;

class Worker {
 public:
  Worker(int fd, const ptx::Program& prg, const sem::KernelConfig& kc)
      : fd_(fd), prg_(prg), kc_(kc) {}

  void run() {
    while (!stop_) {
      // Drain buffered frames before treating EOF as fatal: the kStop
      // frame and the close often land in the same recv batch.
      const bool alive = pump_reads(fd_, reader_, &bytes_in_);
      while (std::optional<Frame> f = reader_.next()) {
        handle(*f);
        if (stop_) return;
      }
      if (!alive) {
        throw DistError(DistError::Kind::PeerDied,
                        "coordinator closed the connection");
      }
      if (have_setup_ && !paused_ && !tasks_.empty()) {
        const Task t = tasks_.back();
        tasks_.pop_back();
        expand(t);
        continue;
      }
      pollfd p{fd_, POLLIN, 0};
      ::poll(&p, 1, 20);
    }
  }

 private:
  /// One outgoing transition.  `pending` marks a remote child whose
  /// kResolve has not arrived yet; quiescence guarantees none remain
  /// by the time a checkpoint or graph part is serialized.
  struct Edge {
    sem::Choice choice;
    bool faulted = false;
    bool overflow = false;
    bool pending = false;
    std::string fault;
    Gid child;
  };
  struct Node {
    sched::StateId id;
    bool processed = false;
    bool terminal = false;
    bool stuck = false;
    std::string stuck_reason;
    std::vector<Edge> edges;
  };
  struct Task {
    Node* node = nullptr;
    std::uint64_t depth = 0;
  };
  /// Dedup record for one distinct remote state: resolved owner
  /// verdict plus the local edges still waiting for it.
  struct MirrorEntry {
    bool resolved = false;
    bool overflow = false;
    Gid child;
    std::vector<std::pair<Node*, std::uint32_t>> waiters;
  };

  template <typename Msg>
  void send_msg(FrameType t, const Msg& m) {
    BinWriter w;
    m.encode(w);
    const std::string bytes = encode_frame(t, w.buffer());
    send_all(fd_, bytes.data(), bytes.size());
    bytes_out_ += bytes.size();
  }

  [[noreturn]] static void protocol(const std::string& what) {
    throw DistError(DistError::Kind::Protocol, what);
  }

  void handle(const Frame& f) {
    if (!have_setup_ && f.type != FrameType::kSetup) {
      protocol("first frame must be setup");
    }
    try {
      BinReader r(f.payload);
      switch (f.type) {
        case FrameType::kSetup: {
          if (have_setup_) protocol("duplicate setup");
          on_setup(SetupMsg::decode(r));
          break;
        }
        case FrameType::kState:
          on_state(StateMsg::decode(r));
          break;
        case FrameType::kResolve:
          on_resolve(ResolveMsg::decode(r));
          break;
        case FrameType::kProbe:
          on_probe(ProbeMsg::decode(r));
          break;
        case FrameType::kPause:
          paused_ = true;
          break;
        case FrameType::kResume:
          paused_ = false;
          break;
        case FrameType::kWriteCheckpoint:
          on_write_checkpoint(WriteCheckpointMsg::decode(r));
          break;
        case FrameType::kRollback:
          on_rollback(RollbackMsg::decode(r));
          break;
        case FrameType::kDump:
          on_dump();
          break;
        case FrameType::kStop:
          stop_ = true;
          break;
        default:
          protocol("unexpected frame type " +
                   std::to_string(static_cast<int>(f.type)));
      }
      if (!r.done()) throw BinError("trailing bytes after payload");
    } catch (const BinError& e) {
      throw DistError(DistError::Kind::Corrupt, e.what());
    }
  }

  [[nodiscard]] sched::StoreOptions store_options() const {
    sched::StoreOptions so;
    so.spill_dir = setup_.store_spill_dir;
    so.resident_budget_bytes = setup_.store_resident_budget_bytes;
    so.bloom_bits_per_shard = setup_.store_bloom_bits;
    so.delta_max_depth = setup_.store_delta_depth;
    return so;
  }

  void on_setup(SetupMsg m) {
    if (m.program_fp != sched::program_fingerprint(prg_) ||
        m.config_fp != sched::config_fingerprint(kc_)) {
      protocol("setup fingerprints do not match this worker's kernel");
    }
    setup_ = std::move(m);
    have_setup_ = true;
    // The mirror shares the tier knobs: a reduce-like kernel's foreign
    // children dominate a worker's footprint just like its owned ones.
    store_ = std::make_unique<sched::StateStore>(store_options());
    mirror_ = std::make_unique<sched::StateStore>(store_options());
    if (setup_.resume != 0) restore();
  }

  /// Piecemeal recovery: discard the in-memory partition and reload
  /// the committed generation — the in-process equivalent of being
  /// re-exec'd with a resume SetupMsg.  The worker parks (paused)
  /// until the coordinator's barrier completes and kResume arrives.
  void on_rollback(const RollbackMsg& m) {
    RollbackAckMsg ack;
    ack.worker = setup_.worker_index;
    ack.epoch = m.epoch;
    try {
      store_ = std::make_unique<sched::StateStore>(store_options());
      mirror_ = std::make_unique<sched::StateStore>(store_options());
      nodes_.clear();
      node_of_.clear();
      tasks_.clear();
      mirror_entries_.clear();
      has_root_ = false;
      root_local_ = 0;
      // The coordinator resets its work-frame ledger for the new
      // epoch; restart ours to keep the quiescence counters balanced.
      sent_ = 0;
      processed_ = 0;
      setup_.resume = 1;
      setup_.resume_base = m.resume_base;
      setup_.generation = m.generation;
      restore();
      paused_ = true;  // until the coordinator's post-barrier kResume
      ack.ok = 1;
    } catch (const std::exception& e) {
      ack.ok = 0;
      ack.error = e.what();
    }
    send_msg(FrameType::kRollbackAck, ack);
  }

  Node* add_node(sched::StateId id) {
    nodes_.push_back(Node{});
    Node* n = &nodes_.back();
    n->id = id;
    node_of_.emplace(id.v, n);
    return n;
  }

  /// Deterministic SIGKILL seam for the crash drill: die the moment
  /// this partition reaches the configured size.  A real SIGKILL —
  /// no unwinding, no flushing — exactly what an OOM kill or a lost
  /// host looks like to the coordinator.
  void die_check() {
    if (setup_.die_worker == setup_.worker_index &&
        setup_.die_after_states != 0 &&
        store_->size() >= setup_.die_after_states &&
        ckpt_written_gen_ >= setup_.die_after_generation) {
      // The generation gate makes the piecemeal drill deterministic:
      // die_check only runs while unpaused, and the coordinator
      // resumes the fleet strictly after committing the manifest, so
      // ckpt_written_gen_ >= G here implies generation G is committed.
      ::kill(::getpid(), SIGKILL);
    }
  }

  void on_state(const StateMsg& m) {
    BinReader sr(m.state);
    const sched::StateStore::WireIntern wi =
        store_->decode_state(sr, setup_.options.max_states);
    if (!sr.done()) throw BinError("trailing bytes in state record");
    if (owner_of(wi.hash, setup_.n_workers) != setup_.worker_index) {
      protocol("received a state this worker does not own");
    }
    ++processed_;
    const bool overflow = !wi.result.id.valid();
    if (!overflow && wi.result.inserted) {
      Node* n = add_node(wi.result.id);
      tasks_.push_back(Task{n, m.depth});
      die_check();
    }
    const Gid child = overflow
                          ? Gid{}
                          : Gid::make(setup_.worker_index, wi.result.id.v);
    if (!m.parent.valid()) {
      // Coordinator's root seed.
      if (!overflow) {
        has_root_ = true;
        root_local_ = wi.result.id.v;
      }
      send_msg(FrameType::kRootAck, RootAckMsg{child});
      return;
    }
    ResolveMsg rm;
    rm.target = m.parent.worker();
    rm.parent = m.parent;
    rm.edge_index = m.edge_index;
    rm.mirror_id = m.mirror_id;
    rm.overflow = overflow ? 1 : 0;
    rm.child = child;
    send_msg(FrameType::kResolve, rm);
    ++sent_;
    ++resolves_sent_;
  }

  static void patch(Edge& e, const MirrorEntry& entry) {
    e.pending = false;
    if (entry.overflow) {
      e.overflow = true;
    } else {
      e.child = entry.child;
    }
  }

  void on_resolve(const ResolveMsg& m) {
    ++processed_;
    const auto it = mirror_entries_.find(m.mirror_id);
    if (it == mirror_entries_.end()) {
      protocol("resolve for an unknown mirror id");
    }
    MirrorEntry& entry = it->second;
    entry.resolved = true;
    entry.overflow = m.overflow != 0;
    entry.child = m.child;
    for (const auto& [node, edge_index] : entry.waiters) {
      patch(node->edges[edge_index], entry);
    }
    entry.waiters.clear();
  }

  void on_probe(const ProbeMsg& m) {
    ProbeAckMsg ack;
    ack.nonce = m.nonce;
    ack.worker = setup_.worker_index;
    ack.sent = sent_;
    ack.processed = processed_;
    ack.idle = tasks_.empty() ? 1 : 0;
    ack.paused = paused_ ? 1 : 0;
    ack.owned = store_->size();
    // Report working-set memory: spilled segments are reclaimable page
    // cache, so the coordinator's fleet-RSS budget must not see them.
    std::uint64_t rss = sched::current_rss_bytes();
    const std::uint64_t spilled = store_->stats().spilled_bytes +
                                  mirror_->stats().spilled_bytes;
    rss = rss > spilled ? rss - spilled : 0;
    ack.rss_bytes = rss;
    send_msg(FrameType::kProbeAck, ack);
  }

  /// Mirror of the in-process engine's expand()
  /// (explore_parallel.cc): same classification, same eligible-choice
  /// edge order, so the merged graph is the one the serial DFS would
  /// build — with the single difference that a child hashing to a
  /// foreign partition is interned remotely via kState/kResolve.
  void expand(const Task& t) {
    Node* node = t.node;
    const sem::Machine state = store_->materialize(node->id);

    if (sem::terminated(prg_, state.grid)) {
      node->terminal = true;
      node->processed = true;
      return;
    }
    auto eligible = sem::eligible_choices(prg_, state.grid);
    if (setup_.options.partial_order_reduction) {
      sched::internal::reduce_choices(
          prg_, state.grid, setup_.options.por_independent_pcs, eligible);
    }
    if (eligible.empty()) {
      node->stuck = true;
      node->stuck_reason = sem::stuck_reason(prg_, state.grid);
      node->processed = true;
      return;
    }
    if (t.depth >= setup_.options.max_depth) {
      // Depth-gated: the coordinator's replay reports DepthExceeded
      // when it reaches this unprocessed node, as the serial engine
      // would.
      return;
    }

    node->edges.reserve(eligible.size());
    for (const sem::Choice& c : eligible) {
      Edge e;
      e.choice = c;
      sem::Machine child(state);
      const sem::StepResult sr = sem::apply_choice(
          prg_, kc_, child, c, setup_.options.step_opts, nullptr);
      if (!sr.ok()) {
        e.faulted = true;
        e.fault = sr.fault;
        node->edges.push_back(std::move(e));
        continue;
      }
      const std::uint64_t h = child.hash();  // memoized pre-intern
      const std::uint32_t owner = owner_of(h, setup_.n_workers);
      if (owner == setup_.worker_index) {
        // The expanding node seeds delta encoding, as in the
        // in-process engines.
        const auto r =
            store_->intern(child, setup_.options.max_states, node->id);
        if (!r.id.valid()) {
          e.overflow = true;
          node->edges.push_back(std::move(e));
          continue;
        }
        e.child = Gid::make(setup_.worker_index, r.id.v);
        node->edges.push_back(std::move(e));
        if (r.inserted) {
          Node* cn = add_node(r.id);
          tasks_.push_back(Task{cn, t.depth + 1});
          die_check();
        }
        continue;
      }
      // Foreign child: dedup through the mirror store so each distinct
      // remote state is shipped (and resolved) exactly once.
      const auto mr = mirror_->intern(child);
      const auto edge_index =
          static_cast<std::uint32_t>(node->edges.size());
      if (mr.inserted) {
        e.pending = true;
        node->edges.push_back(std::move(e));
        mirror_entries_[mr.id.v].waiters.emplace_back(node, edge_index);
        BinWriter sw;
        mirror_->encode_state(mr.id, sw);
        StateMsg sm;
        sm.target = owner;
        sm.parent = Gid::make(setup_.worker_index, node->id.v);
        sm.edge_index = edge_index;
        sm.mirror_id = mr.id.v;
        sm.depth = t.depth + 1;
        sm.state = sw.take();
        send_msg(FrameType::kState, sm);
        ++sent_;
        ++frontier_sent_;
      } else {
        MirrorEntry& entry = mirror_entries_[mr.id.v];
        if (entry.resolved) {
          patch(e, entry);
          node->edges.push_back(std::move(e));
        } else {
          e.pending = true;
          node->edges.push_back(std::move(e));
          entry.waiters.emplace_back(node, edge_index);
        }
      }
    }
    node->processed = true;
  }

  std::vector<GraphPartMsg::Node> snapshot_nodes() const {
    std::vector<GraphPartMsg::Node> out;
    out.reserve(nodes_.size());
    for (const Node& n : nodes_) {
      GraphPartMsg::Node rec;
      rec.local = n.id.v;
      rec.processed = n.processed ? 1 : 0;
      rec.terminal = n.terminal ? 1 : 0;
      rec.stuck = n.stuck ? 1 : 0;
      rec.stuck_reason = n.stuck_reason;
      rec.edges.reserve(n.edges.size());
      for (const Edge& e : n.edges) {
        if (e.pending) {
          protocol("serializing a graph with unresolved edges (the "
                   "coordinator skipped quiescence)");
        }
        GraphPartMsg::Edge er;
        er.choice = e.choice;
        er.faulted = e.faulted ? 1 : 0;
        er.overflow = e.overflow ? 1 : 0;
        er.child = e.child;
        er.fault = e.fault;
        rec.edges.push_back(std::move(er));
      }
      out.push_back(std::move(rec));
    }
    return out;
  }

  void on_write_checkpoint(const WriteCheckpointMsg& m) {
    CheckpointAckMsg ack;
    ack.worker = setup_.worker_index;
    try {
      WorkerCheckpointMsg ck;
      ck.program_fp = setup_.program_fp;
      ck.config_fp = setup_.config_fp;
      ck.options = setup_.options;
      ck.n_workers = setup_.n_workers;
      ck.worker_index = setup_.worker_index;
      ck.generation = m.generation;
      ck.has_root = has_root_ ? 1 : 0;
      ck.root_local = root_local_;
      BinWriter sw;
      store_->encode(sw);
      ck.store = sw.take();
      ck.nodes = snapshot_nodes();
      ck.frontier.reserve(tasks_.size());
      for (const Task& t : tasks_) {
        ck.frontier.emplace_back(t.node->id.v, t.depth);
      }
      BinWriter w;
      ck.encode(w);
      write_frame_file(
          worker_checkpoint_path(setup_.checkpoint_base, m.generation,
                                 setup_.worker_index),
          FrameType::kWorkerCheckpoint, w.buffer());
      ckpt_written_gen_ = m.generation;
      ack.ok = 1;
    } catch (const std::exception& e) {
      ack.ok = 0;
      ack.error = e.what();
    }
    send_msg(FrameType::kCheckpointAck, ack);
  }

  void on_dump() {
    GraphPartMsg part;
    part.worker = setup_.worker_index;
    part.has_root = has_root_ ? 1 : 0;
    part.root_local = root_local_;
    BinWriter sw;
    store_->encode(sw);
    part.store = sw.take();
    part.nodes = snapshot_nodes();
    part.owned = store_->size();
    part.store_stats = store_->stats();
    part.frontier_sent = frontier_sent_;
    part.resolves_sent = resolves_sent_;
    part.bytes_sent = bytes_out_;
    part.bytes_received = bytes_in_;
    send_msg(FrameType::kGraphPart, part);
  }

  /// Resume: reload this partition from its generation file.  The
  /// cut was quiescent, so every edge is resolved and the mirror cache
  /// can start empty — re-sending a state the owner already holds is
  /// answered from its store without re-expansion.
  void restore() {
    const std::string path = worker_checkpoint_path(
        setup_.resume_base, setup_.generation, setup_.worker_index);
    const Frame f = load_frame_file(path, FrameType::kWorkerCheckpoint);
    WorkerCheckpointMsg ck;
    try {
      BinReader r(f.payload);
      ck = WorkerCheckpointMsg::decode(r);
      if (!r.done()) throw BinError("trailing bytes after payload");
    } catch (const BinError& e) {
      throw sched::CheckpointError(sched::CheckpointError::Kind::Corrupt,
                                   std::string(e.what()) + " in " + path);
    }
    if (ck.program_fp != setup_.program_fp ||
        ck.config_fp != setup_.config_fp) {
      throw sched::CheckpointError(
          sched::CheckpointError::Kind::Mismatch,
          path + " belongs to a different run");
    }
    if (ck.n_workers != setup_.n_workers ||
        ck.worker_index != setup_.worker_index ||
        ck.generation != setup_.generation) {
      throw sched::CheckpointError(
          sched::CheckpointError::Kind::Mismatch,
          path + " belongs to a different partition or generation");
    }
    try {
      BinReader sr(ck.store);
      store_->decode(sr);
      if (!sr.done()) throw BinError("trailing bytes after store");
    } catch (const BinError& e) {
      throw sched::CheckpointError(sched::CheckpointError::Kind::Corrupt,
                                   std::string(e.what()) + " in " + path);
    }
    for (const GraphPartMsg::Node& rec : ck.nodes) {
      Node* n = add_node(sched::StateId{rec.local});
      n->processed = rec.processed != 0;
      n->terminal = rec.terminal != 0;
      n->stuck = rec.stuck != 0;
      n->stuck_reason = rec.stuck_reason;
      n->edges.reserve(rec.edges.size());
      for (const GraphPartMsg::Edge& er : rec.edges) {
        Edge e;
        e.choice = er.choice;
        e.faulted = er.faulted != 0;
        e.overflow = er.overflow != 0;
        e.child = er.child;
        e.fault = er.fault;
        n->edges.push_back(std::move(e));
      }
    }
    has_root_ = ck.has_root != 0;
    root_local_ = ck.root_local;
    for (const auto& [local, depth] : ck.frontier) {
      const auto it = node_of_.find(local);
      if (it == node_of_.end()) {
        throw sched::CheckpointError(
            sched::CheckpointError::Kind::Corrupt,
            "frontier references unknown node in " + path);
      }
      tasks_.push_back(Task{it->second, depth});
    }
  }

  const int fd_;
  const ptx::Program& prg_;
  const sem::KernelConfig& kc_;
  FrameReader reader_;
  SetupMsg setup_;
  bool have_setup_ = false;
  bool paused_ = false;
  /// Highest generation this worker has written a checkpoint for
  /// (gates the die seam, see die_check()).
  std::uint64_t ckpt_written_gen_ = 0;
  bool stop_ = false;

  // Pointers so a kRollback can discard and rebuild them wholesale
  // (StateStore is not movable — it owns mutexes and a spill file).
  std::unique_ptr<sched::StateStore> store_;   // owned partition
  std::unique_ptr<sched::StateStore> mirror_;  // foreign-child dedup cache
  std::deque<Node> nodes_;    // stable addresses, insertion order
  std::unordered_map<std::uint32_t, Node*> node_of_;  // StateId.v -> node
  std::deque<Task> tasks_;
  std::unordered_map<std::uint32_t, MirrorEntry> mirror_entries_;
  bool has_root_ = false;
  std::uint32_t root_local_ = 0;

  // Monotone work-frame counters (kState + kResolve) feeding the
  // coordinator's two-round quiescence detector.
  std::uint64_t sent_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t frontier_sent_ = 0;
  std::uint64_t resolves_sent_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace

void run_worker(int fd, const ptx::Program& prg,
                const sem::KernelConfig& kc) {
  Worker w(fd, prg, kc);
  w.run();
}

}  // namespace cac::dist
