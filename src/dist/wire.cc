#include "dist/wire.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "sched/checkpoint_codec.h"
#include "sem/state.h"
#include "support/binio.h"
#include "support/hash.h"
#include "support/io.h"

namespace cac::dist {

using support::BinError;
using support::BinReader;
using support::BinWriter;

std::string to_string(DistError::Kind k) {
  switch (k) {
    case DistError::Kind::Io: return "io";
    case DistError::Kind::Corrupt: return "corrupt";
    case DistError::Kind::Protocol: return "protocol";
    case DistError::Kind::PeerDied: return "peer-died";
    case DistError::Kind::Timeout: return "timeout";
  }
  return "?";
}

// --- frame layer -----------------------------------------------------

namespace {

constexpr char kMagic[4] = {'C', 'A', 'C', 'F'};

void put_u16(std::string& s, std::uint16_t v) {
  s.push_back(static_cast<char>(v & 0xff));
  s.push_back(static_cast<char>((v >> 8) & 0xff));
}
void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<unsigned char>(p[1]) << 8));
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw DistError(DistError::Kind::Corrupt, what);
}

void encode_gid(BinWriter& w, Gid g) { w.u64(g.v); }
Gid decode_gid(BinReader& r) { return Gid{r.u64()}; }

void encode_node(BinWriter& w, const GraphPartMsg::Node& n) {
  w.u32(n.local);
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (n.processed ? 1 : 0) | (n.terminal ? 2 : 0) | (n.stuck ? 4 : 0));
  w.u8(flags);
  w.str(n.stuck_reason);
  w.u64(n.edges.size());
  for (const GraphPartMsg::Edge& e : n.edges) {
    sched::codec::encode_choice(w, e.choice);
    w.u8(static_cast<std::uint8_t>((e.faulted ? 1 : 0) |
                                   (e.overflow ? 2 : 0)));
    encode_gid(w, e.child);
    w.str(e.fault);
  }
}

GraphPartMsg::Node decode_node(BinReader& r) {
  GraphPartMsg::Node n;
  n.local = r.u32();
  const std::uint8_t flags = r.u8();
  if (flags > 7) throw BinError("bad node flags");
  n.processed = (flags & 1) != 0 ? 1 : 0;
  n.terminal = (flags & 2) != 0 ? 1 : 0;
  n.stuck = (flags & 4) != 0 ? 1 : 0;
  n.stuck_reason = r.str();
  const std::uint64_t ne = r.count();
  n.edges.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    GraphPartMsg::Edge e;
    e.choice = sched::codec::decode_choice(r);
    const std::uint8_t eflags = r.u8();
    if (eflags > 3) throw BinError("bad edge flags");
    e.faulted = (eflags & 1) != 0 ? 1 : 0;
    e.overflow = (eflags & 2) != 0 ? 1 : 0;
    e.child = decode_gid(r);
    e.fault = r.str();
    n.edges.push_back(std::move(e));
  }
  return n;
}

void encode_nodes(BinWriter& w, const std::vector<GraphPartMsg::Node>& ns) {
  w.u64(ns.size());
  for (const GraphPartMsg::Node& n : ns) encode_node(w, n);
}

std::vector<GraphPartMsg::Node> decode_nodes(BinReader& r) {
  const std::uint64_t n = r.count();
  std::vector<GraphPartMsg::Node> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_node(r));
  return out;
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw DistError(DistError::Kind::Protocol, "frame payload over cap");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kProtoVersion));
  out.push_back(static_cast<char>(type));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  // The checksum covers the header prefix (magic through length) as
  // well as the payload, so a flipped frame-type or length byte cannot
  // masquerade as a valid frame of another shape.
  const std::uint64_t sum =
      fnv1a(payload.data(), payload.size(), fnv1a(out.data(), out.size()));
  put_u64(out, sum);
  out.append(payload.data(), payload.size());
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<Frame> FrameReader::next() {
  if (buf_.size() - pos_ < kFrameHeaderSize) return std::nullopt;
  const char* h = buf_.data() + pos_;
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    corrupt("bad frame magic");
  }
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != kProtoVersion) {
    corrupt("frame protocol version " + std::to_string(version) +
            ", this build speaks " + std::to_string(kProtoVersion));
  }
  const auto type = static_cast<std::uint8_t>(h[5]);
  if (type < static_cast<std::uint8_t>(FrameType::kSetup) ||
      type > static_cast<std::uint8_t>(FrameType::kServeEvent)) {
    corrupt("unknown frame type " + std::to_string(type));
  }
  if (get_u16(h + 6) != 0) corrupt("nonzero reserved frame field");
  const std::uint64_t len = get_u32(h + 8);
  if (len > kMaxFramePayload) corrupt("frame payload length over cap");
  if (buf_.size() - pos_ - kFrameHeaderSize < len) return std::nullopt;
  const std::string_view payload(buf_.data() + pos_ + kFrameHeaderSize,
                                 len);
  const std::uint64_t want =
      fnv1a(payload.data(), payload.size(), fnv1a(h, 12));
  if (want != get_u64(h + 12)) corrupt("frame checksum mismatch");
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload.assign(payload);
  pos_ += kFrameHeaderSize + len;
  return f;
}

// --- message payloads ------------------------------------------------

void SetupMsg::encode(BinWriter& w) const {
  w.u32(worker_index);
  w.u32(n_workers);
  w.u64(program_fp);
  w.u64(config_fp);
  sched::codec::encode_options(w, options);
  w.str(checkpoint_base);
  w.u8(resume);
  w.str(resume_base);
  w.u64(generation);
  w.u32(die_worker);
  w.u64(die_after_states);
  w.u64(die_after_generation);
  w.str(store_spill_dir);
  w.u64(store_resident_budget_bytes);
  w.u64(store_bloom_bits);
  w.u32(store_delta_depth);
}

SetupMsg SetupMsg::decode(BinReader& r) {
  SetupMsg m;
  m.worker_index = r.u32();
  m.n_workers = r.u32();
  if (m.n_workers == 0 || m.worker_index >= m.n_workers) {
    throw BinError("bad worker identity in setup");
  }
  m.program_fp = r.u64();
  m.config_fp = r.u64();
  m.options = sched::codec::decode_options(r);
  m.checkpoint_base = r.str();
  m.resume = r.u8();
  if (m.resume > 1) throw BinError("bad resume flag in setup");
  m.resume_base = r.str();
  m.generation = r.u64();
  m.die_worker = r.u32();
  m.die_after_states = r.u64();
  m.die_after_generation = r.u64();
  m.store_spill_dir = r.str();
  m.store_resident_budget_bytes = r.u64();
  m.store_bloom_bits = r.u64();
  m.store_delta_depth = r.u32();
  return m;
}

void RollbackMsg::encode(BinWriter& w) const {
  w.u64(generation);
  w.str(resume_base);
  w.u32(epoch);
}

RollbackMsg RollbackMsg::decode(BinReader& r) {
  RollbackMsg m;
  m.generation = r.u64();
  m.resume_base = r.str();
  m.epoch = r.u32();
  return m;
}

void RollbackAckMsg::encode(BinWriter& w) const {
  w.u32(worker);
  w.u32(epoch);
  w.u8(ok);
  w.str(error);
}

RollbackAckMsg RollbackAckMsg::decode(BinReader& r) {
  RollbackAckMsg m;
  m.worker = r.u32();
  m.epoch = r.u32();
  m.ok = r.u8();
  if (m.ok > 1) throw BinError("bad ok flag in rollback ack");
  m.error = r.str();
  return m;
}

void StateMsg::encode(BinWriter& w) const {
  w.u32(target);
  encode_gid(w, parent);
  w.u32(edge_index);
  w.u32(mirror_id);
  w.u64(depth);
  w.str(state);
}

StateMsg StateMsg::decode(BinReader& r) {
  StateMsg m;
  m.target = r.u32();
  m.parent = decode_gid(r);
  m.edge_index = r.u32();
  m.mirror_id = r.u32();
  m.depth = r.u64();
  m.state = r.str();
  return m;
}

void ResolveMsg::encode(BinWriter& w) const {
  w.u32(target);
  encode_gid(w, parent);
  w.u32(edge_index);
  w.u32(mirror_id);
  w.u8(overflow);
  encode_gid(w, child);
}

ResolveMsg ResolveMsg::decode(BinReader& r) {
  ResolveMsg m;
  m.target = r.u32();
  m.parent = decode_gid(r);
  m.edge_index = r.u32();
  m.mirror_id = r.u32();
  m.overflow = r.u8();
  if (m.overflow > 1) throw BinError("bad overflow flag in resolve");
  m.child = decode_gid(r);
  if (m.overflow == 0 && !m.child.valid()) {
    throw BinError("resolve carries no child and no overflow");
  }
  return m;
}

void RootAckMsg::encode(BinWriter& w) const { encode_gid(w, root); }

RootAckMsg RootAckMsg::decode(BinReader& r) {
  return RootAckMsg{decode_gid(r)};
}

void ProbeMsg::encode(BinWriter& w) const { w.u64(nonce); }

ProbeMsg ProbeMsg::decode(BinReader& r) { return ProbeMsg{r.u64()}; }

void ProbeAckMsg::encode(BinWriter& w) const {
  w.u64(nonce);
  w.u32(worker);
  w.u64(sent);
  w.u64(processed);
  w.u8(idle);
  w.u8(paused);
  w.u64(owned);
  w.u64(rss_bytes);
}

ProbeAckMsg ProbeAckMsg::decode(BinReader& r) {
  ProbeAckMsg m;
  m.nonce = r.u64();
  m.worker = r.u32();
  m.sent = r.u64();
  m.processed = r.u64();
  m.idle = r.u8();
  if (m.idle > 1) throw BinError("bad idle flag in probe ack");
  m.paused = r.u8();
  if (m.paused > 1) throw BinError("bad paused flag in probe ack");
  m.owned = r.u64();
  m.rss_bytes = r.u64();
  return m;
}

void WriteCheckpointMsg::encode(BinWriter& w) const { w.u64(generation); }

WriteCheckpointMsg WriteCheckpointMsg::decode(BinReader& r) {
  return WriteCheckpointMsg{r.u64()};
}

void CheckpointAckMsg::encode(BinWriter& w) const {
  w.u32(worker);
  w.u8(ok);
  w.str(error);
}

CheckpointAckMsg CheckpointAckMsg::decode(BinReader& r) {
  CheckpointAckMsg m;
  m.worker = r.u32();
  m.ok = r.u8();
  if (m.ok > 1) throw BinError("bad ok flag in checkpoint ack");
  m.error = r.str();
  return m;
}

void GraphPartMsg::encode(BinWriter& w) const {
  w.u32(worker);
  w.u8(has_root);
  w.u32(root_local);
  w.str(store);
  encode_nodes(w, nodes);
  w.u64(owned);
  w.u64(frontier_sent);
  w.u64(resolves_sent);
  w.u64(bytes_sent);
  w.u64(bytes_received);
  w.u64(store_stats.states);
  w.u64(store_stats.warp_fragments);
  w.u64(store_stats.bank_fragments);
  w.u64(store_stats.resident_bytes);
  w.u64(store_stats.materialized_bytes);
  w.u64(store_stats.spilled_bytes);
  w.u64(store_stats.hot_evictions);
  w.u64(store_stats.spills);
  w.u64(store_stats.rematerializations);
  w.u64(store_stats.delta_fragments);
  w.u64(store_stats.bloom_negatives);
  w.u64(store_stats.bloom_false_positives);
  w.u64(store_stats.degraded_spill);
}

GraphPartMsg GraphPartMsg::decode(BinReader& r) {
  GraphPartMsg m;
  m.worker = r.u32();
  m.has_root = r.u8();
  if (m.has_root > 1) throw BinError("bad root flag in graph part");
  m.root_local = r.u32();
  m.store = r.str();
  m.nodes = decode_nodes(r);
  m.owned = r.u64();
  m.frontier_sent = r.u64();
  m.resolves_sent = r.u64();
  m.bytes_sent = r.u64();
  m.bytes_received = r.u64();
  m.store_stats.states = r.u64();
  m.store_stats.warp_fragments = r.u64();
  m.store_stats.bank_fragments = r.u64();
  m.store_stats.resident_bytes = r.u64();
  m.store_stats.materialized_bytes = r.u64();
  m.store_stats.spilled_bytes = r.u64();
  m.store_stats.hot_evictions = r.u64();
  m.store_stats.spills = r.u64();
  m.store_stats.rematerializations = r.u64();
  m.store_stats.delta_fragments = r.u64();
  m.store_stats.bloom_negatives = r.u64();
  m.store_stats.bloom_false_positives = r.u64();
  m.store_stats.degraded_spill = r.u64();
  return m;
}

void WorkerCheckpointMsg::encode(BinWriter& w) const {
  w.u64(program_fp);
  w.u64(config_fp);
  sched::codec::encode_options(w, options);
  w.u32(n_workers);
  w.u32(worker_index);
  w.u64(generation);
  w.u8(has_root);
  w.u32(root_local);
  w.str(store);
  encode_nodes(w, nodes);
  w.u64(frontier.size());
  for (const auto& [local, depth] : frontier) {
    w.u32(local);
    w.u64(depth);
  }
}

WorkerCheckpointMsg WorkerCheckpointMsg::decode(BinReader& r) {
  WorkerCheckpointMsg m;
  m.program_fp = r.u64();
  m.config_fp = r.u64();
  m.options = sched::codec::decode_options(r);
  m.n_workers = r.u32();
  m.worker_index = r.u32();
  if (m.n_workers == 0 || m.worker_index >= m.n_workers) {
    throw BinError("bad worker identity in checkpoint");
  }
  m.generation = r.u64();
  m.has_root = r.u8();
  if (m.has_root > 1) throw BinError("bad root flag in checkpoint");
  m.root_local = r.u32();
  m.store = r.str();
  m.nodes = decode_nodes(r);
  const std::uint64_t nf = r.count(12);  // u32 local + u64 depth
  m.frontier.reserve(nf);
  for (std::uint64_t i = 0; i < nf; ++i) {
    const std::uint32_t local = r.u32();
    const std::uint64_t depth = r.u64();
    m.frontier.emplace_back(local, depth);
  }
  return m;
}

void ManifestMsg::encode(BinWriter& w) const {
  w.u64(program_fp);
  w.u64(config_fp);
  sched::codec::encode_options(w, options);
  w.u32(n_workers);
  w.u64(generation);
  encode_gid(w, root);
}

ManifestMsg ManifestMsg::decode(BinReader& r) {
  ManifestMsg m;
  m.program_fp = r.u64();
  m.config_fp = r.u64();
  m.options = sched::codec::decode_options(r);
  m.n_workers = r.u32();
  if (m.n_workers == 0) throw BinError("bad worker count in manifest");
  m.generation = r.u64();
  m.root = decode_gid(r);
  return m;
}

// --- helpers ---------------------------------------------------------

void encode_machine_as_state(const sem::Machine& m, BinWriter& w) {
  // Must stay byte-identical to StateStore::encode_state for the same
  // machine: the receiver decodes both through decode_state.
  w.u64(m.hash());
  w.u64(m.grid.blocks.size());
  for (const sem::Block& b : m.grid.blocks) {
    w.u64(b.warps.size());
    for (const sem::Warp& warp : b.warps) warp.encode(w);
  }
  const auto& shared = m.memory.shared_bank_refs();
  w.u64(shared.size());
  for (const mem::Memory::BankRef& b : shared) b->encode(w);
  m.memory.bank_ref(mem::Space::Global)->encode(w);
  m.memory.bank_ref(mem::Space::Const)->encode(w);
  m.memory.bank_ref(mem::Space::Param)->encode(w);
  w.u64(m.memory.shared_size());
}

void write_frame_file(const std::string& path, FrameType type,
                      std::string_view payload) {
  try {
    support::write_file_atomic(path, encode_frame(type, payload));
  } catch (const support::IoError& e) {
    throw sched::CheckpointError(sched::CheckpointError::Kind::Io, e.what());
  }
}

Frame load_frame_file(const std::string& path, FrameType want) {
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      throw sched::CheckpointError(sched::CheckpointError::Kind::Io,
                                   "cannot open " + path);
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err) {
      throw sched::CheckpointError(sched::CheckpointError::Kind::Io,
                                   "read error on " + path);
    }
  }
  try {
    FrameReader fr;
    fr.feed(bytes.data(), bytes.size());
    std::optional<Frame> f = fr.next();
    if (!f.has_value() || !fr.idle()) {
      throw DistError(DistError::Kind::Corrupt,
                      "truncated or trailing bytes");
    }
    if (f->type != want) {
      throw DistError(DistError::Kind::Corrupt, "unexpected frame type");
    }
    return std::move(*f);
  } catch (const DistError& e) {
    throw sched::CheckpointError(sched::CheckpointError::Kind::Corrupt,
                                 std::string(e.what()) + " in " + path);
  }
}

std::string worker_checkpoint_path(const std::string& base,
                                   std::uint64_t generation,
                                   std::uint32_t worker) {
  return base + ".g" + std::to_string(generation) + ".w" +
         std::to_string(worker);
}

}  // namespace cac::dist
