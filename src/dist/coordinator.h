// The distributed exploration coordinator: launches and monitors N
// worker processes (forked on this host, or accepted over TCP for
// multi-host runs), seeds the root state to its hash owner, routes
// frontier/resolve frames between workers (star topology), detects
// global quiescence with a two-round probe protocol, drives coordinated
// checkpoint generations, recovers from worker death — piecemeal when
// possible (only the dead worker is re-forked; survivors roll back
// in-process to the last committed generation), by relaunching the
// whole fleet otherwise — and finally merges the
// per-worker graph parts and replays the serial DFS over them — the
// same replay the in-process parallel engine uses, so the aggregated
// ExploreResult is byte-identical to the serial engine's verdict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "sched/explore.h"
#include "sem/state.h"

namespace cac::dist {

struct DistOptions {
  /// Worker process count (the hash-partition count).
  std::uint32_t n_workers = 2;
  /// Multi-host mode: listen on "host:port" and wait for n_workers
  /// `cacval dist-worker --dist-connect` processes instead of forking.
  std::string listen;
  /// Test seam: an already-listening socket (ownership taken) used
  /// instead of binding `listen`.
  int listen_fd = -1;
  /// Resume a distributed run from this coordinator manifest (written
  /// to ExploreOptions::checkpoint_path by a previous run).  Requires
  /// the same worker count and structural options.
  std::string resume_manifest;
  /// Crash-drill seam: worker `die_worker` SIGKILLs itself once it
  /// owns `die_after_states` states.  Cleared after the first death so
  /// the relaunched fleet survives.
  std::uint32_t die_worker = kNoWorker;
  std::uint64_t die_after_states = 0;
  /// Additionally hold the death until the worker has written its
  /// checkpoint for generation >= this and been resumed.  The worker
  /// is only resumed after the coordinator commits the manifest, so a
  /// death behind this gate is guaranteed to find a committed
  /// generation on disk — the precondition for piecemeal recovery.
  /// 0 = no gate.
  std::uint64_t die_after_generation = 0;
  /// Give up (DistError::PeerDied) after this many fleet relaunches.
  std::uint32_t max_restarts = 5;
  /// Print worker pids and recovery events to stderr.
  bool verbose = false;
};

struct DistStats {
  struct PerWorker {
    std::uint64_t owned = 0;          // states in the partition
    std::uint64_t frontier_sent = 0;  // kState frames sent
    std::uint64_t resolves_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };
  std::vector<PerWorker> workers;
  /// Total frontier states shipped across process boundaries
  /// (including the coordinator's root seed).
  std::uint64_t frontier_msgs = 0;
  std::uint64_t restarts = 0;
  /// Of `restarts`, how many replaced only the dead worker (survivors
  /// rolled back in-process via kRollback) instead of relaunching the
  /// whole fleet.
  std::uint64_t piecemeal_restarts = 0;
  std::uint64_t generations = 0;
  /// Transient transport faults absorbed by backoff (health signal:
  /// nonzero means the run survived flaky I/O, not that it failed).
  std::uint64_t send_retries = 0;
  std::uint64_t connect_retries = 0;

  /// Shard-balance skew: largest partition over the ideal even share
  /// (1.0 = perfectly balanced).  0 when no states were owned.
  [[nodiscard]] double skew() const;
};

struct DistResult {
  sched::ExploreResult result;
  DistStats stats;
};

/// Explore `initial` across dopts.n_workers processes.  Composes with
/// the ExploreOptions budgets and checkpoint fields exactly like the
/// in-process engines: budgets stop the run gracefully with a precise
/// limit_hit, checkpoint_path enables per-worker generation files plus
/// a coordinator manifest, and resume_manifest continues a stopped run
/// to a verdict byte-identical to an uninterrupted one.
DistResult explore_distributed(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               const sem::Machine& initial,
                               const sched::ExploreOptions& opts,
                               const DistOptions& dopts);

}  // namespace cac::dist
