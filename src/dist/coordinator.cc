#include "dist/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dist/transport.h"
#include "dist/worker.h"
#include "sched/checkpoint.h"
#include "sched/checkpoint_codec.h"
#include "support/binio.h"

namespace cac::dist {

using support::BinReader;
using support::BinWriter;

double DistStats::skew() const {
  std::uint64_t total = 0;
  std::uint64_t biggest = 0;
  for (const PerWorker& w : workers) {
    total += w.owned;
    biggest = std::max(biggest, w.owned);
  }
  if (total == 0 || workers.empty()) return 0.0;
  return static_cast<double>(biggest) * static_cast<double>(workers.size()) /
         static_cast<double>(total);
}

namespace {

using Limit = sched::ExploreResult::Limit;

/// Internal control-flow signal: a worker vanished; unwind run_once()
/// into the relaunch loop.
struct WorkerDiedSignal {
  std::uint32_t worker = kNoWorker;
};

/// Structural-options equality via the codec: two option sets resume-
/// compatible iff their canonical encodings agree byte-for-byte.
std::string structural_bytes(const sched::ExploreOptions& o) {
  BinWriter w;
  sched::codec::encode_options(w, o);
  return w.take();
}

// --- merged-graph replay ---------------------------------------------

struct RNode {
  std::uint32_t worker = 0;
  sched::StateId id;
  bool processed = false;
  bool terminal = false;
  bool stuck = false;
  std::string stuck_reason;
  struct REdge {
    sem::Choice choice;
    bool faulted = false;
    bool overflow = false;
    std::string fault;
    RNode* child = nullptr;
  };
  std::vector<REdge> edges;
  enum class Color : std::uint8_t { White, OnStack, Done };
  Color color = Color::White;
};

/// The merged distributed graph plus the per-worker stores finals are
/// materialized from.
struct MergedGraph {
  std::vector<std::unique_ptr<sched::StateStore>> stores;  // per worker
  std::deque<RNode> arena;                                 // stable addrs
  std::vector<std::unordered_map<std::uint32_t, RNode*>> by_local;
  RNode* root = nullptr;
};

MergedGraph merge_parts(std::vector<GraphPartMsg>& parts, Gid root) {
  MergedGraph g;
  const std::size_t n = parts.size();
  g.stores.resize(n);
  g.by_local.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    g.stores[w] = std::make_unique<sched::StateStore>();
    try {
      BinReader r(parts[w].store);
      g.stores[w]->decode(r);
      if (!r.done()) throw support::BinError("trailing bytes after store");
    } catch (const support::BinError& e) {
      throw DistError(DistError::Kind::Corrupt,
                      std::string("graph part store: ") + e.what());
    }
    for (const GraphPartMsg::Node& rec : parts[w].nodes) {
      g.arena.push_back(RNode{});
      RNode* nd = &g.arena.back();
      nd->worker = static_cast<std::uint32_t>(w);
      nd->id = sched::StateId{rec.local};
      nd->processed = rec.processed != 0;
      nd->terminal = rec.terminal != 0;
      nd->stuck = rec.stuck != 0;
      nd->stuck_reason = rec.stuck_reason;
      g.by_local[w].emplace(rec.local, nd);
    }
  }
  const auto lookup = [&](Gid gid) -> RNode* {
    if (gid.worker() >= n) {
      throw DistError(DistError::Kind::Corrupt,
                      "edge references an unknown worker");
    }
    const auto it = g.by_local[gid.worker()].find(gid.local());
    if (it == g.by_local[gid.worker()].end()) {
      throw DistError(DistError::Kind::Corrupt,
                      "edge references an unknown node");
    }
    return it->second;
  };
  for (std::size_t w = 0; w < n; ++w) {
    for (const GraphPartMsg::Node& rec : parts[w].nodes) {
      RNode* nd = g.by_local[w].at(rec.local);
      nd->edges.reserve(rec.edges.size());
      for (const GraphPartMsg::Edge& er : rec.edges) {
        RNode::REdge e;
        e.choice = er.choice;
        e.faulted = er.faulted != 0;
        e.overflow = er.overflow != 0;
        e.fault = er.fault;
        if (!e.faulted && !e.overflow) e.child = lookup(er.child);
        nd->edges.push_back(std::move(e));
      }
    }
  }
  if (root.valid()) g.root = lookup(root);
  return g;
}

/// Serial DFS over the merged graph — a mirror of the in-process
/// parallel engine's replay() (explore_parallel.cc), with Gid-keyed
/// finals dedup and finals re-interned into a fresh result store.
/// Keeping the enter() checks in the same order is what makes the
/// distributed verdict byte-identical to the serial engine's.
sched::ExploreResult replay(MergedGraph& g, const sched::ExploreOptions& opts,
                            Limit stop_reason) {
  sched::ExploreResult result;
  result.min_steps_to_termination = ~0ull;

  std::unordered_set<std::uint64_t> finals_seen;
  std::vector<Gid> finals_order;
  struct Frame {
    RNode* node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sem::Choice> path;
  std::uint64_t entered = 0;
  bool limits_hit = false;

  auto hit_limit = [&](Limit l) {
    limits_hit = true;
    if (result.limit_hit == Limit::None) result.limit_hit = l;
  };

  auto add_violation = [&](sched::Violation::Kind kind, std::string msg) {
    result.violations.push_back({kind, std::move(msg), path});
  };

  auto enter = [&](RNode* nd) -> bool {
    if (nd == nullptr) {  // overflow edge: a partition was at the cap
      hit_limit(Limit::MaxStates);
      return false;
    }
    if (nd->color == RNode::Color::OnStack) {
      add_violation(sched::Violation::Kind::Cycle,
                    "schedule revisits an earlier state: a scheduler can "
                    "loop forever");
      return false;
    }
    if (nd->color == RNode::Color::Done) return false;
    if (entered >= opts.max_states) {
      hit_limit(Limit::MaxStates);
      return false;
    }
    ++entered;
    ++result.states_visited;

    if (nd->terminal) {
      nd->color = RNode::Color::Done;
      result.min_steps_to_termination =
          std::min<std::uint64_t>(result.min_steps_to_termination,
                                  path.size());
      result.max_steps_to_termination =
          std::max<std::uint64_t>(result.max_steps_to_termination,
                                  path.size());
      const Gid gid = Gid::make(nd->worker, nd->id.v);
      if (finals_seen.insert(gid.v).second) finals_order.push_back(gid);
      return false;
    }
    if (nd->stuck) {
      nd->color = RNode::Color::Done;
      add_violation(sched::Violation::Kind::Stuck, nd->stuck_reason);
      return false;
    }
    if (!nd->processed) {
      nd->color = RNode::Color::Done;
      if (stop_reason != Limit::None) {
        // Budget-stopped run: this node sits on the unexpanded
        // frontier, not past the depth bound.
        hit_limit(stop_reason);
        return false;
      }
      hit_limit(Limit::MaxDepth);
      if (path.size() >= opts.max_depth) {
        add_violation(sched::Violation::Kind::DepthExceeded,
                      "path exceeded the exploration depth bound");
      }
      return false;
    }
    if (path.size() >= opts.max_depth) {
      nd->color = RNode::Color::Done;
      hit_limit(Limit::MaxDepth);
      add_violation(sched::Violation::Kind::DepthExceeded,
                    "path exceeded the exploration depth bound");
      return false;
    }
    nd->color = RNode::Color::OnStack;
    stack.push_back(Frame{nd, 0});
    return true;
  };

  enter(g.root);

  auto should_stop = [&] {
    return opts.stop_at_first_violation && !result.violations.empty();
  };

  while (!stack.empty() && !should_stop()) {
    Frame& top = stack.back();
    if (top.next >= top.node->edges.size()) {
      top.node->color = RNode::Color::Done;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const RNode::REdge& e = top.node->edges[top.next++];
    ++result.transitions;
    path.push_back(e.choice);
    if (e.faulted) {
      add_violation(sched::Violation::Kind::Fault, e.fault);
      path.pop_back();
      continue;
    }
    if (!enter(e.overflow ? nullptr : e.child)) path.pop_back();
  }

  if (result.min_steps_to_termination == ~0ull) {
    result.min_steps_to_termination = 0;
  }
  // Re-intern the finals into a fresh store in first-visit order, so
  // result.final_ids materialize to exactly the machines (and order)
  // the serial engine reports.
  auto result_store = std::make_shared<sched::StateStore>();
  result.final_ids.reserve(finals_order.size());
  for (const Gid gid : finals_order) {
    const sem::Machine m =
        g.stores[gid.worker()]->materialize(sched::StateId{gid.local()});
    const auto r = result_store->intern(m);
    result.final_ids.push_back(r.id);
  }
  result.store = std::move(result_store);
  result.exhaustive = !limits_hit && stack.empty();
  return result;
}

// --- the coordinator proper ------------------------------------------

struct Peer {
  Fd fd;
  pid_t pid = -1;  // fork mode only
  FrameReader reader;
  SendBuf outbuf;
  ProbeAckMsg last_ack;   // most recent, any nonce
  bool acked_round = false;
  bool have_part = false;
  bool ckpt_acked = false;
  bool rb_acked = false;  // acked the current rollback epoch
};

class Coordinator {
 public:
  Coordinator(const ptx::Program& prg, const sem::KernelConfig& kc,
              const sem::Machine& initial,
              const sched::ExploreOptions& opts, const DistOptions& dopts)
      : prg_(prg),
        kc_(kc),
        initial_(initial),
        opts_(opts),
        dopts_(dopts),
        program_fp_(sched::program_fingerprint(prg)),
        config_fp_(sched::config_fingerprint(kc)) {
    if (dopts_.n_workers == 0) {
      throw DistError(DistError::Kind::Protocol,
                      "need at least one worker");
    }
    if (!dopts_.resume_manifest.empty()) load_resume_manifest();
  }

  ~Coordinator() { cleanup_peers(); }

  DistResult run() {
    t_start_ = std::chrono::steady_clock::now();
    for (;;) {
      try {
        return run_once();
      } catch (const WorkerDiedSignal& s) {
        cleanup_peers();
        ++stats_.restarts;
        die_cleared_ = true;  // the seam fires at most once
        if (!fork_mode()) {
          throw DistError(
              DistError::Kind::PeerDied,
              "remote worker " + std::to_string(s.worker) +
                  " disconnected; restart the workers and resume from "
                  "the last checkpoint");
        }
        if (stats_.restarts > dopts_.max_restarts) {
          throw DistError(DistError::Kind::PeerDied,
                          "worker died " +
                              std::to_string(stats_.restarts) +
                              " times; giving up");
        }
        if (dopts_.verbose) {
          std::fprintf(stderr,
                       "dist: worker %u died; relaunching fleet "
                       "(restart %llu, generation %llu)\n",
                       s.worker,
                       static_cast<unsigned long long>(stats_.restarts),
                       static_cast<unsigned long long>(committed_gen_));
        }
        // Relaunch everything.  With a committed generation the whole
        // fleet — including the lost partition — reloads its
        // "<base>.g<gen>.w<idx>" snapshot; otherwise the run restarts
        // from the root.  Either way the continued run's verdict
        // equals an uninterrupted run's.
        if (committed_gen_ > 0) {
          resume_ = true;
          resume_base_ = opts_.checkpoint_path;
          resume_gen_ = committed_gen_;
          // root_ stays: the manifest's root is already in memory.
        }
      }
    }
  }

 private:
  [[nodiscard]] bool fork_mode() const { return dopts_.listen.empty() &&
                                                dopts_.listen_fd < 0; }

  void load_resume_manifest() {
    const Frame f =
        load_frame_file(dopts_.resume_manifest, FrameType::kManifest);
    ManifestMsg m;
    try {
      BinReader r(f.payload);
      m = ManifestMsg::decode(r);
      if (!r.done()) throw support::BinError("trailing bytes");
    } catch (const support::BinError& e) {
      throw sched::CheckpointError(
          sched::CheckpointError::Kind::Corrupt,
          std::string(e.what()) + " in " + dopts_.resume_manifest);
    }
    const auto fail = [](const std::string& msg) {
      throw sched::CheckpointError(sched::CheckpointError::Kind::Mismatch,
                                   msg);
    };
    if (m.program_fp != program_fp_) {
      fail("program differs from the checkpointed run");
    }
    if (m.config_fp != config_fp_) {
      fail("kernel configuration differs from the checkpointed run");
    }
    if (structural_bytes(m.options) != structural_bytes(opts_)) {
      fail("exploration options differ from the checkpointed run");
    }
    if (m.n_workers != dopts_.n_workers) {
      fail("distributed resume requires the original --dist-workers (" +
           std::to_string(m.n_workers) + ")");
    }
    resume_ = true;
    resume_base_ = dopts_.resume_manifest;
    resume_gen_ = m.generation;
    committed_gen_ = m.generation;
    gen_ = m.generation;
    root_ = m.root;
    root_acked_ = true;
  }

  // --- fleet lifecycle ----------------------------------------------

  /// Fork one worker process on a fresh socketpair.  Safe to call with
  /// the rest of the fleet running (piecemeal recovery): the child
  /// closes every parent-side fd it inherited, so it holds no handle
  /// to any survivor's connection.
  void fork_one(std::uint32_t i) {
    auto [parent_end, child_end] = socket_pair();
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw DistError(DistError::Kind::Io, "fork failed");
    }
    if (pid == 0) {
      // Child: keep only our socket end, become worker i, and _exit
      // without running parent-side cleanup.
      for (Peer& p : peers_) p.fd.reset();
      parent_end.reset();
      int code = 0;
      try {
        run_worker(child_end.get(), prg_, kc_);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "dist: worker %u: %s\n", i, e.what());
        code = 1;
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    peers_[i].fd = std::move(parent_end);
    peers_[i].pid = pid;
    child_end.reset();
    if (dopts_.verbose) {
      std::fprintf(stderr, "dist: worker %u pid %d\n", i,
                   static_cast<int>(pid));
    }
  }

  /// The identity/options frame for worker i.  The run's resident-byte
  /// budget is divided evenly so the fleet's total matches what one
  /// in-process store would be allowed.
  [[nodiscard]] SetupMsg make_setup(std::uint32_t i) const {
    SetupMsg s;
    s.worker_index = i;
    s.n_workers = dopts_.n_workers;
    s.program_fp = program_fp_;
    s.config_fp = config_fp_;
    s.options = opts_;  // codec strips transient fields
    s.checkpoint_base = opts_.checkpoint_path;
    s.store_spill_dir = opts_.store_spill_dir;
    s.store_resident_budget_bytes =
        opts_.store_resident_budget_bytes / dopts_.n_workers;
    s.store_bloom_bits = opts_.store_bloom_bits;
    s.store_delta_depth = opts_.store_delta_depth;
    return s;
  }

  void launch() {
    peers_.clear();
    peers_.resize(dopts_.n_workers);
    if (fork_mode()) {
      for (std::uint32_t i = 0; i < dopts_.n_workers; ++i) fork_one(i);
    } else {
      Fd listener;
      if (dopts_.listen_fd >= 0) {
        listener = Fd(dopts_.listen_fd);
        // The seam fd is single-use; don't close it twice on restart.
        const_cast<DistOptions&>(dopts_).listen_fd = -1;
      } else {
        listener = tcp_listen(dopts_.listen);
      }
      for (std::uint32_t i = 0; i < dopts_.n_workers; ++i) {
        peers_[i].fd = tcp_accept(listener.get());
      }
    }

    for (std::uint32_t i = 0; i < dopts_.n_workers; ++i) {
      SetupMsg s = make_setup(i);
      s.resume = resume_ ? 1 : 0;
      s.resume_base = resume_base_;
      s.generation = resume_gen_;
      if (!die_cleared_) {
        s.die_worker = dopts_.die_worker;
        s.die_after_states = dopts_.die_after_states;
        s.die_after_generation = dopts_.die_after_generation;
      }
      queue_msg(i, FrameType::kSetup, s);
    }
  }

  void cleanup_peers() {
    for (Peer& p : peers_) {
      if (p.pid > 0) ::kill(p.pid, SIGKILL);
      p.fd.reset();
    }
    for (Peer& p : peers_) {
      if (p.pid > 0) {
        int status = 0;
        ::waitpid(p.pid, &status, 0);
        p.pid = -1;
      }
    }
    peers_.clear();
  }

  // --- frame plumbing -----------------------------------------------

  template <typename Msg>
  void queue_msg(std::uint32_t worker, FrameType t, const Msg& m) {
    BinWriter w;
    m.encode(w);
    peers_[worker].outbuf.append(encode_frame(t, w.buffer()));
  }

  template <typename Msg>
  void broadcast(FrameType t, const Msg& m) {
    for (std::uint32_t i = 0; i < peers_.size(); ++i) queue_msg(i, t, m);
  }

  /// Control frames (pause/resume/dump/stop) carry no payload.
  void broadcast_control(FrameType t) {
    const std::string frame = encode_frame(t, "");
    for (Peer& p : peers_) p.outbuf.append(frame);
  }

  [[nodiscard]] bool outbufs_empty() const {
    for (const Peer& p : peers_) {
      if (!p.outbuf.empty()) return false;
    }
    return true;
  }

  /// One poll round: flush what we can, read what there is, dispatch
  /// every complete frame.  Throws WorkerDiedSignal when a peer whose
  /// death we are not expecting vanishes.
  void pump(int timeout_ms) {
    std::vector<pollfd> fds(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      fds[i].fd = peers_[i].fd.get();
      fds[i].events =
          static_cast<short>(POLLIN | (peers_[i].outbuf.empty() ? 0
                                                                : POLLOUT));
    }
    if (::poll(fds.data(), fds.size(), timeout_ms) < 0) {
      if (errno == EINTR) return;
      throw DistError(DistError::Kind::Io, "poll failed");
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Peer& p = peers_[i];
      if (!p.outbuf.empty() &&
          (fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        if (!flush_some(p.fd.get(), p.outbuf)) {
          worker_died(static_cast<std::uint32_t>(i));
        }
      }
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        if (!pump_reads(p.fd.get(), p.reader)) {
          // Drain what was buffered before the EOF, then report.
          dispatch_all(static_cast<std::uint32_t>(i));
          worker_died(static_cast<std::uint32_t>(i));
        }
        dispatch_all(static_cast<std::uint32_t>(i));
      }
    }
  }

  void worker_died(std::uint32_t worker) {
    if (stopping_) return;  // EOF after kStop is a clean exit
    throw WorkerDiedSignal{worker};
  }

  void dispatch_all(std::uint32_t from) {
    while (std::optional<Frame> f = peers_[from].reader.next()) {
      dispatch(from, *f);
    }
  }

  void dispatch(std::uint32_t from, const Frame& f) {
    if (rollback_awaiting_ > 0 && f.type != FrameType::kRollbackAck) {
      // Recovery barrier: every in-flight frame predates the rollback
      // and references discarded state — drop it.  The per-connection
      // FIFO guarantees a worker's kRollbackAck is dispatched only
      // after all of its stale frames were, so once the barrier opens
      // no stale frame can remain buffered.
      return;
    }
    switch (f.type) {
      case FrameType::kState:
      case FrameType::kResolve: {
        // Routed work frame: forward by the u32 target in the first
        // four payload bytes.
        if (f.payload.size() < 4) {
          throw DistError(DistError::Kind::Corrupt,
                          "routed frame too short");
        }
        std::uint32_t target = 0;
        for (int i = 0; i < 4; ++i) {
          target |= static_cast<std::uint32_t>(
                        static_cast<unsigned char>(f.payload[i]))
                    << (8 * i);
        }
        if (target >= peers_.size()) {
          throw DistError(DistError::Kind::Corrupt,
                          "routed frame targets an unknown worker");
        }
        peers_[target].outbuf.append(encode_frame(f.type, f.payload));
        return;
      }
      default:
        break;
    }
    try {
      BinReader r(f.payload);
      switch (f.type) {
        case FrameType::kRootAck: {
          const RootAckMsg m = RootAckMsg::decode(r);
          root_ = m.root;
          root_acked_ = true;
          break;
        }
        case FrameType::kProbeAck: {
          const ProbeAckMsg m = ProbeAckMsg::decode(r);
          if (m.worker != from) {
            throw DistError(DistError::Kind::Protocol,
                            "probe ack from the wrong worker");
          }
          peers_[from].last_ack = m;
          if (m.nonce == probe_nonce_) peers_[from].acked_round = true;
          break;
        }
        case FrameType::kCheckpointAck: {
          const CheckpointAckMsg m = CheckpointAckMsg::decode(r);
          // After a failed barrier disabled checkpointing, stragglers'
          // acks from the abandoned attempt still arrive; they belong
          // to no live barrier and must not throw (or satisfy) one.
          if (ckpt_disabled_) break;
          if (m.ok == 0) {
            throw sched::CheckpointError(
                sched::CheckpointError::Kind::Io,
                "worker " + std::to_string(from) +
                    " failed to checkpoint: " + m.error);
          }
          peers_[from].ckpt_acked = true;
          break;
        }
        case FrameType::kRollbackAck: {
          const RollbackAckMsg m = RollbackAckMsg::decode(r);
          if (m.worker != from || m.epoch != rollback_epoch_) {
            throw DistError(DistError::Kind::Protocol,
                            "rollback ack for the wrong worker or epoch");
          }
          if (m.ok == 0) {
            // A survivor that cannot reload its generation file is as
            // lost as the dead worker: escalate to a full relaunch.
            throw WorkerDiedSignal{from};
          }
          if (!peers_[from].rb_acked) {
            peers_[from].rb_acked = true;
            --rollback_awaiting_;
          }
          break;
        }
        case FrameType::kGraphPart: {
          GraphPartMsg m = GraphPartMsg::decode(r);
          if (m.worker != from) {
            throw DistError(DistError::Kind::Protocol,
                            "graph part from the wrong worker");
          }
          parts_[from] = std::move(m);
          peers_[from].have_part = true;
          break;
        }
        default:
          throw DistError(DistError::Kind::Protocol,
                          "unexpected frame from worker " +
                              std::to_string(from));
      }
      if (!r.done()) throw support::BinError("trailing bytes");
    } catch (const support::BinError& e) {
      throw DistError(DistError::Kind::Corrupt, e.what());
    }
  }

  // --- termination detection ----------------------------------------

  /// Two-round quiescence: a probe round is *clean* when every worker
  /// reports idle (or paused, while pausing), the global work-frame
  /// ledger balances (everything sent — including the coordinator's
  /// root seed — was processed), and the coordinator holds no
  /// undelivered frames.  Two consecutive clean rounds with identical
  /// counters mean no activity can ever occur again: the counters are
  /// monotone, and workers only send while expanding or processing.
  bool quiescent(bool require_paused) {
    if (!probe_inflight_) {
      ++probe_nonce_;
      for (Peer& p : peers_) p.acked_round = false;
      broadcast(FrameType::kProbe, ProbeMsg{probe_nonce_});
      probe_inflight_ = true;
      return false;
    }
    for (const Peer& p : peers_) {
      if (!p.acked_round) return false;
    }
    probe_inflight_ = false;  // round complete; evaluate it
    std::uint64_t sent = coord_sent_work_;
    std::uint64_t processed = 0;
    bool all_ready = root_acked_ || resume_;
    for (const Peer& p : peers_) {
      sent += p.last_ack.sent;
      processed += p.last_ack.processed;
      if (require_paused) {
        all_ready = all_ready && p.last_ack.paused != 0;
      } else {
        all_ready = all_ready && p.last_ack.idle != 0 &&
                    p.last_ack.paused == 0;
      }
    }
    const bool clean =
        all_ready && sent == processed && outbufs_empty();
    if (clean && last_clean_sent_ == sent &&
        last_clean_processed_ == processed) {
      ++stable_rounds_;
    } else if (clean) {
      stable_rounds_ = 1;
      last_clean_sent_ = sent;
      last_clean_processed_ = processed;
    } else {
      stable_rounds_ = 0;
    }
    return stable_rounds_ >= 2;
  }

  void reset_quiescence() {
    probe_inflight_ = false;
    stable_rounds_ = 0;
    last_clean_sent_ = ~0ull;
    last_clean_processed_ = ~0ull;
  }

  void wait_quiescent(bool require_paused) {
    reset_quiescence();
    while (!quiescent(require_paused)) pump(2);
  }

  // --- budgets -------------------------------------------------------

  [[nodiscard]] std::uint64_t total_owned() const {
    std::uint64_t total = 0;
    for (const Peer& p : peers_) total += p.last_ack.owned;
    return total;
  }

  [[nodiscard]] Limit budget_tripped() const {
    if (opts_.stop_flag != nullptr &&
        opts_.stop_flag->load(std::memory_order_relaxed)) {
      return Limit::Interrupted;
    }
    if (opts_.stop_after_states != 0 &&
        total_owned() >= opts_.stop_after_states) {
      return Limit::Interrupted;
    }
    if (opts_.deadline_ms != 0 &&
        std::chrono::steady_clock::now() - t_start_ >=
            std::chrono::milliseconds(opts_.deadline_ms)) {
      return Limit::Deadline;
    }
    if (opts_.mem_limit_bytes != 0) {
      std::uint64_t rss = sched::current_rss_bytes();
      for (const Peer& p : peers_) rss += p.last_ack.rss_bytes;
      if (rss >= opts_.mem_limit_bytes) return Limit::MemLimit;
    }
    return Limit::None;
  }

  // --- checkpointing -------------------------------------------------

  /// Pause -> quiesce -> per-worker generation files -> manifest
  /// commit.  The manifest rename is the commit point: a generation
  /// exists only once every worker's file is safely on disk, so resume
  /// always composes a mutually consistent cut.
  void write_generation() {
    broadcast_control(FrameType::kPause);
    wait_quiescent(/*require_paused=*/true);

    const std::uint64_t gen = gen_ + 1;
    for (Peer& p : peers_) p.ckpt_acked = false;
    broadcast(FrameType::kWriteCheckpoint, WriteCheckpointMsg{gen});
    while (!std::all_of(peers_.begin(), peers_.end(),
                        [](const Peer& p) { return p.ckpt_acked; })) {
      pump(2);
    }

    ManifestMsg m;
    m.program_fp = program_fp_;
    m.config_fp = config_fp_;
    m.options = opts_;
    m.n_workers = dopts_.n_workers;
    m.generation = gen;
    m.root = root_;
    BinWriter w;
    m.encode(w);
    write_frame_file(opts_.checkpoint_path, FrameType::kManifest,
                     w.buffer());
    // Previous generation's files are now dead weight.
    if (gen_ > 0) {
      for (std::uint32_t i = 0; i < dopts_.n_workers; ++i) {
        std::remove(
            worker_checkpoint_path(opts_.checkpoint_path, gen_, i)
                .c_str());
      }
    }
    gen_ = gen;
    committed_gen_ = gen;
    stats_.generations = gen;
    checkpointed_ = true;
  }

  // --- piecemeal recovery --------------------------------------------

  /// Replace exactly the dead worker instead of relaunching the fleet.
  /// Survivors roll back in-process to the last committed generation
  /// (kRollback, a barrier during which every in-flight work frame is
  /// discarded as stale), the dead partition is re-forked with a
  /// resume setup, and the whole fleet re-enters the same cut a full
  /// relaunch would — at the cost of one fork instead of n.
  /// Preconditions (checked by the caller): fork mode, a committed
  /// generation to roll back to, and the death surfaced in the main
  /// expansion loop or its checkpoint barrier (deaths elsewhere —
  /// dump, drain — unwind to the full relaunch path, whose simpler
  /// invariants cover them).
  void piecemeal_recover(std::uint32_t dead) {
    if (dopts_.verbose) {
      std::fprintf(stderr,
                   "dist: worker %u died; piecemeal restart from "
                   "generation %llu\n",
                   dead, static_cast<unsigned long long>(committed_gen_));
    }
    // Reap the corpse.
    Peer& d = peers_[dead];
    if (d.pid > 0) {
      ::kill(d.pid, SIGKILL);
      int status = 0;
      ::waitpid(d.pid, &status, 0);
      d.pid = -1;
    }
    d.fd.reset();
    d.reader = FrameReader{};
    d.have_part = false;

    // Every queued outbound frame references pre-rollback state, and
    // every cached ack carries pre-rollback counters.
    for (Peer& p : peers_) {
      p.outbuf = SendBuf{};
      p.last_ack = ProbeAckMsg{};
      p.acked_round = false;
      p.rb_acked = false;
    }

    // Barrier: survivors reload the committed generation and park.
    ++rollback_epoch_;
    RollbackMsg rb;
    rb.generation = committed_gen_;
    rb.resume_base = opts_.checkpoint_path;
    rb.epoch = rollback_epoch_;
    rollback_awaiting_ = 0;
    for (std::uint32_t i = 0; i < peers_.size(); ++i) {
      if (i == dead) continue;
      queue_msg(i, FrameType::kRollback, rb);
      ++rollback_awaiting_;
    }
    while (rollback_awaiting_ > 0) pump(2);

    // Replacement worker: resumes the dead partition's own generation
    // file.  The die seam stays cleared so the relaunch survives.
    fork_one(dead);
    SetupMsg s = make_setup(dead);
    s.resume = 1;
    s.resume_base = opts_.checkpoint_path;
    s.generation = committed_gen_;
    queue_msg(dead, FrameType::kSetup, s);

    // New epoch's work-frame ledger starts balanced at zero (survivors
    // reset their counters with the rollback; the root is already
    // interned in its owner's reloaded partition).
    coord_sent_work_ = 0;
    broadcast_control(FrameType::kResume);
    reset_quiescence();
    ++stats_.restarts;
    ++stats_.piecemeal_restarts;
    die_cleared_ = true;
  }

  // --- run -----------------------------------------------------------

  DistResult run_once() {
    stopping_ = false;
    root_acked_ = resume_;  // a resumed run's root is known up front
    coord_sent_work_ = 0;
    rollback_awaiting_ = 0;  // a full relaunch abandons any barrier
    parts_.assign(dopts_.n_workers, GraphPartMsg{});
    reset_quiescence();
    launch();

    if (!resume_) {
      // Seed the root with its owner.
      const sem::Machine root_copy(initial_);
      const std::uint64_t h = root_copy.hash();
      BinWriter sw;
      encode_machine_as_state(root_copy, sw);
      StateMsg sm;
      sm.target = owner_of(h, dopts_.n_workers);
      sm.parent = Gid{};
      sm.depth = 0;
      sm.state = sw.take();
      queue_msg(sm.target, FrameType::kState, sm);
      coord_sent_work_ = 1;
      ++stats_.frontier_msgs;
    }

    const bool periodic = !opts_.checkpoint_path.empty() &&
                          opts_.checkpoint_every_states != 0;
    std::uint64_t next_ckpt_at =
        periodic ? opts_.checkpoint_every_states : ~0ull;

    Limit stop_reason = Limit::None;
    for (;;) {
      try {
        pump(2);
      } catch (const WorkerDiedSignal& s) {
        // A death in the main expansion loop with a committed
        // generation recovers piecemeal; anything else (no generation
        // yet, TCP mode, restart budget exhausted) unwinds to the
        // full-relaunch handler in run().
        if (!fork_mode() || committed_gen_ == 0 ||
            stats_.restarts >= dopts_.max_restarts) {
          throw;
        }
        piecemeal_recover(s.worker);
        continue;
      }
      stop_reason = budget_tripped();
      if (stop_reason == Limit::None &&
          total_owned() >= opts_.max_states) {
        // The fleet holds the state cap collectively; stop expanding.
        // Structural, exactly like a cap hit inside one partition.
        stop_reason = Limit::MaxStates;
      }
      if (stop_reason != Limit::None) break;
      if (periodic && !ckpt_disabled_ && total_owned() >= next_ckpt_at) {
        try {
          write_generation();
        } catch (const WorkerDiedSignal& s) {
          // A death caught mid-barrier abandons the partial
          // generation (its files are overwritten on the retry, the
          // barrier's stale acks are dropped by the rollback guard in
          // dispatch()); survivors roll back to the last committed
          // generation exactly as for a death in the expansion loop.
          if (!fork_mode() || committed_gen_ == 0 ||
              stats_.restarts >= dopts_.max_restarts) {
            throw;
          }
          piecemeal_recover(s.worker);
          continue;
        } catch (const sched::CheckpointError& e) {
          // A full/failing disk on any worker (or under the manifest)
          // must not end the run: drop checkpointing, resume the
          // paused fleet, and explore on.  Only resumability is lost.
          ++ckpt_write_failures_;
          ckpt_disabled_ = true;
          std::fprintf(stderr,
                       "cacval: warning: distributed checkpoint failed; "
                       "periodic checkpointing disabled: %s\n",
                       e.what());
        }
        next_ckpt_at = total_owned() + opts_.checkpoint_every_states;
        broadcast_control(FrameType::kResume);
        reset_quiescence();
        continue;
      }
      if (quiescent(/*require_paused=*/false)) break;
    }

    if (stop_reason != Limit::None && !opts_.checkpoint_path.empty() &&
        !ckpt_disabled_) {
      try {
        write_generation();  // graceful stop: persist the frontier
      } catch (const sched::CheckpointError& e) {
        // The verdict never depends on persistence: report the loss
        // and carry on to the dump (workers are already paused and
        // quiescent at the barrier's cut, which is all kDump needs).
        ++ckpt_write_failures_;
        ckpt_disabled_ = true;
        std::fprintf(stderr,
                     "cacval: warning: final distributed checkpoint "
                     "failed; resuming will not be possible: %s\n",
                     e.what());
      }
    } else if (stop_reason != Limit::None) {
      // Still need a consistent cut before dumping the graph.
      broadcast_control(FrameType::kPause);
      wait_quiescent(/*require_paused=*/true);
    }

    // Collect the graph, stop the fleet.
    broadcast_control(FrameType::kDump);
    while (!std::all_of(peers_.begin(), peers_.end(),
                        [](const Peer& p) { return p.have_part; })) {
      pump(2);
    }
    broadcast_control(FrameType::kStop);
    stopping_ = true;
    while (!outbufs_empty()) pump(2);
    cleanup_stopped_fleet();

    // Merge + replay.
    MergedGraph g = merge_parts(parts_, root_);
    DistResult out;
    out.result = replay(g, opts_, stop_reason);
    out.result.checkpointed = checkpointed_;
    out.result.checkpoint_write_failures = ckpt_write_failures_;
    out.stats = stats_;
    out.stats.send_retries = transport_counters().send_retries;
    out.stats.connect_retries = transport_counters().connect_retries;
    out.stats.workers.resize(dopts_.n_workers);
    for (std::uint32_t i = 0; i < dopts_.n_workers; ++i) {
      DistStats::PerWorker& w = out.stats.workers[i];
      w.owned = parts_[i].owned;
      w.frontier_sent = parts_[i].frontier_sent;
      w.resolves_sent = parts_[i].resolves_sent;
      w.bytes_sent = parts_[i].bytes_sent;
      w.bytes_received = parts_[i].bytes_received;
      out.stats.frontier_msgs += parts_[i].frontier_sent;
      // The run's memory story is the sum of the partition stores.
      const sched::StateStore::Stats& ss = parts_[i].store_stats;
      sched::StateStore::Stats& t = out.result.store_stats;
      t.states += ss.states;
      t.warp_fragments += ss.warp_fragments;
      t.bank_fragments += ss.bank_fragments;
      t.resident_bytes += ss.resident_bytes;
      t.materialized_bytes += ss.materialized_bytes;
      t.spilled_bytes += ss.spilled_bytes;
      t.hot_evictions += ss.hot_evictions;
      t.spills += ss.spills;
      t.rematerializations += ss.rematerializations;
      t.delta_fragments += ss.delta_fragments;
      t.bloom_negatives += ss.bloom_negatives;
      t.bloom_false_positives += ss.bloom_false_positives;
      t.degraded_spill += ss.degraded_spill;
    }
    return out;
  }

  /// Orderly shutdown: close our ends, reap the children.
  void cleanup_stopped_fleet() {
    for (Peer& p : peers_) p.fd.reset();
    for (Peer& p : peers_) {
      if (p.pid > 0) {
        int status = 0;
        ::waitpid(p.pid, &status, 0);
        p.pid = -1;
      }
    }
  }

  const ptx::Program& prg_;
  const sem::KernelConfig& kc_;
  const sem::Machine& initial_;
  const sched::ExploreOptions& opts_;
  const DistOptions& dopts_;
  const std::uint64_t program_fp_;
  const std::uint64_t config_fp_;

  std::vector<Peer> peers_;
  std::vector<GraphPartMsg> parts_;
  DistStats stats_;
  std::chrono::steady_clock::time_point t_start_;

  Gid root_;
  bool root_acked_ = false;
  bool stopping_ = false;
  bool die_cleared_ = false;
  bool checkpointed_ = false;
  /// A checkpoint barrier failed (worker ENOSPC or manifest write):
  /// checkpointing is off for the rest of the run and stale barrier
  /// acks are discarded.  The exploration itself continues.
  bool ckpt_disabled_ = false;
  std::uint64_t ckpt_write_failures_ = 0;
  std::uint64_t coord_sent_work_ = 0;

  // resume / generations
  bool resume_ = false;
  std::string resume_base_;
  std::uint64_t resume_gen_ = 0;
  std::uint64_t gen_ = 0;
  std::uint64_t committed_gen_ = 0;

  // piecemeal recovery barrier
  std::uint32_t rollback_epoch_ = 0;
  std::uint32_t rollback_awaiting_ = 0;

  // probe machinery
  std::uint64_t probe_nonce_ = 0;
  bool probe_inflight_ = false;
  unsigned stable_rounds_ = 0;
  std::uint64_t last_clean_sent_ = ~0ull;
  std::uint64_t last_clean_processed_ = ~0ull;
};

}  // namespace

DistResult explore_distributed(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               const sem::Machine& initial,
                               const sched::ExploreOptions& opts,
                               const DistOptions& dopts) {
  Coordinator c(prg, kc, initial, opts, dopts);
  return c.run();
}

}  // namespace cac::dist
