// Experiment F2 — paper Fig. 2: the warp reconvergence function.
//
// sync() walks the divergence tree; this bench measures its cost as a
// function of tree shape (depth of nested divergence, number of
// leaves) and verifies along the way that reconvergence restores a
// canonical uniform warp.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "sem/warp.h"
#include "support/diag.h"

namespace {

using namespace cac;

/// A left-nested divergence tree of `leaves` uniform leaves with
/// staggered pcs, the shape produced by properly nested divergent
/// branches: the innermost pair waits at pc `base`, and each enclosing
/// level's partner waits one Sync further (pc base+i-1), exactly where
/// the pair below it lands after reconverging.  Such a tree
/// reconverges in leaves-1 sync() applications.
sem::Warp nested_tree(std::uint32_t leaves, std::uint32_t threads_per_leaf,
                      std::uint32_t base) {
  sem::Warp acc = sem::make_warp(0, threads_per_leaf);
  acc.set_uni_pc(base);
  for (std::uint32_t i = 1; i < leaves; ++i) {
    sem::Warp leaf = sem::make_warp(i * threads_per_leaf, threads_per_leaf);
    leaf.set_uni_pc(base + i - 1);
    acc = sem::Warp(std::move(acc), std::move(leaf));
  }
  return acc;
}

void BM_SyncUniform(benchmark::State& state) {
  const sem::Warp proto = sem::make_warp(0, 32);
  for (auto _ : state) {
    sem::Warp w = proto;
    benchmark::DoNotOptimize(w = sem::sync_warp(std::move(w)));
  }
}
BENCHMARK(BM_SyncUniform);

void BM_SyncOneLevelMerge(benchmark::State& state) {
  const sem::Warp proto(sem::make_warp(0, 16), sem::make_warp(16, 16));
  for (auto _ : state) {
    sem::Warp w = proto;
    benchmark::DoNotOptimize(w = sem::sync_warp(std::move(w)));
  }
}
BENCHMARK(BM_SyncOneLevelMerge);

/// Full reconvergence of a `leaves`-leaf nested tree: apply sync()
/// until the warp is uniform, counting applications.
void BM_SyncNestedTree(benchmark::State& state) {
  const auto leaves = static_cast<std::uint32_t>(state.range(0));
  const sem::Warp proto = nested_tree(leaves, 4, 10);
  std::uint64_t applications = 0;
  for (auto _ : state) {
    sem::Warp w = proto;
    while (w.divergent()) {
      w = sem::sync_warp(std::move(w));
      ++applications;
    }
    if (w.thread_count() != 4ull * leaves ||
        w.uni_pc() != 10 + leaves - 1) {
      throw KernelError("sync lost threads or advanced wrongly");
    }
    benchmark::DoNotOptimize(w);
  }
  state.counters["sync_calls_per_reconvergence"] =
      static_cast<double>(applications) /
      static_cast<double>(state.iterations());
  state.counters["leaves"] = leaves;
}
BENCHMARK(BM_SyncNestedTree)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Deep-copy cost of divergence trees (what the explorer pays).
void BM_WarpTreeCopy(benchmark::State& state) {
  const auto leaves = static_cast<std::uint32_t>(state.range(0));
  const sem::Warp proto = nested_tree(leaves, 4, 10);
  for (auto _ : state) {
    sem::Warp w = proto;
    benchmark::DoNotOptimize(w);
  }
  state.counters["leaves"] = leaves;
}
BENCHMARK(BM_WarpTreeCopy)->Arg(2)->Arg(8)->Arg(32);

struct Banner {
  Banner() {
    std::printf(
        "F2 — Fig. 2 sync(): reconvergence cost vs divergence-tree\n"
        "shape.  Each nested tree of k same-pc leaves reconverges to a\n"
        "canonical uniform warp in k-1 sync steps (counter below).\n\n");
  }
} banner;

}  // namespace
