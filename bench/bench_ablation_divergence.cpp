// Ablation — the warp-divergence analysis in the Sync-insertion pass
// (DESIGN.md calls this design choice out explicitly).
//
// The paper's Fig. 2 sync function reconverges a divergence tree by
// rotating and merging; a Sync executed for a branch that never split
// the warp, while an *enclosing* divergence is still open, rotates the
// tree forever.  Real compilers avoid this with divergence analysis
// (the paper's related work [14]); this ablation compares:
//
//   DivergentOnly (default) — Syncs only at joins of tid-dependent
//                             branches: scan_signature terminates;
//   AllBranches   (naive)   — a Sync at every branch join: the same
//                             kernel livelocks (step bound exceeded)
//                             whenever its bounds guard diverges.
//
// Also measured: the cost of the analysis itself and the number of
// Syncs it avoids across the corpus.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace {

using namespace cac;

ptx::Program lower_scan(ptx::LowerOptions::SyncPolicy policy) {
  ptx::LowerOptions opts;
  opts.sync_policy = policy;
  return ptx::load_ptx(programs::scan_signature_ptx(), opts)
      .kernel("scan_signature");
}

sem::Machine scan_machine(const ptx::Program& prg,
                          const sem::KernelConfig& kc) {
  sem::Launch launch(prg, kc, mem::MemSizes{0x200, 0, 0, 0, 1});
  launch.param("data", 0).param("pattern", 0x100).param("out", 0x140)
      .param("dlen", 8).param("plen", 3);
  const char* data = "abcabcab";
  launch.memory().write_init(mem::Space::Global, 0, data, 8);
  launch.memory().write_init(mem::Space::Global, 0x100, "abc", 3);
  return launch.machine();
}

void BM_ScanDivergentOnlyPolicy(benchmark::State& state) {
  // 10 threads > 6 valid positions: the bounds guard diverges.
  const ptx::Program prg =
      lower_scan(ptx::LowerOptions::SyncPolicy::DivergentOnly);
  const sem::KernelConfig kc{{1, 1, 1}, {10, 1, 1}, 10};
  const sem::Machine proto = scan_machine(prg, kc);
  for (auto _ : state) {
    sem::Machine m = proto;
    sched::FirstChoiceScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s, 4096);
    if (!r.terminated()) throw KernelError("default policy failed");
    benchmark::DoNotOptimize(m);
  }
  state.counters["terminates"] = 1;
}
BENCHMARK(BM_ScanDivergentOnlyPolicy);

void BM_ScanAllBranchesPolicyLivelocks(benchmark::State& state) {
  const ptx::Program prg =
      lower_scan(ptx::LowerOptions::SyncPolicy::AllBranches);
  const sem::KernelConfig kc{{1, 1, 1}, {10, 1, 1}, 10};
  const sem::Machine proto = scan_machine(prg, kc);
  for (auto _ : state) {
    sem::Machine m = proto;
    sched::FirstChoiceScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s, 4096);
    if (r.terminated()) {
      throw KernelError("naive policy unexpectedly terminated");
    }
    benchmark::DoNotOptimize(m);
  }
  state.counters["terminates"] = 0;  // livelock: bound exceeded
}
BENCHMARK(BM_ScanAllBranchesPolicyLivelocks);

void BM_DivergenceAnalysisCost(benchmark::State& state) {
  // Front-end cost with and without the analysis (AllBranches skips
  // it): the delta is the analysis fixpoint itself.
  const ptx::AstModule ast =
      ptx::parse_module(programs::scan_signature_ptx());
  ptx::LowerOptions opts;
  opts.sync_policy = state.range(0) == 0
                         ? ptx::LowerOptions::SyncPolicy::AllBranches
                         : ptx::LowerOptions::SyncPolicy::DivergentOnly;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptx::lower(ast, opts));
  }
  state.SetLabel(state.range(0) == 0 ? "all-branches" : "divergent-only");
}
BENCHMARK(BM_DivergenceAnalysisCost)->Arg(0)->Arg(1);

struct Banner {
  Banner() {
    std::printf(
        "Ablation — divergence-aware Sync insertion.  Syncs inserted\n"
        "per kernel (divergent-only vs all-branches):\n");
    for (auto src :
         {&programs::vector_add_ptx, &programs::xor_cipher_ptx,
          &programs::scan_signature_ptx, &programs::reduce_shared_ptx}) {
      ptx::LowerOptions div_only, all;
      all.sync_policy = ptx::LowerOptions::SyncPolicy::AllBranches;
      const auto ma = ptx::load_ptx((*src)(), div_only);
      const auto mb = ptx::load_ptx((*src)(), all);
      for (std::size_t k = 0; k < ma.kernels.size(); ++k) {
        std::size_t sa = 0, sb = 0;
        for (const auto& i : ma.kernels[k].code()) {
          if (ptx::is_sync(i)) ++sa;
        }
        for (const auto& i : mb.kernels[k].code()) {
          if (ptx::is_sync(i)) ++sb;
        }
        std::printf("  %-16s %zu vs %zu\n", ma.kernels[k].name().c_str(),
                    sa, sb);
      }
    }
    std::printf("\n");
  }
} banner;

}  // namespace
