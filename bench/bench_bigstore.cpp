// Tiered-store scaling: what the external-memory StateStore buys at
// state counts where the all-hot representation stops fitting.
//
//  * BM_BigStoreIntern — synthetic direct-intern throughput at large N
//    under a resident budget with a spill segment; the acceptance run
//    (--big) pushes 10^7 states through a 512 MiB budget and reports
//    the resident and spilled split.  Without --big a 10^5-state
//    version runs so CI can smoke the binary cheaply.
//  * BM_BigExploreLattice — a real exploration past 10^6 states
//    (straightline lattice, 4 warps) under a budget, throwing if the
//    run is anything but exhaustive: budget pressure must never turn
//    into a truncated verdict.
//  * BM_StoreBudgetSweep — vecadd / saxpy / reduce_shared explored at
//    100% / 50% / 10% of their unbounded resident footprint, pinning
//    verdict identity against the unbounded run and reporting resident
//    bytes per state.  The reduce_shared row is the headline: PR2
//    measured 355.5 resident B/state for this workload with the flat
//    store (BENCH_explore.json "state_store"); the tiered store with
//    delta encoding has to beat it by >= 3x at the 10% budget point.
//
// tools/bench_to_json.py snapshots these counters into
// BENCH_explore.json under "store_tiers".
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/checkpoint.h"
#include "sched/explore.h"
#include "sched/state_store.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

bool g_big = false;  // --big: run the 10^7-state acceptance configs

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t size) {
  const VecAddLayout L;
  sem::LaunchSpec spec;
  spec.grid = kc.grid;
  spec.block = kc.block;
  spec.warp_size = kc.warp_size;
  spec.global_bytes = L.global_bytes;
  spec.shared_bytes = 0;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", size}};
  for (std::uint32_t i = 0; i < size && 4 * i < 0x100; ++i) {
    spec.inits.emplace_back(L.a + 4 * i, i);
    spec.inits.emplace_back(L.b + 4 * i, i);
  }
  return spec.to_launch(prg).machine();
}

void report_store(benchmark::State& state,
                  const sched::StateStore::Stats& st) {
  const auto per_state = [&](std::uint64_t bytes) {
    return st.states == 0 ? 0.0
                          : static_cast<double>(bytes) /
                                static_cast<double>(st.states);
  };
  state.counters["states"] = static_cast<double>(st.states);
  state.counters["resident_bytes"] = static_cast<double>(st.resident_bytes);
  state.counters["spilled_bytes"] = static_cast<double>(st.spilled_bytes);
  state.counters["resident_bytes_per_state"] = per_state(st.resident_bytes);
  state.counters["hot_evictions"] = static_cast<double>(st.hot_evictions);
  state.counters["spills"] = static_cast<double>(st.spills);
  state.counters["rematerializations"] =
      static_cast<double>(st.rematerializations);
  state.counters["delta_fragments"] = static_cast<double>(st.delta_fragments);
  state.counters["bloom_hit_rate"] = st.bloom_hit_rate();
  state.counters["dedup_ratio"] = st.dedup_ratio();
}

/// Direct-intern scaling: N distinct states (a counter poked into the
/// global bank, the step-shaped edit the delta tier is built for)
/// pushed through a budgeted store with a spill segment.  The
/// acceptance criterion is that resident_bytes stays near the budget
/// while the full set remains dedupable: a re-intern probe of a
/// sample must find every state already present.
void BM_BigStoreIntern(benchmark::State& state) {
  const std::uint64_t n = g_big ? 10'000'000 : 100'000;
  const std::uint64_t budget =
      g_big ? (512ull << 20)
            : (8ull << 20);  // scaled down with the state count

  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Machine m = vecadd_machine(prg, kc, 8);

  for (auto _ : state) {
    sched::StoreOptions so;
    so.spill_dir = "/tmp";
    so.resident_budget_bytes = budget;
    sched::StateStore store(so);

    sched::StateId parent{};
    for (std::uint64_t i = 0; i < n; ++i) {
      m.memory.store(mem::Space::Global, 0, 4,
                     static_cast<std::uint32_t>(i), true);
      m.invalidate_hash();
      const auto r = store.intern(m, ~0ull, parent);
      if (!r.id.valid() || !r.inserted) {
        throw KernelError("synthetic intern produced a duplicate");
      }
      parent = r.id;
    }

    // Spot-check dedup through the tiers: every sampled state must
    // still be found (not re-inserted) after all that eviction.
    for (std::uint64_t i = 0; i < n; i += n / 100) {
      m.memory.store(mem::Space::Global, 0, 4,
                     static_cast<std::uint32_t>(i), true);
      m.invalidate_hash();
      if (store.intern(m).inserted) {
        throw KernelError("tiered store lost a state");
      }
    }

    const auto st = store.stats();
    if (st.states != n) throw KernelError("state count drifted");
    // "Near the budget": the un-evictable floor (tuple table, hash
    // index) plus one sweep's slack; 2x is the alarm threshold.
    if (st.resident_bytes > 2 * budget) {
      throw KernelError("resident bytes escaped the budget");
    }
    report_store(state, st);
    state.counters["budget_bytes"] = static_cast<double>(budget);
    state.counters["rss_bytes"] =
        static_cast<double>(sched::current_rss_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      n * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_BigStoreIntern)->Unit(benchmark::kMillisecond)->UseRealTime();

/// A real exploration past 10^6 states under a budget.  The 4-warp
/// straightline lattice has C(4k, k,k,k,k)-style interleaving growth:
/// 4 warps x 31 instructions reaches ~1.05M distinct states.  The run
/// must stay exhaustive — a budget can slow the run, never truncate
/// it.
void BM_BigExploreLattice(benchmark::State& state) {
  const ptx::Program prg = programs::straightline_program(31);
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};  // 4 warps
  const sem::Machine init =
      sem::Launch(prg, kc, mem::MemSizes{}).machine();

  sched::ExploreOptions opts;
  opts.stop_at_first_violation = false;
  opts.max_states = 4u << 20;  // the default 2^20 sits below the lattice
  opts.store_spill_dir = "/tmp";
  opts.store_resident_budget_bytes = 256ull << 20;

  sched::StateStore::Stats st;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(prg, kc, init, opts);
    if (!r.exhaustive || r.limit_hit != sched::ExploreResult::Limit::None) {
      throw KernelError("big exploration hit a limit under budget");
    }
    states = r.states_visited;
    st = r.store_stats;
  }
  if (states < 1'000'000) throw KernelError("lattice smaller than 10^6");
  report_store(state, st);
  state.counters["rss_bytes"] =
      static_cast<double>(sched::current_rss_bytes());
  state.SetItemsProcessed(static_cast<std::int64_t>(
      states * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_BigExploreLattice)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/// Budget sweep on the acceptance kernels.  Arg 0 selects the
/// workload (0 = vecadd, 1 = saxpy, 2 = reduce_shared), arg 1 the
/// budget as a percentage of the unbounded resident footprint (100 =
/// effectively unbounded, 50, 10).  Every budgeted run must reproduce
/// the unbounded verdict exactly.
void BM_StoreBudgetSweep(benchmark::State& state) {
  const auto workload = static_cast<int>(state.range(0));
  const auto pct = static_cast<std::uint64_t>(state.range(1));

  ptx::Program prg = programs::vector_add_listing2();
  sem::KernelConfig kc{{1, 1, 1}, {12, 1, 1}, 4};
  sem::Machine init;
  const char* name = "vecadd";
  if (workload == 0) {
    init = vecadd_machine(prg, kc, 12);
  } else if (workload == 1) {
    name = "saxpy";
    prg = ptx::load_ptx(programs::saxpy_ptx()).kernel("saxpy");
    kc = sem::KernelConfig{{1, 1, 1}, {8, 1, 1}, 4};
    sem::Launch launch(prg, kc, mem::MemSizes{256, 0, 0, 0, 1});
    launch.param("arr_X", 0).param("arr_Y", 64).param("a", 7).param("size",
                                                                    8);
    for (std::uint32_t i = 0; i < 8; ++i) {
      launch.global_u32(4 * i, i + 1);
      launch.global_u32(64 + 4 * i, 100 * i);
    }
    init = launch.machine();
  } else {
    name = "reduce_shared";
    prg = ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
    kc = sem::KernelConfig{{1, 1, 1}, {4, 1, 1}, 2};
    sem::LaunchSpec spec;
    spec.grid = kc.grid;
    spec.block = kc.block;
    spec.warp_size = kc.warp_size;
    spec.global_bytes = 256;
    spec.shared_bytes = 256;
    spec.params = {{"arr_A", 0}, {"out", 128}};
    for (std::uint32_t i = 0; i < 4; ++i) {
      spec.inits.emplace_back(4 * i, i * i + 1);
    }
    init = spec.to_launch(prg).machine();
  }

  sched::ExploreOptions unbounded;
  unbounded.stop_at_first_violation = false;
  const sched::ExploreResult full = sched::explore(prg, kc, init, unbounded);
  if (!full.exhaustive) throw KernelError("unbounded run not exhaustive");

  sched::ExploreOptions opts = unbounded;
  opts.store_spill_dir = "/tmp";
  opts.store_resident_budget_bytes =
      pct >= 100 ? 0 : full.store_stats.resident_bytes * pct / 100;

  sched::StateStore::Stats st;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(prg, kc, init, opts);
    if (r.states_visited != full.states_visited ||
        r.transitions != full.transitions ||
        r.final_ids.size() != full.final_ids.size() ||
        r.violations.size() != full.violations.size()) {
      throw KernelError("budgeted verdict diverged from unbounded");
    }
    st = r.store_stats;
  }
  report_store(state, st);
  state.counters["budget_pct"] = static_cast<double>(pct);
  state.counters["workload"] = workload;
  state.SetLabel(name);
}
BENCHMARK(BM_StoreBudgetSweep)
    ->ArgNames({"workload", "budget_pct"})
    ->ArgsProduct({{0, 1, 2}, {100, 50, 10}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

/// Custom main: `--quick` maps to a short min_time for the CI smoke
/// step; `--big` switches BM_BigStoreIntern to the 10^7-state
/// acceptance configuration (tens of seconds, never run by default).
int main(int argc, char** argv) {
  std::vector<char*> args;
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.push_back(quick_flag);
    } else if (std::strcmp(argv[i], "--big") == 0) {
      g_big = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
