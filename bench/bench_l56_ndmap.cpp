// Experiment L56 — paper Listings 5 & 6: nd_map and nd_map_eq.
//
// The theorem is checked exhaustively over all n! removal orders for
// n = 1..9 (the derivation counter is verified to equal n!), and the
// relation decision procedure is benchmarked on positive and negative
// instances.  The semantic counterpart — warp lane-order independence
// — is measured on the vector sum (all 4! lane orders of a 4-thread
// warp re-run and compared).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>

#include "check/lane_order.h"
#include "check/ndmap.h"
#include "programs/corpus.h"
#include "sem/launch.h"

namespace {

using namespace cac;

const std::function<int(const int&)> kF = [](const int& x) {
  return 3 * x + 1;
};

void BM_NdMapEqExhaustive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<int> l(n);
  std::iota(l.begin(), l.end(), 0);
  std::uint64_t derivations = 0;
  for (auto _ : state) {
    const check::NdMapEqResult r = check::check_nd_map_eq(kF, l);
    if (!r.holds) throw KernelError("nd_map_eq violated");
    derivations = r.derivations;
    benchmark::DoNotOptimize(r);
  }
  std::uint64_t fact = 1;
  for (std::size_t i = 2; i <= n; ++i) fact *= i;
  if (derivations != fact) throw KernelError("derivation count != n!");
  state.counters["n"] = static_cast<double>(n);
  state.counters["derivations"] = static_cast<double>(derivations);
}
BENCHMARK(BM_NdMapEqExhaustive)->DenseRange(1, 9);

void BM_NdMapRelationPositive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<int> l(n);
  std::iota(l.begin(), l.end(), 5);
  std::vector<int> mapped;
  for (int x : l) mapped.push_back(kF(x));
  for (auto _ : state) {
    if (!check::nd_map_related(kF, l, mapped)) {
      throw KernelError("relation rejected map f l");
    }
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_NdMapRelationPositive)->Arg(4)->Arg(6)->Arg(8);

void BM_NdMapRelationNegative(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<int> l(n);
  std::iota(l.begin(), l.end(), 5);
  std::vector<int> wrong;
  for (int x : l) wrong.push_back(kF(x));
  wrong.back() ^= 1;
  for (auto _ : state) {
    if (check::nd_map_related(kF, l, wrong)) {
      throw KernelError("relation accepted a wrong output");
    }
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_NdMapRelationNegative)->Arg(4)->Arg(6)->Arg(8);

/// The semantic content of nd_map: every lane order of a real warp
/// gives the same final machine (vector sum, 4 threads, 24 orders).
void BM_LaneOrderIndependenceVectorAdd(benchmark::State& state) {
  const ptx::Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  const sem::Machine init = launch.machine();
  for (auto _ : state) {
    const check::LaneOrderResult r =
        check::check_lane_order_independence(prg, kc, init);
    if (!r.independent) throw KernelError("lane order changed the result");
    benchmark::DoNotOptimize(r);
  }
  state.counters["orders"] = 24;
}
BENCHMARK(BM_LaneOrderIndependenceVectorAdd);

struct Banner {
  Banner() {
    std::printf(
        "L56 — Listings 5/6 nd_map_eq: exhaustive check over all n!\n"
        "removal orders (derivations counter verified to equal n!),\n"
        "the relation decision procedure, and the semantic lane-order\n"
        "independence check on the vector sum.\n\n");
  }
} banner;

}  // namespace
