// Distributed exploration cost model: what a forked worker fleet
// costs on one host (process launch, frontier exchange over AF_UNIX
// sockets, coordinator merge + replay) and how evenly the hash
// partition spreads the visited set.  The workload is the paper's
// vector sum, same as bench_parallel_explore and bench_checkpoint, so
// the numbers compose: the speedup_vs_serial field bench_to_json.py
// derives is the single-host distribution overhead (expected < 1 on a
// one-core container — the fleet buys address-space capacity and
// fault isolation, not wall-clock, until it spans hosts).
//
// tools/bench_to_json.py runs this binary (alongside
// bench_parallel_explore and bench_checkpoint) and snapshots the
// per-worker ownership counters, frontier message volume, and
// shard-balance skew into BENCH_explore.json's `distributed` section.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sem/launch.h"
#include "support/fault.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t size) {
  const VecAddLayout L;
  sem::LaunchSpec spec;
  spec.grid = kc.grid;
  spec.block = kc.block;
  spec.warp_size = kc.warp_size;
  spec.global_bytes = L.global_bytes;
  spec.shared_bytes = 0;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", size}};
  for (std::uint32_t i = 0; i < size && 4 * i < 0x100; ++i) {
    spec.inits.emplace_back(L.a + 4 * i, i);
    spec.inits.emplace_back(L.b + 4 * i, i);
  }
  return spec.to_launch(prg).machine();
}

struct Workload {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;
  explicit Workload(std::uint32_t warps)
      : prg(programs::vector_add_listing2()),
        kc{{1, 1, 1}, {4 * warps, 1, 1}, 4},
        init(vecadd_machine(prg, kc, 4 * warps)) {}
};

/// Distributed exploration over a forked single-host fleet.  workers=0
/// is the serial baseline (the in-process engine, no fleet at all) so
/// bench_to_json.py can derive speedup_vs_serial; workers>=1 launches
/// that many partition-owning processes per iteration, including the
/// fork, socket setup, frontier exchange, graph merge, and replay.
void BM_DistExplore(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  const bool por = state.range(1) != 0;
  const Workload w(2);

  sched::ExploreOptions opts;
  opts.partial_order_reduction = por;

  std::uint64_t states = 0, total = 0, frontier = 0;
  double skew = 1.0;
  std::vector<std::uint64_t> owned;
  for (auto _ : state) {
    if (workers == 0) {
      const sched::ExploreResult r = sched::explore(w.prg, w.kc, w.init, opts);
      if (!r.exhaustive) throw KernelError("serial run not exhaustive");
      states = r.states_visited;
      total += r.states_visited;
      continue;
    }
    dist::DistOptions dopts;
    dopts.n_workers = workers;
    const dist::DistResult r =
        dist::explore_distributed(w.prg, w.kc, w.init, opts, dopts);
    if (!r.result.exhaustive) throw KernelError("dist run not exhaustive");
    states = r.result.states_visited;
    total += r.result.states_visited;
    frontier = r.stats.frontier_msgs;
    skew = r.stats.skew();
    owned.clear();
    for (const auto& pw : r.stats.workers) owned.push_back(pw.owned);
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["por"] = por ? 1.0 : 0.0;
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  if (workers != 0) {
    state.counters["frontier_msgs"] = static_cast<double>(frontier);
    state.counters["shard_skew"] = skew;
    for (std::size_t i = 0; i < owned.size(); ++i) {
      state.counters["owned_w" + std::to_string(i)] =
          static_cast<double>(owned[i]);
    }
  }
}
BENCHMARK(BM_DistExplore)
    ->ArgNames({"workers", "por"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({0, 1})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The same 2-worker fleet with the fault seam ARMED by a rule that
/// can never match: every guarded syscall in the coordinator and the
/// forked workers pays the slow path's lock + rule scan instead of
/// one relaxed load.  Compared against BM_DistExplore workers=2 this
/// bounds the chaos harness's observer effect on a real fleet run;
/// with the seam disabled (every other bench here) the cost is zero
/// by construction — BM_FaultSeamDisabled in bench_serve pins that.
void BM_DistExploreSeamArmed(benchmark::State& state) {
  const Workload w(2);
  sched::ExploreOptions opts;
  support::ScopedFaultPlan plan("op=none,path=never-*,nth=1,err=EIO");
  std::uint64_t total = 0;
  for (auto _ : state) {
    dist::DistOptions dopts;
    dopts.n_workers = 2;
    const dist::DistResult r =
        dist::explore_distributed(w.prg, w.kc, w.init, opts, dopts);
    if (!r.result.exhaustive) throw KernelError("dist run not exhaustive");
    total += r.result.states_visited;
  }
  state.counters["workers"] = 2.0;
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistExploreSeamArmed)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

struct Banner {
  Banner() {
    std::printf(
        "Distributed exploration cost model — forked worker fleet with a\n"
        "hash-partitioned visited set.  workers=0 is the in-process serial\n"
        "baseline; each fleet iteration includes fork, socket setup,\n"
        "frontier exchange, merge, and replay.  Verdicts are byte-identical\n"
        "to the serial engine by construction.\n\n");
  }
} banner;

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// minimal measuring time before the standard benchmark flags parse.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
