// Experiment F3 — paper Fig. 3: block/grid rules (execb, lift-bar,
// execg).
//
// Measures: choice enumeration (the source of scheduler
// nondeterminism) as the grid grows, the lift-bar rule (barrier lift +
// Shared commit) as the per-block Shared bank grows, and whole-grid
// execution throughput as blocks/warps scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "sem/step.h"

namespace {

using namespace cac;
using namespace cac::ptx;

/// Choice enumeration cost vs grid size (execg's nondeterminism set).
void BM_EligibleChoices(benchmark::State& state) {
  const auto blocks = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::straightline_program(4);
  const sem::KernelConfig kc{{blocks, 1, 1}, {64, 1, 1}, 32};  // 2 warps/block
  const sem::Grid g = sem::generate_grid(kc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sem::eligible_choices(prg, g));
  }
  state.counters["choices"] = static_cast<double>(blocks * 2);
}
BENCHMARK(BM_EligibleChoices)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// The lift-bar rule: advance all warps + commit(mu) on the block's
/// Shared bank.
void BM_LiftBar(benchmark::State& state) {
  const auto shared_bytes = static_cast<std::uint64_t>(state.range(0));
  const ptx::Program prg("bar", {IBar{}, IExit{}});
  const sem::KernelConfig kc{{1, 1, 1}, {64, 1, 1}, 32};
  mem::MemSizes sizes;
  sizes.shared = shared_bytes;
  const sem::Machine proto{sem::generate_grid(kc), mem::Memory(sizes)};
  const sem::Choice lift{sem::Choice::Kind::LiftBar, 0, 0};
  for (auto _ : state) {
    sem::Machine m = proto;
    benchmark::DoNotOptimize(sem::apply_choice(prg, kc, m, lift));
  }
  state.counters["shared_bytes"] = static_cast<double>(shared_bytes);
}
BENCHMARK(BM_LiftBar)->Arg(64)->Arg(1024)->Arg(16384);

/// Whole-grid execution throughput (execg + execb): vector add across
/// a growing grid, deterministic schedule.
void BM_GridRun(benchmark::State& state) {
  const auto blocks = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{blocks, 1, 1}, {32, 1, 1}, 32};
  const std::uint32_t n = blocks * 32;
  const std::uint64_t A = 0, B = 4ull * n, C = 8ull * n;
  sem::Launch launch(prg, kc, mem::MemSizes{12ull * n, 0, 0, 0, 1});
  launch.param("arr_A", A).param("arr_B", B).param("arr_C", C)
      .param("size", n);
  for (std::uint32_t i = 0; i < n; ++i) {
    launch.global_u32(A + 4 * i, i);
    launch.global_u32(B + 4 * i, i);
  }
  const sem::Machine proto = launch.machine();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sem::Machine m = proto;
    sched::FirstChoiceScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s);
    steps += r.steps;
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["grid_steps"] =
      static_cast<double>(steps) / static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(n);
}
BENCHMARK(BM_GridRun)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Barrier-heavy grid: the reduction, scaling warps per block.
void BM_GridReduction(benchmark::State& state) {
  const auto tpb = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {tpb, 1, 1}, 8};
  sem::Launch launch(prg, kc, mem::MemSizes{4ull * tpb + 64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 4ull * tpb);
  for (std::uint32_t i = 0; i < tpb; ++i) launch.global_u32(4 * i, 1);
  const sem::Machine proto = launch.machine();
  for (auto _ : state) {
    sem::Machine m = proto;
    sched::RoundRobinScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s);
    if (!r.terminated() ||
        m.memory.load(mem::Space::Global, 4ull * tpb, 4) != tpb) {
      throw KernelError("reduction failed");
    }
  }
  state.counters["warps"] = static_cast<double>(kc.warps_per_block());
}
BENCHMARK(BM_GridReduction)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

struct Banner {
  Banner() {
    std::printf(
        "F3 — Fig. 3 block/grid rules: choice enumeration (execg's\n"
        "nondeterminism), lift-bar (Shared commit) cost, and grid\n"
        "execution scaling in blocks and warps.\n\n");
  }
} banner;

}  // namespace
