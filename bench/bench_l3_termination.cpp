// Experiment L3 — paper Listing 3: add_vector_terminates.
//
// The paper proves: after 19 grid steps at kc = ((1,1,1),(32,1,1)),
// the vector sum has terminated.  This bench re-establishes the bound
// (the deterministic run takes exactly 19 steps; the model checker
// proves every schedule does) and measures the cost of both the
// concrete run and the exhaustive proof as the configuration grows —
// the axis on which proof effort scales.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "check/model.h"
#include "programs/corpus.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

sem::Launch make_launch(const ptx::Program& prg, const sem::KernelConfig& kc,
                        std::uint32_t size) {
  const VecAddLayout L;
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", size);
  for (std::uint32_t i = 0; i < 64 && 4 * i < 0x100; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  return launch;
}

/// The paper's exact theorem instance: one warp of 32, 19 steps.
void BM_PaperConfigDeterministicRun(benchmark::State& state) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  const sem::Machine proto = make_launch(prg, kc, 32).machine();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sem::Machine m = proto;
    sched::FirstChoiceScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s);
    if (!r.terminated() || r.steps != 19) {
      throw KernelError("Listing 3 bound violated");
    }
    steps += r.steps;
  }
  state.counters["grid_steps"] = 19;
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PaperConfigDeterministicRun);

/// Exhaustive proof of the 19-step bound over every schedule, scaling
/// the number of warps (the schedule space grows combinatorially).
void BM_ProveTerminationAllSchedules(benchmark::State& state) {
  const auto warps = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4 * warps, 1, 1}, 4};
  const sem::Machine init = make_launch(prg, kc, 4 * warps).machine();
  check::ModelCheckOptions opts;
  opts.expect_exact_steps = 19ull * warps;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const check::Verdict v = check::prove_termination(prg, kc, init, opts);
    if (!v.proved()) throw KernelError("termination proof failed: " + v.detail);
    states = v.exploration.states_visited;
  }
  state.counters["warps"] = warps;
  state.counters["states"] = static_cast<double>(states);
  state.counters["steps_every_schedule"] = static_cast<double>(19 * warps);
}
BENCHMARK(BM_ProveTerminationAllSchedules)->Arg(1)->Arg(2)->Arg(3);

/// Divergent instance (size < threads): the warp splits at the guard
/// and reconverges at the Sync; the 19-step bound still holds.
void BM_DivergentStillNineteen(benchmark::State& state) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  const sem::Machine proto = make_launch(prg, kc, 16).machine();
  for (auto _ : state) {
    sem::Machine m = proto;
    sched::FirstChoiceScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s);
    if (!r.terminated() || r.steps != 19) {
      throw KernelError("divergent bound violated");
    }
    benchmark::DoNotOptimize(m);
  }
  state.counters["grid_steps"] = 19;
}
BENCHMARK(BM_DivergentStillNineteen);

/// Partial correctness A+B=C proved over all schedules as the thread
/// count scales (total correctness together with the above).
void BM_ProveTotalCorrectness(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {threads, 1, 1}, 4};
  const VecAddLayout L;
  const sem::Machine init = make_launch(prg, kc, threads).machine();
  check::Spec post;
  for (std::uint32_t i = 0; i < threads; ++i) {
    post.mem_u32(mem::Space::Global, L.c + 4 * i, 2 * i);
  }
  for (auto _ : state) {
    const check::Verdict v = check::prove_total(prg, kc, init, post);
    if (!v.proved()) throw KernelError("total correctness failed");
    benchmark::DoNotOptimize(v);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ProveTotalCorrectness)->Arg(4)->Arg(8)->Arg(12);

struct Banner {
  Banner() {
    std::printf(
        "L3 — Listing 3 add_vector_terminates: every run below checks\n"
        "the paper's bound (19 grid steps per warp at the paper's\n"
        "config; uniform and divergent); the *_AllSchedules variants\n"
        "are finite-configuration proofs over the whole schedule\n"
        "space.\n\n");
  }
} banner;

}  // namespace
