// Experiment L12 — paper Listings 1 & 2: the PTX front end.
//
// Parses the verbatim Listing-1 vector-sum PTX and lowers it to the
// model, then diffs the result against the paper's hand translation
// (Listing 2): same parameter layout, same branch/reconvergence
// structure, 20 vs 23 instructions (the three cvta Movs the authors
// dropped by hand are kept by the mechanical lowering).  Benchmarks
// cover the lexer, parser, CFG/post-dominator analysis and lowering.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "programs/corpus.h"
#include "ptx/cfg.h"
#include "ptx/lexer.h"
#include "ptx/lower.h"

namespace {

using namespace cac;

void print_diff() {
  const ptx::Program mech =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  const ptx::Program hand = programs::vector_add_listing2();
  std::printf(
      "L12 — Listing 1 -> model translation\n"
      "  mechanical lowering: %2zu instructions\n"
      "  paper's Listing 2:   %2zu instructions (cvta dropped by hand)\n",
      mech.size(), hand.size());
  const auto hm = histogram(mech);
  const auto hh = histogram(hand);
  std::printf("  histogram delta (mechanical - hand):");
  for (std::size_t k = 0; k < std::size(hm.counts); ++k) {
    if (hm.counts[k] != hh.counts[k]) {
      std::printf(" [variant %zu: %+d]", k,
                  static_cast<int>(hm.counts[k]) -
                      static_cast<int>(hh.counts[k]));
    }
  }
  std::printf("  (exactly the three cvta Movs)\n\n");
}

void BM_Lex(benchmark::State& state) {
  const std::string src = programs::vector_add_ptx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptx::lex(src));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const std::string src = programs::vector_add_ptx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptx::parse_module(src));
  }
}
BENCHMARK(BM_Parse);

void BM_LowerWithSyncInsertion(benchmark::State& state) {
  const ptx::AstModule ast = ptx::parse_module(programs::vector_add_ptx());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptx::lower(ast));
  }
}
BENCHMARK(BM_LowerWithSyncInsertion);

void BM_CfgAndPostdominators(benchmark::State& state) {
  ptx::LowerOptions no_sync;
  no_sync.insert_syncs = false;
  const ptx::Program prg =
      ptx::load_ptx(programs::scan_signature_ptx(), no_sync)
          .kernel("scan_signature");
  for (auto _ : state) {
    const ptx::Cfg cfg(prg.code());
    benchmark::DoNotOptimize(cfg.ipostdom());
  }
}
BENCHMARK(BM_CfgAndPostdominators);

void BM_FullFrontEndAllKernels(benchmark::State& state) {
  const std::string srcs[] = {
      programs::vector_add_ptx(),   programs::xor_cipher_ptx(),
      programs::scan_signature_ptx(), programs::reduce_shared_ptx(),
      programs::atomic_sum_ptx(),   programs::race_store_ptx(),
  };
  std::size_t instrs = 0;
  for (auto _ : state) {
    for (const std::string& s : srcs) {
      const ptx::LoweredModule m = ptx::load_ptx(s);
      for (const ptx::Program& k : m.kernels) instrs += k.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_FullFrontEndAllKernels);

struct Banner {
  Banner() { print_diff(); }
} banner;

}  // namespace
