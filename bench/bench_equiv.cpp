// The equivalence checker as the benchmark subject (docs/equiv.md):
// normalizer throughput on random term DAGs, end-to-end proof time as
// the unroll factor grows (the checker's core scaling axis — more
// unrolled loads per thread means wider linear combinations to
// collapse), refutation time including the counterexample search and
// concrete replay, and what the verdict cache collapses an equiv
// resubmission to through the real serve socket.
//
// tools/bench_to_json.py snapshots these into BENCH_explore.json
// (section `equiv`), so the proof-time curve and the cold/cached
// ratio accumulate a trajectory across PRs.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "equiv/normalize.h"
#include "front/cache.h"
#include "front/front.h"
#include "front/serve.h"
#include "sym/term.h"

namespace {

using namespace cac;

// --- generated kernel pairs ------------------------------------------
//
// Reference: a counted N-iteration accumulation loop,
//   c[tid] = 2 * (a[tid*N] + a[tid*N+1] + ... + a[tid*N+N-1])
// indexed with mad.lo + mul.wide.  Variant: fully unrolled onto an
// add-chained pointer, the sum re-associated in reverse, and both
// multiplications strength-reduced to shifts — the same shapes as the
// committed examples/equiv/ corpus, scaled by N.

std::string ref_kernel(unsigned n) {
  std::string s = R"(.version 6.0
.target sm_30
.address_size 64
.visible .entry acc(
  .param .u64 a,
  .param .u64 c
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<10>;
  .reg .u64 %rd<9>;
  ld.param.u64 %rd1, [a];
  ld.param.u64 %rd2, [c];
  cvta.to.global.u64 %rd3, %rd1;
  cvta.to.global.u64 %rd4, %rd2;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, 0;
  mov.u32 %r3, 0;
LOOP:
  setp.ge.u32 %p1, %r2, )" + std::to_string(n) + R"(;
  @%p1 bra DONE;
  mad.lo.s32 %r4, %r1, )" + std::to_string(n) + R"(, %r2;
  mul.wide.s32 %rd5, %r4, 4;
  add.s64 %rd6, %rd3, %rd5;
  ld.global.u32 %r5, [%rd6];
  add.s32 %r3, %r3, %r5;
  add.s32 %r2, %r2, 1;
  bra LOOP;
DONE:
  mul.lo.s32 %r6, %r3, 2;
  mul.wide.s32 %rd7, %r1, 4;
  add.s64 %rd8, %rd4, %rd7;
  st.global.u32 [%rd8], %r6;
  ret;
}
)";
  return s;
}

std::string unrolled_kernel(unsigned n, unsigned log2n) {
  std::string s = R"(.version 6.0
.target sm_30
.address_size 64
.visible .entry acc(
  .param .u64 a,
  .param .u64 c
)
{
  .reg .u32 %r<)" + std::to_string(n + 12) + R"(>;
  .reg .u64 %rd<9>;
  ld.param.u64 %rd1, [a];
  ld.param.u64 %rd2, [c];
  cvta.to.global.u64 %rd3, %rd1;
  cvta.to.global.u64 %rd4, %rd2;
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, )" + std::to_string(log2n) + R"(;
  cvt.s64.s32 %rd5, %r2;
  shl.b64 %rd5, %rd5, 2;
  add.s64 %rd6, %rd3, %rd5;
)";
  for (unsigned i = 0; i < n; ++i) {
    if (i != 0) s += "  add.s64 %rd6, %rd6, 4;\n";
    s += "  ld.global.u32 %r" + std::to_string(10 + i) + ", [%rd6];\n";
  }
  // Reverse-order, right-leaning sum: maximally misassociated
  // relative to the reference's left-leaning loop accumulation.
  s += "  mov.u32 %r3, %r" + std::to_string(10 + n - 1) + ";\n";
  for (unsigned i = n - 1; i-- > 0;) {
    s += "  add.s32 %r3, %r3, %r" + std::to_string(10 + i) + ";\n";
  }
  s += R"(  shl.b32 %r4, %r3, 1;
  cvt.s64.s32 %rd7, %r1;
  shl.b64 %rd7, %rd7, 2;
  add.s64 %rd8, %rd4, %rd7;
  st.global.u32 [%rd8], %r4;
  ret;
}
)";
  return s;
}

front::EquivRequest pair_request(std::string src_a, std::string src_b) {
  front::EquivRequest req;
  req.file = "a.ptx";
  req.source = std::move(src_a);
  req.file_b = "b.ptx";
  req.source_b = std::move(src_b);
  req.launch.block = {4, 1, 1};
  req.launch.warp_size = 4;
  return req;
}

// The committed guard_ref/guard_offbyone shapes, inline so the bench
// has no working-directory dependence: the variant's bounds check is
// off by one, so thread tid == n writes where the reference skips.
std::string guard_kernel(const char* cmp) {
  return std::string(R"(.version 6.0
.target sm_30
.address_size 64
.visible .entry inc_guard(
  .param .u64 a,
  .param .u64 c,
  .param .u32 n
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  ld.param.u64 %rd1, [a];
  ld.param.u64 %rd2, [c];
  ld.param.u32 %r1, [n];
  cvta.to.global.u64 %rd3, %rd1;
  cvta.to.global.u64 %rd4, %rd2;
  mov.u32 %r2, %tid.x;
  setp.)") + cmp + R"(.s32 %p1, %r2, %r1;
  @%p1 bra SKIP;
  mul.wide.s32 %rd5, %r2, 4;
  add.s64 %rd6, %rd3, %rd5;
  ld.global.u32 %r3, [%rd6];
  add.s32 %r4, %r3, 1;
  add.s64 %rd7, %rd4, %rd5;
  st.global.u32 [%rd7], %r4;
SKIP:
  ret;
}
)";
}

// --- normalizer throughput -------------------------------------------

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

sym::TermRef random_term(sym::TermArena& a, std::uint64_t& rng, int depth) {
  if (depth <= 0) {
    switch (xorshift64(rng) % 4) {
      case 0: return a.var("x", 32);
      case 1: return a.var("y", 32);
      case 2: return a.var("z", 32);
      default: return a.konst(xorshift64(rng) & 0xff, 32);
    }
  }
  switch (xorshift64(rng) % 8) {
    case 0: return a.add(random_term(a, rng, depth - 1),
                         random_term(a, rng, depth - 1));
    case 1: return a.sub(random_term(a, rng, depth - 1),
                         random_term(a, rng, depth - 1));
    case 2: return a.mul(random_term(a, rng, depth - 1),
                         a.konst(xorshift64(rng) & 0xf, 32));
    case 3: return a.shl(random_term(a, rng, depth - 1),
                         a.konst(xorshift64(rng) % 8, 32));
    case 4: return a.band(random_term(a, rng, depth - 1),
                          random_term(a, rng, depth - 1));
    case 5: return a.bxor(random_term(a, rng, depth - 1),
                          random_term(a, rng, depth - 1));
    case 6: return a.rem(random_term(a, rng, depth - 1),
                         a.konst(1ull << (xorshift64(rng) % 6), 32), false);
    default: return a.neg(random_term(a, rng, depth - 1));
  }
}

/// Normal forms of a fresh batch of random DAGs per iteration (fresh
/// arena + normalizer: memoization inside a batch is the real code
/// path, memoization across iterations would be self-deception).
void BM_NormalizeRandomTerms(benchmark::State& state) {
  constexpr int kBatch = 256;
  std::uint64_t rewrites = 0;
  for (auto _ : state) {
    sym::TermArena arena;
    equiv::Normalizer norm(arena);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(norm.normalize(random_term(arena, rng, 5)));
    }
    rewrites = norm.stats().rewrites;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["rewrites_per_batch"] = static_cast<double>(rewrites);
}
BENCHMARK(BM_NormalizeRandomTerms)->Unit(benchmark::kMillisecond);

// --- end-to-end proof time vs unroll factor --------------------------

void BM_EquivProveUnroll(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  unsigned log2n = 0;
  while ((1u << log2n) < n) ++log2n;
  const std::string ref = ref_kernel(n);
  const std::string unr = unrolled_kernel(n, log2n);
  std::uint64_t rewrites = 0;
  std::uint64_t obligations = 0;
  for (auto _ : state) {
    const front::Result r = front::run_equiv(pair_request(ref, unr));
    if (r.verdict != "equivalent" || r.stats.cex_trials != 0) {
      throw std::runtime_error("expected a symbolic proof: " + r.detail);
    }
    rewrites = r.stats.rewrites;
    obligations = r.stats.obligations;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["unroll"] = n;
  state.counters["rewrites"] = static_cast<double>(rewrites);
  state.counters["obligations"] = static_cast<double>(obligations);
}
BENCHMARK(BM_EquivProveUnroll)
    ->ArgName("n")
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Refutation end to end: symbolic mismatch, counterexample search,
/// and the two concrete replay explorations that validate it.
void BM_EquivRefuteWithReplay(benchmark::State& state) {
  const std::string ref = guard_kernel("ge");
  const std::string bad = guard_kernel("gt");
  std::uint64_t trials = 0;
  for (auto _ : state) {
    const front::Result r = front::run_equiv(pair_request(ref, bad));
    if (r.verdict != "not-equivalent" || !r.equiv_cex.replay_validated) {
      throw std::runtime_error("expected a validated refutation: " +
                               r.detail);
    }
    trials = r.stats.cex_trials;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cex_trials"] = static_cast<double>(trials);
}
BENCHMARK(BM_EquivRefuteWithReplay)->Unit(benchmark::kMillisecond);

// --- equiv through the verdict cache ---------------------------------

struct BenchServer {
  BenchServer() {
    dir = std::filesystem::temp_directory_path() /
          ("cac_bench_equiv_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    std::filesystem::create_directories(dir);
    front::ServeOptions opts;
    opts.unix_path = dir / "sock";
    opts.workers = 2;
    server = std::make_unique<front::Server>(std::move(opts));
    server->start();
  }

  ~BenchServer() {
    server->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  front::Client connect() { return front::Client::connect(dir / "sock"); }

  std::filesystem::path dir;
  std::unique_ptr<front::Server> server;
  static inline int counter = 0;
};

/// Cold equiv submissions: a fresh cache key per iteration (the salt
/// rides in sym.max_steps, which is structural but never reached by
/// this workload — identical proof work, distinct key).
void BM_EquivServeCold(benchmark::State& state) {
  BenchServer bs;
  front::Client client = bs.connect();
  const std::string ref = ref_kernel(4);
  const std::string unr = unrolled_kernel(4, 2);
  std::uint64_t salt = 1;
  for (auto _ : state) {
    front::EquivRequest req = pair_request(ref, unr);
    req.sym.max_steps += salt++;
    const front::Client::Reply r =
        client.call(front::to_json(front::Request{req}));
    if (r.doc.str_or("status", "") != "ok" ||
        r.doc.bool_or("cached", false)) {
      throw std::runtime_error("cold equiv submission misbehaved: " + r.raw);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EquivServeCold)->Unit(benchmark::kMillisecond);

/// Cached resubmission of one equiv verdict: frame + key + LRU hit +
/// verbatim replay of the refutation JSON, counterexample included.
void BM_EquivServeCachedResubmit(benchmark::State& state) {
  BenchServer bs;
  front::Client client = bs.connect();
  const std::string payload = front::to_json(
      front::Request{pair_request(guard_kernel("ge"), guard_kernel("gt"))});
  client.call(payload);  // warm the cache with the refutation
  for (auto _ : state) {
    const front::Client::Reply r = client.call(payload);
    if (!r.doc.bool_or("cached", false)) {
      throw std::runtime_error("expected an equiv cache hit: " + r.raw);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["jobs_run"] =
      static_cast<double>(bs.server->stats().jobs_run);
}
BENCHMARK(BM_EquivServeCachedResubmit)->Unit(benchmark::kMicrosecond);

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// minimal measuring time before the standard benchmark flags parse.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
