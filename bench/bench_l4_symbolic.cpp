// Experiment L4 — paper Listing 4: unroll_apply, the symbolic
// interpreter.
//
// The paper's tactic symbolically executes PTX inside the proof
// environment.  This bench measures our engine's throughput: symbolic
// steps/sec on the vector sum, scaling in straight-line program
// length, thread count, and (for the scan kernel) concrete loop trip
// count; plus the cost of the two for-all-inputs proofs built on it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sym/exec.h"
#include "vcgen/prove.h"

namespace {

using namespace cac;

void BM_SymExecVectorAddThread(benchmark::State& state) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    const sym::ThreadSummary s = sym_execute_thread(prg, kc, 5, env);
    for (const auto& p : s.paths) steps += p.steps;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SymExecVectorAddThread);

void BM_SymExecStraightline(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const ptx::Program prg = programs::straightline_program(n);
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    const sym::ThreadSummary s = sym_execute_thread(prg, kc, 0, env);
    steps += s.paths.front().steps;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["instructions"] = n;
}
BENCHMARK(BM_SymExecStraightline)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SymExecScanLoopUnroll(benchmark::State& state) {
  const auto plen = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = ptx::load_ptx(programs::scan_signature_ptx())
                               .kernel("scan_signature");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 8};
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sym::TermArena arena;
    sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    env.bind(prg, "dlen", 64);
    env.bind(prg, "plen", plen);
    const sym::ThreadSummary s = sym_execute_thread(prg, kc, 0, env);
    for (const auto& p : s.paths) steps += p.steps;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["trip_count"] = plen;
}
BENCHMARK(BM_SymExecScanLoopUnroll)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

void BM_ProveForAllInputsVectorAdd(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {threads, 1, 1}, 32};
  for (auto _ : state) {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    vcgen::GuardedWriteSpec spec;
    spec.guard = [](sym::TermArena& a, std::uint32_t tid) {
      return a.lt(a.konst(tid, 32), a.var("size", 32), true);
    };
    spec.writes = [](sym::TermArena& a, std::uint32_t tid) {
      const std::string i = std::to_string(4 * tid);
      return std::vector<sym::SymWrite>{
          {"arr_C", 4ull * tid, 4,
           a.add(a.var("arr_A[" + i + "]", 32),
                 a.var("arr_B[" + i + "]", 32))}};
    };
    const vcgen::ProofResult r = prove_guarded_writes(prg, kc, env, spec);
    if (!r.proved) throw KernelError("proof failed: " + r.detail);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ProveForAllInputsVectorAdd)->Arg(8)->Arg(32)->Arg(128);

void BM_ProveTranslationEquivalence(benchmark::State& state) {
  const ptx::Program mech =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  const ptx::Program hand = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  for (auto _ : state) {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, mech);
    const vcgen::ProofResult r = vcgen::prove_equivalent(mech, hand, kc, env);
    if (!r.proved) throw KernelError("equivalence failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProveTranslationEquivalence);

void BM_ProveReductionBlockSymbolic(benchmark::State& state) {
  // The block-level engine (barriers + Shared) proving the reduction's
  // addition tree for arbitrary inputs, scaling the block size.
  const auto tpb = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {tpb, 1, 1}, 8};
  for (auto _ : state) {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    const vcgen::ProofResult r = vcgen::prove_block_writes(
        prg, kc, env, [&](sym::TermArena& a) {
          std::vector<sym::TermRef> v;
          for (unsigned i = 0; i < tpb; ++i) {
            v.push_back(a.var("arr_A[" + std::to_string(4 * i) + "]", 32));
          }
          for (unsigned offset = tpb / 2; offset; offset >>= 1) {
            for (unsigned i = 0; i < offset; ++i) {
              v[i] = a.add(v[i + offset], v[i]);
            }
          }
          return std::vector<sym::SymWrite>{{"out", 0, 4, v[0]}};
        });
    if (!r.proved) throw KernelError("block proof failed: " + r.detail);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = tpb;
  state.counters["warps"] = (tpb + 7) / 8;
}
BENCHMARK(BM_ProveReductionBlockSymbolic)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_TermArenaConstruction(benchmark::State& state) {
  for (auto _ : state) {
    sym::TermArena arena;
    sym::TermRef t = arena.var("x", 32);
    for (int i = 0; i < 200; ++i) {
      t = arena.add(arena.mul(t, arena.konst(3, 32)), arena.konst(i, 32));
    }
    benchmark::DoNotOptimize(t);
    state.counters["terms"] = static_cast<double>(arena.size());
  }
}
BENCHMARK(BM_TermArenaConstruction);

struct Banner {
  Banner() {
    std::printf(
        "L4 — Listing 4 unroll_apply: symbolic-interpreter throughput\n"
        "(steps/sec as items), loop unrolling, and the for-all-inputs\n"
        "proofs built on the engine.\n\n");
  }
} banner;

}  // namespace
