// Experiment TH — the scheduler-transparency theorem (paper §I, §IV).
//
// "Correctness under a deterministic scheduler implies correctness
// under a nondeterministic scheduler."  For finite configurations the
// checker decides the theorem by exhaustive exploration; this bench
// measures the decision cost as warps/blocks scale (the size of the
// schedule space is the honest price of the universal quantifier) and
// includes the negative control: the barrier-less reduction, for which
// transparency FAILS.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "check/transparency.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t n) {
  const VecAddLayout L;
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", n);
  for (std::uint32_t i = 0; i < n; ++i) {
    launch.global_u32(L.a + 4 * i, 7 * i);
    launch.global_u32(L.b + 4 * i, i + 3);
  }
  return launch.machine();
}

void BM_TransparencyVectorAddWarps(benchmark::State& state) {
  const auto warps = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4 * warps, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 4 * warps);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const check::TransparencyResult r =
        check::check_scheduler_transparency(prg, kc, init);
    if (!r.holds) throw KernelError("transparency failed: " + r.detail);
    states = r.schedules_states;
  }
  state.counters["warps"] = warps;
  state.counters["schedule_states"] = static_cast<double>(states);
}
BENCHMARK(BM_TransparencyVectorAddWarps)->Arg(1)->Arg(2)->Arg(3);

void BM_TransparencyVectorAddBlocks(benchmark::State& state) {
  const auto blocks = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{blocks, 1, 1}, {4, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 4 * blocks);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const check::TransparencyResult r =
        check::check_scheduler_transparency(prg, kc, init);
    if (!r.holds) throw KernelError("transparency failed");
    states = r.schedules_states;
  }
  state.counters["blocks"] = blocks;
  state.counters["schedule_states"] = static_cast<double>(states);
}
BENCHMARK(BM_TransparencyVectorAddBlocks)->Arg(1)->Arg(2)->Arg(3);

void BM_TransparencyBarrierReduction(benchmark::State& state) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i);
  const sem::Machine init = launch.machine();
  for (auto _ : state) {
    const check::TransparencyResult r =
        check::check_scheduler_transparency(prg, kc, init);
    if (!r.holds) throw KernelError("transparency failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TransparencyBarrierReduction);

void BM_TransparencyNegativeControl(benchmark::State& state) {
  // Barrier-less reduction: transparency must FAIL, and the checker
  // must find the schedule dependence.
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i);
  const sem::Machine init = launch.machine();
  for (auto _ : state) {
    const check::TransparencyResult r =
        check::check_scheduler_transparency(prg, kc, init);
    if (r.holds) throw KernelError("negative control unexpectedly held");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TransparencyNegativeControl);

struct Banner {
  Banner() {
    std::printf(
        "TH — scheduler transparency: deciding \"deterministic result\n"
        "== unique result of every schedule\" by exhaustive\n"
        "exploration; schedule_states counts the explored graph.  The\n"
        "negative control (reduction without barriers) must fail.\n\n");
  }
} banner;

}  // namespace
