// Experiment T1 — paper Table I: the formal PTX model inventory.
//
// The paper reports its model as 350 SLOC of Coq for the PTX model,
// 300 SLOC of theorems and 140 SLOC of Ltac.  This binary prints the
// corresponding component inventory of the C++ reproduction (the
// definitions of Table I and where each lives), and benchmarks the
// constant-time model primitives (sreg_aux decoding, register file and
// predicate state access, memory cell access) to show the model layer
// adds no interpretive overhead.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mem/memory.h"
#include "sem/launch.h"
#include "sem/state.h"

namespace {

using namespace cac;

void print_inventory() {
  std::printf(
      "Table I — formal PTX model definitions (paper -> this repo)\n"
      "  w    : N (data widths)            -> support/bits.h (8/16/32/64)\n"
      "  dty  : {UI,SI,BD} x N             -> ptx/dtype.h   DType\n"
      "  id   : {Id} x N                   -> ptx/operand.h Reg::index\n"
      "  ss   : {Global,Const,Shared}      -> ptx/dtype.h   Space (+Param)\n"
      "  addr : ss x N                     -> mem/memory.h  (space, addr)\n"
      "  mu   : (ss x addr)->(byte x B)    -> mem/memory.h  Memory/Cell\n"
      "  reg  : {UI,SI} x N x N            -> ptx/operand.h Reg\n"
      "  rho  : reg -> Z                   -> sem/thread.h  RegFile\n"
      "  phi  : N -> B                     -> sem/thread.h  PredState\n"
      "  dim  : {Dx,Dy,Dz}                 -> ptx/operand.h Dim\n"
      "  sreg : {T,B,NT,NB} x dim          -> ptx/operand.h Sreg\n"
      "  sreg_aux : tid -> sreg -> N       -> sem/config.h  sreg_aux\n"
      "  op   : reg+sreg+Z+reg x Z         -> ptx/operand.h Operand\n"
      "  theta: N x rho x phi              -> sem/thread.h  Thread\n"
      "  omega: Uni | Div (tree)           -> sem/warp.h    Warp\n"
      "  beta : set of warps               -> sem/state.h   Block\n"
      "  gamma: set of blocks              -> sem/state.h   Grid\n"
      "Paper artifact sizes: 350 SLOC model + 300 theorems + 140 Ltac\n"
      "(Coq).  The executable C++ counterpart is necessarily larger;\n"
      "see EXPERIMENTS.md T1 for the per-module line counts.\n\n");
}

void BM_SregAuxDecode(benchmark::State& state) {
  const sem::KernelConfig kc{{4, 2, 2}, {8, 4, 2}, 32};
  std::uint32_t tid = 0;
  for (auto _ : state) {
    const std::uint32_t v = sem::sreg_aux(
        kc, tid, {ptx::SregKind::Tid, ptx::Dim::Y});
    benchmark::DoNotOptimize(v);
    tid = (tid + 1) % kc.total_threads();
  }
}
BENCHMARK(BM_SregAuxDecode);

void BM_RegFileAccess(benchmark::State& state) {
  sem::RegFile rf;
  const ptx::Reg r{ptx::TypeClass::UI, 32, 5};
  std::uint64_t v = 0;
  for (auto _ : state) {
    rf.write(r, v++);
    benchmark::DoNotOptimize(rf.read(r));
  }
}
BENCHMARK(BM_RegFileAccess);

void BM_PredStateAccess(benchmark::State& state) {
  sem::PredState ps;
  bool b = false;
  for (auto _ : state) {
    ps.write({1}, b = !b);
    benchmark::DoNotOptimize(ps.read({1}));
  }
}
BENCHMARK(BM_PredStateAccess);

void BM_MemoryCellRoundTrip(benchmark::State& state) {
  mem::Memory mu(mem::MemSizes{4096, 0, 0, 0, 1});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    mu.store(mem::Space::Global, addr, 4, addr, false);
    benchmark::DoNotOptimize(mu.load(mem::Space::Global, addr, 4));
    addr = (addr + 4) % 4092;
  }
}
BENCHMARK(BM_MemoryCellRoundTrip);

void BM_GenerateGrid(benchmark::State& state) {
  const sem::KernelConfig kc{
      {static_cast<std::uint32_t>(state.range(0)), 1, 1}, {64, 1, 1}, 32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sem::generate_grid(kc));
  }
  state.counters["threads"] =
      static_cast<double>(kc.total_threads());
}
BENCHMARK(BM_GenerateGrid)->Arg(1)->Arg(8)->Arg(64);

struct Printer {
  Printer() { print_inventory(); }
} printer;

}  // namespace
