// Checkpoint/resume cost model: what a periodic checkpoint costs an
// exploration (overhead vs checkpoint-free), how fast a checkpoint
// file round-trips (save/load with full-payload checksumming), and
// what resuming from a half-way checkpoint saves over re-exploring
// from scratch.  The workload is the paper's vector sum, same as
// bench_parallel_explore, so the numbers compose.
//
// tools/bench_to_json.py runs this binary (alongside
// bench_parallel_explore) and snapshots the results into
// BENCH_explore.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/checkpoint.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t size) {
  const VecAddLayout L;
  sem::LaunchSpec spec;
  spec.grid = kc.grid;
  spec.block = kc.block;
  spec.warp_size = kc.warp_size;
  spec.global_bytes = L.global_bytes;
  spec.shared_bytes = 0;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", size}};
  for (std::uint32_t i = 0; i < size && 4 * i < 0x100; ++i) {
    spec.inits.emplace_back(L.a + 4 * i, i);
    spec.inits.emplace_back(L.b + 4 * i, i);
  }
  return spec.to_launch(prg).machine();
}

struct Workload {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;
  explicit Workload(std::uint32_t warps)
      : prg(programs::vector_add_listing2()),
        kc{{1, 1, 1}, {4 * warps, 1, 1}, 4},
        init(vecadd_machine(prg, kc, 4 * warps)) {}
};

std::string bench_ckpt_path(const char* tag) {
  return std::string("/tmp/cac_bench_") + tag + ".ckpt";
}

/// Periodic checkpointing overhead: full serial exploration with a
/// checkpoint every N states (N = 0 disables).  The states_per_sec
/// counter across instances is the cost model an operator reads to
/// pick a checkpoint cadence.
void BM_CheckpointOverhead(benchmark::State& state) {
  const auto every = static_cast<std::uint64_t>(state.range(0));
  const Workload w(2);

  sched::ExploreOptions opts;
  opts.checkpoint_every_states = every;
  if (every != 0) opts.checkpoint_path = bench_ckpt_path("overhead");

  std::uint64_t states = 0, total = 0;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(w.prg, w.kc, w.init, opts);
    if (!r.exhaustive) throw KernelError("overhead run not exhaustive");
    states = r.states_visited;
    total += r.states_visited;
  }
  if (every != 0) std::remove(opts.checkpoint_path.c_str());
  state.counters["checkpoint_every"] = static_cast<double>(every);
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckpointOverhead)
    ->ArgNames({"every"})
    ->Arg(0)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Checkpoint file round-trip: load (header validation + checksum +
/// payload decode into a fresh StateStore) and save (encode + checksum
/// + atomic write-then-rename), on a checkpoint taken half-way through
/// the exploration.
void BM_CheckpointSaveLoad(benchmark::State& state) {
  const Workload w(2);
  const std::string path = bench_ckpt_path("saveload");
  const std::string path2 = bench_ckpt_path("saveload2");

  sched::ExploreOptions full;
  const std::uint64_t total_states =
      sched::explore(w.prg, w.kc, w.init, full).states_visited;

  sched::ExploreOptions cut;
  cut.stop_after_states = total_states / 2;
  cut.checkpoint_path = path;
  const sched::ExploreResult r = sched::explore(w.prg, w.kc, w.init, cut);
  if (!r.checkpointed) throw KernelError("cut run did not checkpoint");

  std::uint64_t file_bytes = 0;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f) {
      std::fseek(f, 0, SEEK_END);
      file_bytes = static_cast<std::uint64_t>(std::ftell(f));
      std::fclose(f);
    }
  }

  std::uint64_t round_trips = 0;
  for (auto _ : state) {
    const sched::Checkpoint ck = sched::Checkpoint::load(path);
    ck.save(path2);
    benchmark::DoNotOptimize(ck.states_visited);
    ++round_trips;
  }
  std::remove(path.c_str());
  std::remove(path2.c_str());
  state.counters["file_bytes"] = static_cast<double>(file_bytes);
  state.counters["checkpoint_states"] =
      static_cast<double>(cut.stop_after_states);
  state.counters["round_trips_per_sec"] = benchmark::Counter(
      static_cast<double>(round_trips), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckpointSaveLoad)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Resume economics: completing the exploration from a half-way
/// checkpoint vs re-exploring from scratch.  resume_fraction < 1 is
/// the crash-recovery win; the verdict is byte-identical either way.
void BM_ResumeFromCheckpoint(benchmark::State& state) {
  const Workload w(2);
  const std::string path = bench_ckpt_path("resume");

  sched::ExploreOptions full;
  const sched::ExploreResult whole = sched::explore(w.prg, w.kc, w.init, full);

  sched::ExploreOptions cut;
  cut.stop_after_states = whole.states_visited / 2;
  cut.checkpoint_path = path;
  const sched::ExploreResult half = sched::explore(w.prg, w.kc, w.init, cut);
  if (!half.checkpointed) throw KernelError("cut run did not checkpoint");

  std::uint64_t resumed = 0;
  for (auto _ : state) {
    // Load inside the loop: a resuming run adopts the checkpoint's
    // state store, so crash recovery is always load + resume.
    const sched::Checkpoint ck = sched::Checkpoint::load(path);
    const sched::ExploreResult r =
        sched::explore(w.prg, w.kc, w.init, full, &ck);
    if (r.states_visited != whole.states_visited) {
      throw KernelError("resumed verdict diverged");
    }
    ++resumed;
  }
  std::remove(path.c_str());
  state.counters["states"] = static_cast<double>(whole.states_visited);
  state.counters["resumed_runs_per_sec"] = benchmark::Counter(
      static_cast<double>(resumed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ResumeFromCheckpoint)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

struct Banner {
  Banner() {
    std::printf(
        "Checkpoint/resume cost model — periodic checkpoint overhead,\n"
        "file round-trip (checksummed save/load), and resuming from a\n"
        "half-way checkpoint vs re-exploring.  Verdicts after resume\n"
        "are byte-identical to uninterrupted runs by construction.\n\n");
  }
} banner;

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// minimal measuring time before the standard benchmark flags parse.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
