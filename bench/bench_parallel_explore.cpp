// Parallel schedule exploration: serial DFS vs the work-stealing
// frontier engine at 2/4/8 workers, with and without partial-order
// reduction, on full exploration of the paper's vector sum.  Reports
// states/sec (the per-state work — Machine clone + semantics step +
// hash — is what the engine parallelizes) and exercises the packed
// Memory representation's clone+hash fast path.
//
// tools/bench_to_json.py runs this binary and snapshots the results
// into BENCH_explore.json so successive PRs accumulate a perf
// trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore_parallel.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t size) {
  const VecAddLayout L;
  sem::LaunchSpec spec;
  spec.grid = kc.grid;
  spec.block = kc.block;
  spec.warp_size = kc.warp_size;
  spec.global_bytes = L.global_bytes;
  spec.shared_bytes = 0;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", size}};
  for (std::uint32_t i = 0; i < size && 4 * i < 0x100; ++i) {
    spec.inits.emplace_back(L.a + 4 * i, i);
    spec.inits.emplace_back(L.b + 4 * i, i);
  }
  return spec.to_launch(prg).machine();
}

/// Args: (num_threads [0 = serial DFS], por, warps).  The warps=3
/// non-POR instance is the acceptance workload: the schedule lattice
/// of three 4-thread warps through the 20-instruction vector sum.
void BM_ExploreVectorSum(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const bool por = state.range(1) != 0;
  const auto warps = static_cast<std::uint32_t>(state.range(2));

  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4 * warps, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 4 * warps);

  sched::ExploreOptions opts;
  opts.num_threads = threads;
  opts.partial_order_reduction = por;

  std::uint64_t states = 0, total = 0;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(prg, kc, init, opts);
    if (!r.exhaustive || !r.schedule_independent()) {
      throw KernelError("vector-sum exploration verdict changed");
    }
    states = r.states_visited;
    total += r.states_visited;
  }
  state.counters["threads"] = threads;
  state.counters["por"] = por ? 1 : 0;
  state.counters["warps"] = warps;
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreVectorSum)
    ->ArgNames({"threads", "por", "warps"})
    // Full exploration, warps=3 (the acceptance workload).
    ->Args({0, 0, 3})
    ->Args({2, 0, 3})
    ->Args({4, 0, 3})
    ->Args({8, 0, 3})
    // POR composes with the parallel engine.
    ->Args({0, 1, 3})
    ->Args({2, 1, 3})
    ->Args({4, 1, 3})
    ->Args({8, 1, 3})
    // Smaller instance for quick trend lines.
    ->Args({0, 0, 2})
    ->Args({8, 0, 2})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The per-transition hot path in isolation: clone a launch-sized
/// Memory, dirty one word (invalidating the memoized hash) and rehash.
/// The packed byte-array + valid-bitmap layout halves the clone
/// bandwidth and hashes whole words instead of per-cell pairs.
void BM_MemoryCloneHash(benchmark::State& state) {
  const VecAddLayout L;
  mem::Memory proto(mem::MemSizes{L.global_bytes, 0, 0, 64, 1});
  for (std::uint32_t i = 0; i < 0x100; i += 4) {
    proto.init_u32(mem::Space::Global, L.a + i, i);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    mem::Memory c = proto;
    c.store(mem::Space::Global, addr, 4, addr, false);
    benchmark::DoNotOptimize(c.hash());
    addr = (addr + 4) % L.global_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(L.global_bytes + 64));
}
BENCHMARK(BM_MemoryCloneHash);

/// Full machine clone + memoized hash — exactly what the explorers do
/// per transition (the semantics step is benched in bench_fig1).
void BM_MachineCloneHash(benchmark::State& state) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {12, 1, 1}, 4};
  const sem::Machine proto = vecadd_machine(prg, kc, 12);
  for (auto _ : state) {
    sem::Machine m = proto;
    m.invalidate_hash();
    benchmark::DoNotOptimize(m.hash());
  }
}
BENCHMARK(BM_MachineCloneHash);

/// Revisit probe with a warm cache: the visited-set lookup pattern —
/// hash() on an unchanged machine must be O(1).
void BM_MachineHashMemoized(benchmark::State& state) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {12, 1, 1}, 4};
  const sem::Machine proto = vecadd_machine(prg, kc, 12);
  benchmark::DoNotOptimize(proto.hash());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.hash());
  }
}
BENCHMARK(BM_MachineHashMemoized);

/// State-store footprint: resident bytes per visited state with the
/// interning store vs full per-state machine copies (the pre-StateStore
/// representation), on the two acceptance workloads.  Args:
/// (num_threads, workload [0 = vecadd 3 warps, 1 = reduce_shared]).
/// The counters feed BENCH_explore.json via tools/bench_to_json.py.
void BM_StateStoreFootprint(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const bool reduce = state.range(1) != 0;

  ptx::Program prg = programs::vector_add_listing2();
  sem::KernelConfig kc{{1, 1, 1}, {12, 1, 1}, 4};
  sem::Machine init;
  if (reduce) {
    prg = ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
    kc = sem::KernelConfig{{1, 1, 1}, {4, 1, 1}, 2};  // two 2-thread warps
    sem::LaunchSpec spec;
    spec.grid = kc.grid;
    spec.block = kc.block;
    spec.warp_size = kc.warp_size;
    spec.global_bytes = 256;
    spec.shared_bytes = 256;
    spec.params = {{"arr_A", 0}, {"out", 128}};
    for (std::uint32_t i = 0; i < 4; ++i) {
      spec.inits.emplace_back(4 * i, i * i + 1);
    }
    init = spec.to_launch(prg).machine();
  } else {
    init = vecadd_machine(prg, kc, 12);
  }

  sched::ExploreOptions opts;
  opts.num_threads = threads;

  sched::StateStore::Stats stats;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(prg, kc, init, opts);
    if (!r.exhaustive || !r.store) {
      throw KernelError("footprint exploration verdict changed");
    }
    stats = r.store->stats();
  }
  const auto per_state = [&](std::uint64_t bytes) {
    return stats.states == 0
               ? 0.0
               : static_cast<double>(bytes) /
                     static_cast<double>(stats.states);
  };
  state.counters["threads"] = threads;
  state.counters["states"] = static_cast<double>(stats.states);
  state.counters["warp_fragments"] =
      static_cast<double>(stats.warp_fragments);
  state.counters["bank_fragments"] =
      static_cast<double>(stats.bank_fragments);
  state.counters["resident_bytes_per_state"] =
      per_state(stats.resident_bytes);
  state.counters["machine_bytes_per_state"] =
      per_state(stats.materialized_bytes);
  state.counters["dedup_ratio"] = stats.dedup_ratio();
}
BENCHMARK(BM_StateStoreFootprint)
    ->ArgNames({"threads", "reduce"})
    ->Args({0, 0})
    ->Args({4, 0})
    ->Args({0, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

struct Banner {
  Banner() {
    std::printf(
        "Parallel exploration — serial DFS vs work-stealing frontier\n"
        "engine on the vector sum (warps=3: the acceptance workload).\n"
        "Verdicts are byte-identical across engines by construction;\n"
        "wall-clock scaling requires actual hardware threads.\n\n");
  }
} banner;

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// minimal measuring time before the standard benchmark flags parse.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
