// The static analyzer as an explorer accelerator.
//
// Plain POR branches the schedule at every memory instruction; the
// affine analysis (analysis/disjoint.h) proves the per-thread-slot
// Ld/St sites of data-parallel kernels independent under the concrete
// launch, so the explorer commits them without branching
// (ExploreOptions::por_independent_pcs).  This bench measures the
// explored-state and wall-clock reduction of POR+oracle over plain POR
// on two corpus kernels — verdicts are re-asserted every run, and
// tests/analysis/oracle_test.cc pins serial/parallel/dist equality.
// Results land in BENCH_explore.json's `analysis` section
// (tools/bench_to_json.py).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "analysis/disjoint.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

struct Scenario {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;
  analysis::LaunchEnv env;
};

analysis::LaunchEnv known_env(const ptx::Program& prg,
                              const sem::KernelConfig& kc,
                              const sem::LaunchSpec& spec) {
  analysis::LaunchEnv env;
  env.known = true;
  env.ntid[0] = kc.block.x;
  env.ntid[1] = kc.block.y;
  env.ntid[2] = kc.block.z;
  env.nctaid[0] = kc.grid.x;
  env.nctaid[1] = kc.grid.y;
  env.nctaid[2] = kc.grid.z;
  for (const auto& [name, value] : spec.params) {
    for (const ptx::ParamSlot& slot : prg.params()) {
      if (slot.name != name) continue;
      const std::uint64_t mask =
          slot.type.width >= 64 ? ~0ull : (1ull << slot.type.width) - 1;
      env.params[slot.offset] = value & mask;
    }
  }
  return env;
}

Scenario vecadd_scenario(std::uint32_t warps) {
  const VecAddLayout L;
  ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4 * warps, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 4 * warps);
  for (std::uint32_t i = 0; i < 4 * warps; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, 2 * i);
  }
  sem::LaunchSpec spec;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", 4 * warps}};
  analysis::LaunchEnv env = known_env(prg, kc, spec);
  return {std::move(prg), kc, launch.machine(), std::move(env)};
}

Scenario saxpy_scenario(std::uint32_t warps) {
  ptx::Program prg = ptx::load_ptx(programs::saxpy_ptx()).kernel("saxpy");
  const sem::KernelConfig kc{{1, 1, 1}, {4 * warps, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{0x400, 0, 0, 0, 1});
  launch.param("arr_X", 0x100).param("arr_Y", 0x200).param("a", 3)
      .param("size", 4 * warps);
  for (std::uint32_t i = 0; i < 4 * warps; ++i) {
    launch.global_u32(0x100 + 4 * i, i);
    launch.global_u32(0x200 + 4 * i, i);
  }
  sem::LaunchSpec spec;
  spec.params = {{"arr_X", 0x100}, {"arr_Y", 0x200}, {"a", 3},
                 {"size", 4 * warps}};
  analysis::LaunchEnv env = known_env(prg, kc, spec);
  return {std::move(prg), kc, launch.machine(), std::move(env)};
}

void run_oracle_bench(benchmark::State& state, const Scenario& s,
                      bool oracle) {
  sched::ExploreOptions opts;
  opts.partial_order_reduction = true;
  std::vector<std::uint32_t> pcs;
  if (oracle) {
    pcs = analysis::independent_access_pcs(s.prg, s.env);
    opts.por_independent_pcs = pcs;
  }
  std::uint64_t states = 0;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(s.prg, s.kc, s.init, opts);
    if (!r.schedule_independent()) {
      throw KernelError("exploration verdict changed");
    }
    states = r.states_visited;
  }
  state.counters["oracle"] = oracle ? 1 : 0;
  state.counters["independent_pcs"] = static_cast<double>(pcs.size());
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_AnalysisOracleVecAdd(benchmark::State& state) {
  const Scenario s = vecadd_scenario(2);
  run_oracle_bench(state, s, state.range(0) != 0);
}
BENCHMARK(BM_AnalysisOracleVecAdd)->Arg(0)->Arg(1);

void BM_AnalysisOracleSaxpy(benchmark::State& state) {
  const Scenario s = saxpy_scenario(2);
  run_oracle_bench(state, s, state.range(0) != 0);
}
BENCHMARK(BM_AnalysisOracleSaxpy)->Arg(0)->Arg(1);

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// tiny --benchmark_min_time.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
