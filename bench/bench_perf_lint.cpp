// Throughput of the static performance passes (analysis/perf.h).
//
// The perf lint runs the affine interpreter once per kernel and prices
// every Global/Shared access site plus every divergent branch against
// the cost model — all static, no exploration.  This bench tracks that
// cost on the embedded corpus (clean kernels: the common case in a
// lint sweep) and on an offender kernel that produces findings of all
// three kinds, so a pricing regression and an interpreter regression
// are distinguishable.  Results land in BENCH_explore.json's
// `perf_lint` section (tools/bench_to_json.py).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/perf.h"
#include "programs/corpus.h"
#include "ptx/lower.h"

namespace {

using namespace cac;

// One kernel with all three anti-patterns: a stride-16 global load,
// a column-major shared store (32-way conflict), and a `tid % 2`
// divergent region containing a global load.
const char* offender_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

.shared .align 4 .b8 tile[4096];

.visible .entry offender(
  .param .u64 arr_A,
  .param .u64 arr_C
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<10>;
  .reg .u64 %rd<8>;

  ld.param.u64 %rd1, [arr_A];
  ld.param.u64 %rd2, [arr_C];
  mov.u32 %r1, %tid.x;

  // Strided global load: 16 bytes per lane.
  mul.wide.u32 %rd3, %r1, 16;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.u32 %r2, [%rd4];

  // Column-major shared store: lane stride of 128 bytes.
  mul.lo.u32 %r3, %r1, 128;
  mov.u32 %r4, tile;
  add.u32 %r5, %r4, %r3;
  st.shared.u32 [%r5], %r2;

  // Oscillating guard: odd lanes take the branch.
  rem.u32 %r6, %r1, 2;
  setp.ne.u32 %p1, %r6, 0;
  @%p1 bra DONE;

  mul.wide.u32 %rd5, %r1, 4;
  add.u64 %rd6, %rd2, %rd5;
  ld.global.u32 %r7, [%rd6];
  add.s32 %r8, %r7, %r2;
  st.global.u32 [%rd6], %r8;

DONE:
  ret;
}
)";
}

struct Kernel {
  ptx::Program prg;
  std::vector<SourceLoc> locs;
};

Kernel load(const std::string& text, const std::string& name) {
  ptx::LoweredModule mod = ptx::load_ptx(text);
  ptx::Program prg = mod.kernel(name);
  std::vector<SourceLoc> locs = mod.locs_for(prg);
  return {std::move(prg), std::move(locs)};
}

void run_perf_bench(benchmark::State& state, const std::vector<Kernel>& ks,
                    std::size_t expected_findings) {
  std::uint64_t findings = 0;
  for (auto _ : state) {
    findings = 0;
    for (const Kernel& k : ks) {
      const analysis::PerfReport r = analysis::analyze_perf(k.prg, k.locs);
      findings += r.findings.size();
      benchmark::DoNotOptimize(r.findings.data());
    }
    if (findings != expected_findings) {
      throw KernelError("perf finding count changed");
    }
  }
  state.counters["kernels"] = static_cast<double>(ks.size());
  state.counters["findings"] = static_cast<double>(findings);
  state.counters["kernels_per_sec"] = benchmark::Counter(
      static_cast<double>(ks.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// The lint-sweep common case: well-formed kernels, zero findings.
void BM_PerfLintCleanCorpus(benchmark::State& state) {
  std::vector<Kernel> ks;
  ks.push_back(load(programs::vector_add_ptx(), "add_vector"));
  ks.push_back(load(programs::saxpy_ptx(), "saxpy"));
  ks.push_back(load(programs::copy_v2_ptx(), "copy_v2"));
  run_perf_bench(state, ks, 0);
}
BENCHMARK(BM_PerfLintCleanCorpus);

/// All three finding kinds priced in one kernel.
void BM_PerfLintOffender(benchmark::State& state) {
  std::vector<Kernel> ks;
  ks.push_back(load(offender_ptx(), "offender"));
  run_perf_bench(state, ks, 3);
}
BENCHMARK(BM_PerfLintOffender);

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// tiny --benchmark_min_time.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
