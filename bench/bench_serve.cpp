// The verification service itself as the benchmark subject: what a
// client pays for a cold verification round trip, what the
// content-addressed verdict cache collapses that to on resubmission,
// and how many requests/sec the daemon sustains as concurrent clients
// pile on (1/4/16).
//
// Everything runs in-process but over a real AF_UNIX socket with the
// real frame protocol, so the measured path is exactly what
// `cacval submit` pays minus process startup.
//
// tools/bench_to_json.py snapshots these into BENCH_explore.json
// (section `serve`), so the cold/cached ratio and the throughput
// scaling accumulate a trajectory across PRs.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "front/cache.h"
#include "front/serve.h"
#include "support/fault.h"

namespace {

using namespace cac;

// A tiny two-thread kernel: one round trip's verification work is a
// 16-state exploration (~tens of microseconds), so the numbers below
// measure the service, not the workload.
const char* kTinyKernel = R"(
.version 6.0
.target sm_30
.address_size 64
.visible .entry k(
  .param .u64 out
)
{
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [out];
  mov.u32 %r1, %tid.x;
  st.global.u32 [%rd1], %r1;
  ret;
}
)";

front::CheckRequest tiny_request(std::uint32_t salt) {
  front::CheckRequest r;
  r.file = "bench.ptx";
  r.source = kTinyKernel;
  r.launch.block = {2, 1, 1};
  r.launch.warp_size = 1;
  r.launch.global_bytes = 64;
  r.launch.params = {{"out", 0}};
  // The salt lands in an initial cell: structurally distinct request
  // (fresh cache key), identical amount of exploration work.
  r.launch.inits = {{32, salt}};
  return r;
}

/// One in-process daemon on a fresh AF_UNIX socket.
struct BenchServer {
  BenchServer() {
    dir = std::filesystem::temp_directory_path() /
          ("cac_bench_serve_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    std::filesystem::create_directories(dir);
    front::ServeOptions opts;
    opts.unix_path = dir / "sock";
    opts.workers = 4;
    server = std::make_unique<front::Server>(std::move(opts));
    server->start();
  }

  ~BenchServer() {
    server->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  front::Client connect() { return front::Client::connect(dir / "sock"); }

  std::filesystem::path dir;
  std::unique_ptr<front::Server> server;
  static inline int counter = 0;
};

/// Cold submissions: every request has a fresh cache key, so each
/// round trip pays parse + lower + key + explore + respond.
void BM_ServeColdSubmission(benchmark::State& state) {
  BenchServer bs;
  front::Client client = bs.connect();
  std::uint32_t salt = 1;
  for (auto _ : state) {
    const front::Client::Reply r =
        client.call(front::to_json(front::Request{tiny_request(salt++)}));
    if (r.doc.str_or("status", "") != "ok" ||
        r.doc.bool_or("cached", false)) {
      throw std::runtime_error("cold submission misbehaved: " + r.raw);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["jobs_run"] =
      static_cast<double>(bs.server->stats().jobs_run);
}
BENCHMARK(BM_ServeColdSubmission)->Unit(benchmark::kMicrosecond);

/// Cached resubmission of one verdict: the round trip collapses to
/// frame + key + LRU hit + verbatim replay.  The cold/cached ratio is
/// the service's headline number (CI asserts >=100x end to end in
/// tools/serve_crash_drill.py).
void BM_ServeCachedSubmission(benchmark::State& state) {
  BenchServer bs;
  front::Client client = bs.connect();
  const std::string payload =
      front::to_json(front::Request{tiny_request(0)});
  client.call(payload);  // warm the cache
  for (auto _ : state) {
    const front::Client::Reply r = client.call(payload);
    if (!r.doc.bool_or("cached", false)) {
      throw std::runtime_error("expected a cache hit: " + r.raw);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCachedSubmission)->Unit(benchmark::kMicrosecond);

/// Sustained request throughput at N concurrent clients, each its own
/// connection, all resubmitting warm verdicts round-robin across a
/// small working set.  items_per_second is the service's requests/sec.
void BM_ServeThroughput(benchmark::State& state) {
  const auto clients = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint32_t kWorkingSet = 8;
  constexpr std::uint32_t kPerClient = 16;  // requests per iteration
  BenchServer bs;
  std::vector<std::string> payloads;
  payloads.reserve(kWorkingSet);
  {
    front::Client warm = bs.connect();
    for (std::uint32_t i = 0; i < kWorkingSet; ++i) {
      payloads.push_back(
          front::to_json(front::Request{tiny_request(i)}));
      warm.call(payloads.back());
    }
  }
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        front::Client client = bs.connect();
        for (std::uint32_t i = 0; i < kPerClient; ++i) {
          client.call(payloads[(c + i) % kWorkingSet]);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients) * kPerClient);
  state.counters["clients"] = clients;
  // Health counters (docs/robustness.md): all zero on a healthy box;
  // a nonzero trajectory in BENCH_explore.json means the bench itself
  // started absorbing faults.
  const front::ServeStats ss = bs.server->stats();
  state.counters["shed_requests"] = static_cast<double>(ss.shed_requests);
  state.counters["reaped_clients"] = static_cast<double>(ss.reaped_clients);
}
BENCHMARK(BM_ServeThroughput)
    ->ArgName("clients")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// What a *disabled* fault seam costs per guarded call site: one
/// relaxed atomic load, nothing else.  This is the
/// zero-overhead-when-disabled guard — tools/bench_to_json.py
/// snapshots it (section `fault`), so any work creeping onto the fast
/// path shows up as this number leaving the ~1ns band.
void BM_FaultSeamDisabled(benchmark::State& state) {
  if (support::fault_active()) {
    throw std::runtime_error("fault seam unexpectedly armed");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::fault_check("write", "bench.ckpt"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultSeamDisabled);

/// The armed-but-missing slow path (a plan is installed, but no rule
/// matches this site): mutex + rule scan per call.  The gap between
/// this and BM_FaultSeamDisabled is the chaos harness's own observer
/// cost on every guarded syscall it does NOT perturb.
void BM_FaultSeamArmedMiss(benchmark::State& state) {
  support::ScopedFaultPlan plan("op=connect,path=never-*,nth=1,err=EIO");
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::fault_check("write", "bench.ckpt"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultSeamArmedMiss);

}  // namespace

/// Custom main so CI can smoke the bench cheaply: `--quick` maps to a
/// minimal measuring time before the standard benchmark flags parse.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char quick_flag[] = "--benchmark_min_time=0.01";
  for (auto& a : args) {
    if (std::strcmp(a, "--quick") == 0) a = quick_flag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
