// Ablation — persistent-set partial-order reduction in the schedule
// explorer.
//
// The universal quantifier over schedules is the expensive part of
// every finite-configuration proof (see bench_l3/bench_th).  A
// register-local warp step commutes with every other warp's steps, so
// exploring it alone is a sound persistent set; interleavings then
// branch only at memory/barrier instructions.  This bench measures
// the state-count and wall-clock reduction on the paper's vector sum
// (verdicts are cross-checked for equality in tests/sched/por_test.cc
// and re-asserted here).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "programs/corpus.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace {

using namespace cac;
using programs::VecAddLayout;

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t n) {
  const VecAddLayout L;
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", n);
  for (std::uint32_t i = 0; i < n; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, 2 * i);
  }
  return launch.machine();
}

void run_explore(benchmark::State& state, bool por) {
  const auto warps = static_cast<std::uint32_t>(state.range(0));
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4 * warps, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 4 * warps);
  sched::ExploreOptions opts;
  opts.partial_order_reduction = por;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const sched::ExploreResult r = sched::explore(prg, kc, init, opts);
    if (!r.schedule_independent()) {
      throw KernelError("exploration verdict changed");
    }
    states = r.states_visited;
  }
  state.counters["warps"] = warps;
  state.counters["states"] = static_cast<double>(states);
}

void BM_ExploreFull(benchmark::State& state) { run_explore(state, false); }
BENCHMARK(BM_ExploreFull)->Arg(1)->Arg(2)->Arg(3);

void BM_ExplorePOR(benchmark::State& state) { run_explore(state, true); }
BENCHMARK(BM_ExplorePOR)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

struct Banner {
  Banner() {
    std::printf(
        "Ablation — partial-order reduction.  Full exploration of the\n"
        "w-warp vector sum visits ~20^w states; POR branches only at\n"
        "the Ld/St instructions.  Same verdict, checked every run.\n"
        "(POR scales to 4-5 warps where full exploration cannot.)\n\n");
  }
} banner;

}  // namespace
