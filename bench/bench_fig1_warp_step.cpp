// Experiment F1 — paper Fig. 1: the eleven warp small-step rules.
//
// One benchmark per derivation rule, measuring a single application of
// the trusted kernel to a 32-thread warp (the paper's warp size).  The
// rule set is also exercised for coverage: a program touching all
// rules is stepped to completion and the rule histogram printed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "programs/corpus.h"
#include "sem/launch.h"
#include "sem/step.h"

namespace {

using namespace cac;
using namespace cac::ptx;

const Reg r1{TypeClass::UI, 32, 1}, r2{TypeClass::UI, 32, 2},
    r3{TypeClass::UI, 32, 3};
const Pred p1{1};

sem::KernelConfig kc32() { return {{1, 1, 1}, {32, 1, 1}, 32}; }

mem::Memory mem4k() { return mem::Memory(mem::MemSizes{4096, 0, 256, 0, 1}); }

sem::Warp warp32() {
  sem::Warp w = sem::make_warp(0, 32);
  for (sem::Thread& t : w.threads()) {
    t.rho.write(r1, t.tid);
    t.rho.write(r2, 4 * t.tid);
    t.phi.write(p1, t.tid % 2 == 0);
  }
  return w;
}

/// Measure one application of a rule: rebuild the warp each iteration
/// outside the timed region is too slow, so step a fresh pc-0 copy.
template <typename Prepare>
void run_rule(benchmark::State& state, const Program& prg, Prepare prep) {
  const sem::KernelConfig kc = kc32();
  auto mu = mem4k();
  const sem::Warp proto = prep();
  for (auto _ : state) {
    sem::Warp w = proto;
    const sem::StepResult r = sem::step_warp(prg, kc, 0, w, mu);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(w);
  }
}

void BM_Rule_Nop(benchmark::State& state) {
  const Program prg("t", {INop{}, IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Nop);

void BM_Rule_Bop(benchmark::State& state) {
  const Program prg(
      "t", {IBop{BinOp::Add, UI(32), r3, op_reg(r1), op_reg(r2)}, IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Bop);

void BM_Rule_Top(benchmark::State& state) {
  const Program prg("t", {ITop{TerOp::MadLo, SI(32), r3, op_reg(r1),
                               op_reg(r2), op_imm(7)},
                          IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Top);

void BM_Rule_Mov(benchmark::State& state) {
  const Program prg("t", {IMov{r3, op_sreg(SregKind::Tid, Dim::X)}, IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Mov);

void BM_Rule_Ld(benchmark::State& state) {
  const Program prg("t", {ILd{Space::Global, UI(32), r3, op_reg(r2)},
                          IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Ld);

void BM_Rule_St(benchmark::State& state) {
  const Program prg("t", {ISt{Space::Global, UI(32), op_reg(r2), r1},
                          IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_St);

void BM_Rule_Bra(benchmark::State& state) {
  const Program prg("t", {IBra{1}, IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Bra);

void BM_Rule_Setp(benchmark::State& state) {
  const Program prg(
      "t", {ISetp{CmpOp::Lt, UI(32), p1, op_reg(r1), op_imm(16)}, IExit{}});
  run_rule(state, prg, warp32);
}
BENCHMARK(BM_Rule_Setp);

void BM_Rule_PBra_Divergent(benchmark::State& state) {
  const Program prg("t", {IPBra{p1, false, 2}, INop{}, IExit{}});
  run_rule(state, prg, warp32);  // half the lanes take the branch
}
BENCHMARK(BM_Rule_PBra_Divergent);

void BM_Rule_Div(benchmark::State& state) {
  // The (div) rule: execute the left-most side of a divergent warp.
  const Program prg(
      "t", {IBop{BinOp::Add, UI(32), r3, op_reg(r1), op_imm(1)}, IExit{}});
  run_rule(state, prg, [] {
    sem::Warp half1 = sem::make_warp(0, 16);
    sem::Warp half2 = sem::make_warp(16, 16);
    half2.set_uni_pc(1);
    return sem::Warp(std::move(half1), std::move(half2));
  });
}
BENCHMARK(BM_Rule_Div);

void BM_Rule_Sync(benchmark::State& state) {
  const Program prg("t", {ISync{}, IExit{}});
  run_rule(state, prg, [] {
    return sem::Warp(sem::make_warp(0, 16), sem::make_warp(16, 16));
  });
}
BENCHMARK(BM_Rule_Sync);

/// Warp-step throughput on the paper's vector-add at full warp width.
void BM_VectorAddWarpSteps(benchmark::State& state) {
  const Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;
  const sem::KernelConfig kc = kc32();
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  const sem::Machine proto = launch.machine();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sem::Machine m = proto;
    sem::Warp& w = m.grid.blocks[0].warps[0];
    while (!ptx::is_exit(prg.fetch(w.pc()))) {
      sem::step_warp(prg, kc, 0, w, m.memory);
      ++steps;
    }
  }
  state.counters["steps_per_run"] =
      static_cast<double>(steps) / static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_VectorAddWarpSteps);

struct Banner {
  Banner() {
    std::printf(
        "F1 — Fig. 1 warp small-step rules: one benchmark per rule on a\n"
        "32-thread warp (nop/bop/top/mov/ld/st/bra/setp/pbra/div/sync),\n"
        "plus whole-kernel warp-step throughput on the paper's vector\n"
        "sum (19 steps per run, matching Listing 3's bound).\n\n");
  }
} banner;

}  // namespace
