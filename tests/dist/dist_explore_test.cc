// Verdict equivalence between the serial DFS explorer and the
// distributed engine: on every scenario the coordinator + N worker
// processes must reproduce the serial ExploreResult *byte for byte* —
// exhaustive flag, state/transition counts, violations with their
// kinds, messages and replayable traces, the finals vector (content
// and order), and the min/max schedule lengths — at every worker
// count, with and without partial-order reduction.  Also pinned here:
// partition accounting, coordinated checkpoint/resume, recovery from a
// SIGKILLed worker, and the TCP transport.
#include "dist/coordinator.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "dist/transport.h"
#include "dist/worker.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/checkpoint.h"
#include "sem/launch.h"

namespace cac::dist {
namespace {

using namespace cac::ptx;
using programs::VecAddLayout;
using sched::ExploreOptions;
using sched::ExploreResult;
using sched::Violation;

void expect_identical(const ExploreResult& a, const ExploreResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.min_steps_to_termination, b.min_steps_to_termination);
  EXPECT_EQ(a.max_steps_to_termination, b.max_steps_to_termination);
  ASSERT_EQ(a.final_ids.size(), b.final_ids.size());
  const std::vector<sem::Machine> af = a.finals();
  const std::vector<sem::Machine> bf = b.finals();
  for (std::size_t i = 0; i < af.size(); ++i) {
    EXPECT_EQ(af[i], bf[i]) << "finals[" << i << "]";
  }
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
    EXPECT_EQ(a.violations[i].message, b.violations[i].message);
    EXPECT_EQ(a.violations[i].trace, b.violations[i].trace);
  }
}

/// Run serial vs distributed at several worker counts, with and
/// without POR, and demand identical results throughout.
void expect_dist_equivalent(const ptx::Program& prg,
                            const sem::KernelConfig& kc,
                            const sem::Machine& init) {
  for (const bool por : {false, true}) {
    ExploreOptions opts;
    opts.partial_order_reduction = por;
    const ExploreResult serial = sched::explore(prg, kc, init, opts);

    for (const std::uint32_t workers : {1u, 2u, 4u}) {
      DistOptions dopts;
      dopts.n_workers = workers;
      const DistResult r =
          explore_distributed(prg, kc, init, opts, dopts);
      expect_identical(serial, r.result,
                       "por=" + std::to_string(por) +
                           " workers=" + std::to_string(workers));
      EXPECT_EQ(r.stats.restarts, 0u);
      ASSERT_EQ(r.stats.workers.size(), workers);
    }
  }
}

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc,
                            std::uint32_t size) {
  const VecAddLayout L;
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", size);
  for (std::uint32_t i = 0; i < size; ++i) {
    launch.global_u32(L.a + 4 * i, 3 * i + 1);
    launch.global_u32(L.b + 4 * i, 7 * i + 2);
  }
  return launch.machine();
}

TEST(DistExplore, VectorAddTwoWarps) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  expect_dist_equivalent(prg, kc, vecadd_machine(prg, kc, 8));
}

TEST(DistExplore, ReduceSharedWithBarriers) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  expect_dist_equivalent(prg, kc, launch.machine());
}

TEST(DistExplore, AtomicSumTwoBlocks) {
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{2, 1, 1}, {2, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32).param("size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  launch.global_u32(32, 0);
  expect_dist_equivalent(prg, kc, launch.machine());
}

TEST(DistExplore, RacyStoreFinalsDifferBySchedule) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("race",
                    {IMov{r1, op_sreg(SregKind::CtaId, Dim::X)},
                     ISt{Space::Global, UI(32), op_imm(0), r1}, IExit{}});
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  const sem::Machine init =
      sem::Launch(prg, kc, mem::MemSizes{8, 0, 0, 0, 1}).machine();
  expect_dist_equivalent(prg, kc, init);

  DistOptions dopts;
  dopts.n_workers = 2;
  const DistResult r =
      explore_distributed(prg, kc, init, ExploreOptions{}, dopts);
  EXPECT_TRUE(r.result.exhaustive);
  EXPECT_TRUE(r.result.all_schedules_terminate());
  EXPECT_FALSE(r.result.schedule_independent());
  EXPECT_EQ(r.result.final_ids.size(), 2u);
}

TEST(DistExplore, StuckVerdictMatchesSerial) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  expect_dist_equivalent(prg, kc, init);
}

TEST(DistExplore, CycleVerdictMatchesSerial) {
  const Program prg("spin", {IBra{0}});
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  expect_dist_equivalent(prg, kc, init);

  DistOptions dopts;
  dopts.n_workers = 2;
  const DistResult r =
      explore_distributed(prg, kc, init, ExploreOptions{}, dopts);
  ASSERT_FALSE(r.result.violations.empty());
  EXPECT_EQ(r.result.violations[0].kind, Violation::Kind::Cycle);
}

TEST(DistExplore, FaultVerdictMatchesSerial) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("oob",
                    {ILd{Space::Global, UI(32), r1, op_imm(1000)}, IExit{}});
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine init =
      sem::Launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1}).machine();
  expect_dist_equivalent(prg, kc, init);
}

TEST(DistExplore, PartitionAccounting) {
  // Every distinct state lives in exactly one partition, so the summed
  // partition sizes equal the serial distinct-state count, and the
  // frontier traffic is exactly the cross-partition edges (nonzero for
  // any nontrivial graph at 2+ workers).
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  DistOptions dopts;
  dopts.n_workers = 2;
  const DistResult r =
      explore_distributed(prg, kc, init, ExploreOptions{}, dopts);
  std::uint64_t owned = 0;
  for (const auto& w : r.stats.workers) owned += w.owned;
  EXPECT_EQ(owned, serial.states_visited);
  EXPECT_GT(r.stats.frontier_msgs, 1u);
  EXPECT_GE(r.stats.skew(), 1.0);
}

TEST(DistExplore, CheckpointResumeMatchesUninterrupted) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult uninterrupted =
      sched::explore(prg, kc, init, ExploreOptions{});

  const std::string base = testing::TempDir() + "dist_ckpt_test";
  // Phase 1: budget-stop mid-run; the graceful stop writes a final
  // generation.
  ExploreOptions stopped;
  stopped.checkpoint_path = base;
  stopped.checkpoint_every_states = 100;
  stopped.stop_after_states = 150;
  DistOptions dopts;
  dopts.n_workers = 2;
  const DistResult partial =
      explore_distributed(prg, kc, init, stopped, dopts);
  EXPECT_FALSE(partial.result.exhaustive);
  EXPECT_EQ(partial.result.limit_hit,
            ExploreResult::Limit::Interrupted);
  EXPECT_TRUE(partial.result.checkpointed);
  ASSERT_GE(partial.stats.generations, 1u);

  // Phase 2: resume to completion; the verdict must equal an
  // uninterrupted serial run's.
  ExploreOptions cont;
  cont.checkpoint_path = base;
  cont.checkpoint_every_states = 100;
  DistOptions resume = dopts;
  resume.resume_manifest = base;
  const DistResult resumed =
      explore_distributed(prg, kc, init, cont, resume);
  expect_identical(uninterrupted, resumed.result, "resumed");

  // Cleanup all generations.
  std::remove(base.c_str());
  for (std::uint64_t g = 1; g <= 16; ++g) {
    for (std::uint32_t w = 0; w < 2; ++w) {
      std::remove(worker_checkpoint_path(base, g, w).c_str());
    }
  }
}

TEST(DistExplore, ResumeRejectsWrongWorkerCount) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);

  const std::string base = testing::TempDir() + "dist_ckpt_wrongn";
  ExploreOptions opts;
  opts.checkpoint_path = base;
  opts.checkpoint_every_states = 100;
  DistOptions dopts;
  dopts.n_workers = 2;
  (void)explore_distributed(prg, kc, init, opts, dopts);

  DistOptions wrong;
  wrong.n_workers = 4;
  wrong.resume_manifest = base;
  EXPECT_THROW((void)explore_distributed(prg, kc, init, opts, wrong),
               sched::CheckpointError);

  std::remove(base.c_str());
  for (std::uint64_t g = 1; g <= 16; ++g) {
    for (std::uint32_t w = 0; w < 2; ++w) {
      std::remove(worker_checkpoint_path(base, g, w).c_str());
    }
  }
}

TEST(DistExplore, WorkerDeathRecovers) {
  // SIGKILL worker 1 once it owns 50 states; the coordinator must
  // relaunch the fleet and still produce the exact serial verdict.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  DistOptions dopts;
  dopts.n_workers = 2;
  dopts.die_worker = 1;
  dopts.die_after_states = 50;
  const DistResult r =
      explore_distributed(prg, kc, init, ExploreOptions{}, dopts);
  expect_identical(serial, r.result, "after worker death");
  EXPECT_GE(r.stats.restarts, 1u);
}

TEST(DistExplore, WorkerDeathWithCheckpointRecovers) {
  // Same drill, but with checkpoint generations being written: the
  // relaunched fleet resumes from the last committed generation
  // instead of restarting from the root.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  const std::string base = testing::TempDir() + "dist_die_ckpt";
  ExploreOptions opts;
  opts.checkpoint_path = base;
  opts.checkpoint_every_states = 80;
  DistOptions dopts;
  dopts.n_workers = 2;
  dopts.die_worker = 0;
  dopts.die_after_states = 120;
  const DistResult r = explore_distributed(prg, kc, init, opts, dopts);
  expect_identical(serial, r.result, "after death with checkpoints");
  EXPECT_GE(r.stats.restarts, 1u);

  std::remove(base.c_str());
  for (std::uint64_t g = 1; g <= 32; ++g) {
    for (std::uint32_t w = 0; w < 2; ++w) {
      std::remove(worker_checkpoint_path(base, g, w).c_str());
    }
  }
}

TEST(DistExplore, WorkerDeathPiecemealRestartsOnlyTheDeadWorker) {
  // With a committed generation on disk, recovery must take the
  // piecemeal path: survivors roll back in-process (kRollback) while
  // only the dead worker is re-forked.  The stats pin which path ran,
  // and the verdict must still be byte-identical to serial.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  const std::string base = testing::TempDir() + "dist_piecemeal." +
                           std::to_string(::getpid());
  ExploreOptions opts;
  opts.checkpoint_path = base;
  opts.checkpoint_every_states = 30;
  DistOptions dopts;
  dopts.n_workers = 3;
  dopts.die_worker = 1;
  // Die on the first state owned after generation 1 commits: the
  // generation gate is what guarantees the piecemeal precondition
  // (committed_gen_ >= 1) regardless of scheduling, making this test
  // deterministic under load.
  dopts.die_after_states = 1;
  dopts.die_after_generation = 1;
  const DistResult r = explore_distributed(prg, kc, init, opts, dopts);
  expect_identical(serial, r.result, "after piecemeal recovery");
  ASSERT_GE(r.stats.restarts, 1u);
  EXPECT_GE(r.stats.piecemeal_restarts, 1u);
  EXPECT_LE(r.stats.piecemeal_restarts, r.stats.restarts);

  std::remove(base.c_str());
  for (std::uint64_t g = 1; g <= 32; ++g) {
    for (std::uint32_t w = 0; w < 3; ++w) {
      std::remove(worker_checkpoint_path(base, g, w).c_str());
    }
  }
}

TEST(DistExplore, PreGenerationDeathFallsBackToFullRelaunch) {
  // Death before any committed generation cannot roll survivors back
  // (there is nothing to roll back to), so recovery must take the
  // full-relaunch path and still reach the serial verdict.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  DistOptions dopts;
  dopts.n_workers = 2;
  dopts.die_worker = 1;
  dopts.die_after_states = 50;  // no checkpoint_path: no generations
  const DistResult r =
      explore_distributed(prg, kc, init, ExploreOptions{}, dopts);
  expect_identical(serial, r.result, "full relaunch");
  EXPECT_GE(r.stats.restarts, 1u);
  EXPECT_EQ(r.stats.piecemeal_restarts, 0u);
}

TEST(DistExplore, TieredStoresMatchSerialAndReportStats) {
  // Per-worker tiered stores (budget split across the fleet, shared
  // spill dir) must leave the verdict untouched, and the merged
  // store_stats must reflect the partitioned stores' activity.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  ExploreOptions opts;
  opts.store_spill_dir = testing::TempDir();
  opts.store_resident_budget_bytes = 64 << 10;  // split across workers
  DistOptions dopts;
  dopts.n_workers = 3;
  const DistResult r = explore_distributed(prg, kc, init, opts, dopts);
  expect_identical(serial, r.result, "tiered dist");
  EXPECT_EQ(r.result.store_stats.states, serial.states_visited);
  EXPECT_GT(r.result.store_stats.resident_bytes, 0u);
}

TEST(DistExplore, TcpTransportMatchesSerial) {
  // Multi-host shape on one host: bind an ephemeral port ourselves
  // (the listen_fd seam), fork workers that tcp_connect and run the
  // worker protocol, and require the byte-identical verdict.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine init = vecadd_machine(prg, kc, 8);
  const ExploreResult serial =
      sched::explore(prg, kc, init, ExploreOptions{});

  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::string spec =
      "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));

  constexpr std::uint32_t kWorkers = 2;
  std::vector<pid_t> pids;
  for (std::uint32_t i = 0; i < kWorkers; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(lfd);
      int code = 0;
      try {
        Fd fd = tcp_connect(spec);
        run_worker(fd.get(), prg, kc);
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    pids.push_back(pid);
  }

  DistOptions dopts;
  dopts.n_workers = kWorkers;
  dopts.listen_fd = lfd;  // ownership passes to the coordinator
  const DistResult r =
      explore_distributed(prg, kc, init, ExploreOptions{}, dopts);
  expect_identical(serial, r.result, "tcp transport");

  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
}

}  // namespace
}  // namespace cac::dist
