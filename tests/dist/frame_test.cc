// Robustness contract of the distributed wire format (src/dist/wire.h):
// every message type round-trips byte-exactly, and a peer fed
// truncated, bit-flipped, or length-lying bytes raises a structured
// DistError / support::BinError — it never crashes, hangs, or silently
// accepts a damaged frame.  The corruption corpora below sweep *every*
// byte position of real encoded frames, so a regression anywhere in
// the header validation, checksum, or per-message decoders fails here.
#include "dist/wire.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>

#include "support/binio.h"

namespace cac::dist {
namespace {

using support::BinError;
using support::BinReader;
using support::BinWriter;

sem::Choice exec(std::uint32_t b, std::uint32_t w) {
  return sem::Choice{sem::Choice::Kind::ExecWarp, b, w};
}

sem::Choice lift(std::uint32_t b) {
  return sem::Choice{sem::Choice::Kind::LiftBar, b, 0};
}

SetupMsg sample_setup() {
  SetupMsg m;
  m.worker_index = 3;
  m.n_workers = 4;
  m.program_fp = 0x1122334455667788ull;
  m.config_fp = 0x99aabbccddeeff00ull;
  m.options.max_depth = 777;
  m.options.max_states = 4242;
  m.options.partial_order_reduction = true;
  m.checkpoint_base = "/tmp/ck";
  m.resume = 1;
  m.resume_base = "/tmp/old-ck";
  m.generation = 9;
  m.die_worker = 1;
  m.die_after_states = 50;
  return m;
}

StateMsg sample_state() {
  StateMsg m;
  m.target = 2;
  m.parent = Gid::make(1, 17);
  m.edge_index = 5;
  m.mirror_id = 33;
  m.depth = 12;
  m.state = std::string("\x01\x02\x03 not a real record", 22);
  return m;
}

ResolveMsg sample_resolve() {
  ResolveMsg m;
  m.target = 1;
  m.parent = Gid::make(1, 17);
  m.edge_index = 5;
  m.mirror_id = 33;
  m.overflow = 0;
  m.child = Gid::make(2, 99);
  return m;
}

ProbeAckMsg sample_probe_ack() {
  ProbeAckMsg m;
  m.nonce = 41;
  m.worker = 2;
  m.sent = 100;
  m.processed = 98;
  m.idle = 1;
  m.paused = 0;
  m.owned = 512;
  m.rss_bytes = 1 << 20;
  return m;
}

GraphPartMsg sample_graph_part() {
  GraphPartMsg m;
  m.worker = 1;
  m.has_root = 1;
  m.root_local = 0;
  m.store = "store-bytes";
  GraphPartMsg::Node n;
  n.local = 7;
  n.processed = 1;
  n.edges.push_back({exec(0, 1), 0, 0, Gid::make(0, 3), ""});
  n.edges.push_back({lift(0), 1, 0, Gid{}, "out-of-bounds store"});
  n.edges.push_back({exec(1, 0), 0, 1, Gid{}, ""});
  m.nodes.push_back(n);
  GraphPartMsg::Node stuck;
  stuck.local = 8;
  stuck.processed = 1;
  stuck.stuck = 1;
  stuck.stuck_reason = "barrier divergence";
  m.nodes.push_back(stuck);
  m.owned = 2;
  m.frontier_sent = 4;
  m.resolves_sent = 3;
  m.bytes_sent = 1000;
  m.bytes_received = 900;
  return m;
}

WorkerCheckpointMsg sample_worker_checkpoint() {
  WorkerCheckpointMsg m;
  m.program_fp = 0xdead;
  m.config_fp = 0xbeef;
  m.options.max_states = 10;
  m.n_workers = 2;
  m.worker_index = 1;
  m.generation = 3;
  m.has_root = 0;
  m.store = "partition";
  m.nodes = sample_graph_part().nodes;
  m.frontier.emplace_back(7, 2);
  m.frontier.emplace_back(8, 5);
  return m;
}

ManifestMsg sample_manifest() {
  ManifestMsg m;
  m.program_fp = 0xdead;
  m.config_fp = 0xbeef;
  m.options.max_depth = 64;
  m.n_workers = 4;
  m.generation = 2;
  m.root = Gid::make(3, 0);
  return m;
}

template <typename Msg>
std::string encoded(const Msg& m) {
  BinWriter w;
  m.encode(w);
  return w.take();
}

/// Round-trip helper: encode, decode, re-encode, and require the
/// re-encoding to be byte-identical (a stronger check than field-wise
/// equality and immune to missing operator==).
template <typename Msg>
void expect_roundtrip(const Msg& m) {
  const std::string bytes = encoded(m);
  BinReader r(bytes);
  const Msg back = Msg::decode(r);
  EXPECT_TRUE(r.done()) << "decode left trailing bytes";
  EXPECT_EQ(encoded(back), bytes);
}

TEST(DistWire, EveryMessageTypeRoundTrips) {
  expect_roundtrip(sample_setup());
  expect_roundtrip(sample_state());
  expect_roundtrip(sample_resolve());
  expect_roundtrip(RootAckMsg{Gid::make(0, 0)});
  expect_roundtrip(RootAckMsg{Gid{}});  // overflow root
  expect_roundtrip(ProbeMsg{77});
  expect_roundtrip(sample_probe_ack());
  expect_roundtrip(WriteCheckpointMsg{6});
  expect_roundtrip(CheckpointAckMsg{2, 1, ""});
  expect_roundtrip(CheckpointAckMsg{0, 0, "disk full"});
  expect_roundtrip(sample_graph_part());
  expect_roundtrip(sample_worker_checkpoint());
  expect_roundtrip(sample_manifest());
}

TEST(DistWire, GidPacksWorkerAndLocal) {
  const Gid g = Gid::make(0xabcd, 0x1234);
  EXPECT_EQ(g.worker(), 0xabcdu);
  EXPECT_EQ(g.local(), 0x1234u);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(Gid{}.valid());
}

TEST(DistWire, OwnerMatchesInProcessShardFold) {
  // owner_of is the 64-way shard map folded onto n workers: owners
  // must be stable, in range, and divide the shard space evenly.
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 8u}) {
    for (std::uint64_t h = 0; h < 64; ++h) {
      const std::uint32_t o = owner_of(h << 58, n);
      EXPECT_LT(o, n);
      EXPECT_EQ(o, owner_of(h << 58, n));
    }
  }
  EXPECT_EQ(owner_of(0x5ull << 58, 1), 0u);
}

// --- frame layer -----------------------------------------------------

TEST(DistFrame, RoundTripThroughReader) {
  const std::string payload = encoded(sample_probe_ack());
  const std::string bytes = encode_frame(FrameType::kProbeAck, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + payload.size());

  FrameReader fr;
  fr.feed(bytes.data(), bytes.size());
  const auto f = fr.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kProbeAck);
  EXPECT_EQ(f->payload, payload);
  EXPECT_FALSE(fr.next().has_value());
  EXPECT_TRUE(fr.idle());
}

TEST(DistFrame, ByteAtATimeDelivery) {
  // Torn reads: frames split at every possible byte boundary must
  // reassemble, in order, without loss.
  std::string stream = encode_frame(FrameType::kProbe, encoded(ProbeMsg{1}));
  stream += encode_frame(FrameType::kStop, "");
  stream += encode_frame(FrameType::kProbe, encoded(ProbeMsg{2}));
  FrameReader fr;
  std::vector<Frame> got;
  for (const char c : stream) {
    fr.feed(&c, 1);
    while (auto f = fr.next()) got.push_back(*f);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].type, FrameType::kProbe);
  EXPECT_EQ(got[1].type, FrameType::kStop);
  EXPECT_EQ(got[2].type, FrameType::kProbe);
  EXPECT_TRUE(fr.idle());
}

TEST(DistFrame, TruncationNeverYieldsAFrame) {
  // Every strict prefix of a valid frame is "wait for more bytes" —
  // never a frame, never a crash.
  const std::string bytes =
      encode_frame(FrameType::kProbeAck, encoded(sample_probe_ack()));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader fr;
    fr.feed(bytes.data(), cut);
    EXPECT_FALSE(fr.next().has_value()) << "prefix length " << cut;
    if (cut > 0) {
      EXPECT_FALSE(fr.idle());  // a partial frame is pending
    }
  }
}

TEST(DistFrame, EveryHeaderAndPayloadBitFlipIsRejected) {
  // Flip one bit in every byte of the frame: header damage must raise
  // DistError(Corrupt) immediately; payload damage must be caught by
  // the checksum.  No flipped frame may ever be delivered as valid.
  const std::string good =
      encode_frame(FrameType::kProbe, encoded(ProbeMsg{0x1234}));
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (const unsigned bit : {0u, 3u, 7u}) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1u << bit));
      FrameReader fr;
      try {
        fr.feed(bad.data(), bad.size());
        const auto f = fr.next();
        // A flip inside the length field can make the frame look
        // incomplete — that is "wait for more", which is fine; what is
        // not fine is delivering a frame whose bytes were damaged.
        EXPECT_FALSE(f.has_value())
            << "corrupt frame accepted (byte " << i << " bit " << bit << ")";
      } catch (const DistError& e) {
        EXPECT_EQ(e.kind(), DistError::Kind::Corrupt);
      }
    }
  }
}

TEST(DistFrame, LengthLiesAreRejected) {
  // A header whose length field exceeds the cap must be rejected
  // before any allocation happens.
  std::string bytes = encode_frame(FrameType::kStop, "");
  // Length field lives after magic(4) + version(1) + type(1) +
  // reserved(2), little-endian u32.
  const std::size_t len_off = 8;
  bytes[len_off + 3] = '\x7f';  // ~2 GiB claim
  FrameReader fr;
  EXPECT_THROW(
      {
        fr.feed(bytes.data(), bytes.size());
        fr.next();
      },
      DistError);
}

TEST(DistFrame, BadMagicVersionTypeReservedRejected) {
  const std::string good = encode_frame(FrameType::kStop, "");
  const auto expect_corrupt = [&](std::size_t off, char value) {
    std::string bad = good;
    bad[off] = value;
    FrameReader fr;
    try {
      fr.feed(bad.data(), bad.size());
      (void)fr.next();
      FAIL() << "accepted frame with bad byte at offset " << off;
    } catch (const DistError& e) {
      EXPECT_EQ(e.kind(), DistError::Kind::Corrupt);
    }
  };
  expect_corrupt(0, 'X');     // magic
  expect_corrupt(3, 'X');     // magic
  expect_corrupt(4, static_cast<char>(kProtoVersion + 1));  // version
  expect_corrupt(5, '\x00');  // frame type 0 is invalid
  expect_corrupt(5, '\x7f');  // frame type out of range
  expect_corrupt(6, '\x01');  // reserved must be zero
  expect_corrupt(7, '\x01');  // reserved must be zero
}

TEST(DistFrame, OversizePayloadRefusedAtEncode) {
  EXPECT_THROW(encode_frame(FrameType::kState,
                            std::string_view{nullptr, kMaxFramePayload + 1}),
               DistError);
}

// --- message decoder corpora ----------------------------------------

/// For every strict prefix of an encoded message, decode must throw
/// BinError (never crash, never succeed: every decoder consumes the
/// full buffer, so a missing suffix is always detectable).
template <typename Msg>
void expect_truncation_rejected(const Msg& m, const char* name) {
  SCOPED_TRACE(name);
  const std::string bytes = encoded(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    BinReader r(std::string_view(bytes.data(), cut));
    EXPECT_THROW((void)Msg::decode(r), BinError) << "prefix " << cut;
  }
}

/// Bit-flipped payloads must either decode (a flip in a value byte is
/// semantically fine — the frame checksum guards transit; this corpus
/// guards the *decoder* against crashes on adversarial bytes) or throw
/// a structured error.  gtest's death-test-free way of saying "never
/// segfaults or hangs".
template <typename Msg>
void expect_bitflips_are_structured(const Msg& m, const char* name) {
  SCOPED_TRACE(name);
  const std::string bytes = encoded(m);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    BinReader r(bad);
    try {
      (void)Msg::decode(r);
    } catch (const BinError&) {
    } catch (const DistError&) {
    }
  }
}

TEST(DistWire, TruncatedMessagesRaiseStructuredErrors) {
  expect_truncation_rejected(sample_setup(), "setup");
  expect_truncation_rejected(sample_state(), "state");
  expect_truncation_rejected(sample_resolve(), "resolve");
  expect_truncation_rejected(ProbeMsg{7}, "probe");
  expect_truncation_rejected(sample_probe_ack(), "probe_ack");
  expect_truncation_rejected(WriteCheckpointMsg{1}, "write_checkpoint");
  expect_truncation_rejected(CheckpointAckMsg{0, 0, "err"}, "checkpoint_ack");
  expect_truncation_rejected(sample_graph_part(), "graph_part");
  expect_truncation_rejected(sample_worker_checkpoint(), "worker_checkpoint");
  expect_truncation_rejected(sample_manifest(), "manifest");
}

TEST(DistWire, BitFlippedMessagesNeverCrash) {
  expect_bitflips_are_structured(sample_setup(), "setup");
  expect_bitflips_are_structured(sample_state(), "state");
  expect_bitflips_are_structured(sample_resolve(), "resolve");
  expect_bitflips_are_structured(sample_probe_ack(), "probe_ack");
  expect_bitflips_are_structured(sample_graph_part(), "graph_part");
  expect_bitflips_are_structured(sample_worker_checkpoint(),
                                 "worker_checkpoint");
  expect_bitflips_are_structured(sample_manifest(), "manifest");
}

TEST(DistWire, CountLiesCannotForceAllocations) {
  // A GraphPartMsg whose node count claims 2^60 entries must be
  // rejected by the count-vs-remaining-bytes guard, not by an OOM.
  BinWriter w;
  sample_graph_part().encode(w);
  std::string bytes = w.take();
  // The node-count u64 follows worker(4) + has_root(1) + root_local(4)
  // + store(8 + 11).  Overwrite it with an enormous value.
  const std::size_t count_off = 4 + 1 + 4 + 8 + 11;
  for (int i = 0; i < 8; ++i) bytes[count_off + i] = '\x77';
  BinReader r(bytes);
  EXPECT_THROW((void)GraphPartMsg::decode(r), BinError);
}

// --- on-disk frame files ---------------------------------------------

TEST(DistFrameFile, RoundTripAndWrongTypeRejected) {
  const std::string path = testing::TempDir() + "dist_frame_file_test";
  const std::string payload = encoded(sample_manifest());
  write_frame_file(path, FrameType::kManifest, payload);

  const Frame f = load_frame_file(path, FrameType::kManifest);
  EXPECT_EQ(f.payload, payload);

  EXPECT_THROW((void)load_frame_file(path, FrameType::kWorkerCheckpoint),
               sched::CheckpointError);
  EXPECT_THROW((void)load_frame_file(path + ".missing", FrameType::kManifest),
               sched::CheckpointError);
  std::remove(path.c_str());
}

TEST(DistFrameFile, DamagedFileRejected) {
  const std::string path = testing::TempDir() + "dist_frame_damaged";
  write_frame_file(path, FrameType::kManifest, encoded(sample_manifest()));
  // Flip one payload byte on disk: the load must detect it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(kFrameHeaderSize) + 2, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(kFrameHeaderSize) + 2, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  EXPECT_THROW((void)load_frame_file(path, FrameType::kManifest),
               sched::CheckpointError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cac::dist
