#include "sem/state.h"

#include <gtest/gtest.h>

namespace cac::sem {
namespace {

TEST(GenerateGrid, PaperConfig) {
  // kc = ((1,1,1),(32,1,1)): one block, one warp of 32 threads.
  const Grid g = generate_grid({{1, 1, 1}, {32, 1, 1}, 32});
  ASSERT_EQ(g.blocks.size(), 1u);
  ASSERT_EQ(g.blocks[0].warps.size(), 1u);
  const Warp& w = g.blocks[0].warps[0];
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 0u);
  ASSERT_EQ(w.thread_count(), 32u);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(w.threads()[i].tid, i);
  }
}

TEST(GenerateGrid, MultiBlockMultiWarp) {
  const Grid g = generate_grid({{2, 1, 1}, {6, 1, 1}, 4});
  ASSERT_EQ(g.blocks.size(), 2u);
  ASSERT_EQ(g.blocks[0].warps.size(), 2u);
  EXPECT_EQ(g.blocks[0].warps[0].thread_count(), 4u);
  EXPECT_EQ(g.blocks[0].warps[1].thread_count(), 2u);  // partial warp
  // Thread ids are globally enumerated across blocks (paper §III-7).
  EXPECT_EQ(g.blocks[1].warps[0].threads()[0].tid, 6u);
  EXPECT_EQ(g.blocks[1].warps[1].threads()[1].tid, 11u);
}

TEST(GenerateGrid, ThreeDimensionalCounts) {
  const Grid g = generate_grid({{2, 2, 1}, {2, 2, 2}, 8});
  EXPECT_EQ(g.blocks.size(), 4u);
  EXPECT_EQ(g.blocks[0].warps.size(), 1u);
  EXPECT_EQ(g.blocks[0].warps[0].thread_count(), 8u);
}

TEST(MachineState, EqualityAndHash) {
  const KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  Machine a{generate_grid(kc), mem::Memory(mem::MemSizes{16, 0, 0, 0, 1})};
  Machine b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());

  // hash() memoizes; direct grid mutation (outside sem::apply_choice,
  // which invalidates automatically) requires invalidate_hash().
  b.grid.blocks[0].warps[0].set_uni_pc(1);
  b.invalidate_hash();
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());

  // Memory mutators track their own cache, but the combined machine
  // hash still needs the explicit invalidation on direct writes.
  Machine c = a;
  c.memory.store(mem::Space::Global, 0, 1, 1, false);
  c.invalidate_hash();
  EXPECT_NE(a, c);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(MachineState, HashSensitiveToRegisters) {
  const KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  Machine a{generate_grid(kc), mem::Memory{}};
  Machine b = a;
  b.grid.blocks[0].warps[0].threads()[1].rho.write(
      {ptx::TypeClass::UI, 32, 1}, 5);
  b.invalidate_hash();
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(MachineState, EqualityIgnoresHashCacheStaleness) {
  // operator== compares real state only — a stale memoized hash can
  // never make equal machines compare unequal or vice versa.
  const KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  Machine a{generate_grid(kc), mem::Memory(mem::MemSizes{8, 0, 0, 0, 1})};
  Machine b = a;
  (void)a.hash();  // a's cache warm, b's cold
  EXPECT_EQ(a, b);
  b.grid.blocks[0].warps[0].set_uni_pc(3);  // no invalidate on purpose
  EXPECT_NE(a, b);
}

TEST(MachineState, ToStringShowsShapes) {
  const Grid g = generate_grid({{1, 1, 1}, {4, 1, 1}, 2});
  const std::string s = to_string(g);
  EXPECT_NE(s.find("block 0"), std::string::npos);
  EXPECT_NE(s.find("U(0;2)"), std::string::npos);
}

}  // namespace
}  // namespace cac::sem
