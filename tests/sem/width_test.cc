// Narrow-width (8/16-bit) arithmetic through the full pipeline:
// register classes, wrap-around, sign handling, and loads/stores.
#include <gtest/gtest.h>

#include "ptx/emit.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace cac {
namespace {

sem::Machine run_kernel(const ptx::Program& prg, mem::MemSizes sizes,
                        std::uint32_t threads = 1) {
  const sem::KernelConfig kc{{1, 1, 1}, {threads, 1, 1}, 32};
  sem::Launch launch(prg, kc, sizes);
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  EXPECT_TRUE(sched::run(prg, kc, m, s).terminated());
  return m;
}

TEST(NarrowWidth, SixteenBitWrapAround) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f() {
  .reg .u16 %rh<4>;
  mov.u16 %rh1, 0xFFFF;
  add.u16 %rh2, %rh1, 3;
  mul.lo.u16 %rh3, %rh1, %rh1;
  st.global.u16 [0], %rh2;
  st.global.u16 [2], %rh3;
  ret;
})").kernel("f");
  const sem::Machine m = run_kernel(prg, mem::MemSizes{16, 0, 0, 0, 1});
  EXPECT_EQ(m.memory.load(mem::Space::Global, 0, 2), 2u);       // wraps
  EXPECT_EQ(m.memory.load(mem::Space::Global, 2, 2), 1u);       // (-1)^2
}

TEST(NarrowWidth, SignedSixteenBitComparison) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f() {
  .reg .pred %p<2>;
  .reg .u16 %rh<3>;
  .reg .u32 %r<3>;
  mov.u16 %rh1, 0x8000;
  setp.lt.s16 %p1, %rh1, 0;
  selp.b32 %r1, 1, 0, %p1;
  st.global.u32 [0], %r1;
  ret;
})").kernel("f");
  const sem::Machine m = run_kernel(prg, mem::MemSizes{16, 0, 0, 0, 1});
  EXPECT_EQ(m.memory.load(mem::Space::Global, 0, 4), 1u);  // negative
}

TEST(NarrowWidth, ByteArithmeticAndStores) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f() {
  .reg .u8 %rb<4>;
  mov.u8 %rb1, 200;
  add.u8 %rb2, %rb1, 100;
  shr.u8 %rb3, %rb1, 3;
  st.global.u8 [0], %rb2;
  st.global.u8 [1], %rb3;
  ret;
})").kernel("f");
  const sem::Machine m = run_kernel(prg, mem::MemSizes{16, 0, 0, 0, 1});
  EXPECT_EQ(m.memory.load(mem::Space::Global, 0, 1), 44u);  // 300 mod 256
  EXPECT_EQ(m.memory.load(mem::Space::Global, 1, 1), 25u);  // 200 >> 3
}

TEST(NarrowWidth, CvtBetweenWidths) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f() {
  .reg .u16 %rh<3>;
  .reg .u32 %r<3>;
  mov.u16 %rh1, 0x8001;
  cvt.u32.s16 %r1, %rh1;
  cvt.u32.u16 %r2, %rh1;
  st.global.u32 [0], %r1;
  st.global.u32 [4], %r2;
  ret;
})").kernel("f");
  const sem::Machine m = run_kernel(prg, mem::MemSizes{16, 0, 0, 0, 1});
  EXPECT_EQ(m.memory.load(mem::Space::Global, 0, 4), 0xFFFF8001u);  // sext
  EXPECT_EQ(m.memory.load(mem::Space::Global, 4, 4), 0x00008001u);  // zext
}

TEST(NarrowWidth, SixteenBitRoundTripsThroughEmitter) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f() {
  .reg .u16 %rh<3>;
  .reg .s16 %sh<2>;
  mov.u16 %rh1, 7;
  mov.u16 %sh1, 9;
  add.s16 %rh2, %rh1, 1;
  ret;
})").kernel("f");
  ptx::LowerOptions no_sync;
  no_sync.insert_syncs = false;
  const ptx::Program back =
      ptx::load_ptx(ptx::emit_ptx(prg), no_sync).kernel("f");
  EXPECT_EQ(back, prg);
}

}  // namespace
}  // namespace cac
