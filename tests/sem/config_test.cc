#include "sem/config.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace cac::sem {
namespace {

using ptx::Dim;
using ptx::Sreg;
using ptx::SregKind;

TEST(Config, Counts) {
  KernelConfig kc{{2, 3, 4}, {32, 2, 1}, 32};
  EXPECT_EQ(kc.num_blocks(), 24u);
  EXPECT_EQ(kc.threads_per_block(), 64u);
  EXPECT_EQ(kc.total_threads(), 24u * 64u);
  EXPECT_EQ(kc.warps_per_block(), 2u);
}

TEST(Config, PartialWarpRoundsUp) {
  KernelConfig kc{{1, 1, 1}, {33, 1, 1}, 32};
  EXPECT_EQ(kc.warps_per_block(), 2u);
}

TEST(Config, SregAuxPaperConfig) {
  // The paper's kc = ((1,1,1),(32,1,1)).
  KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  for (std::uint32_t t = 0; t < 32; ++t) {
    EXPECT_EQ(sreg_aux(kc, t, {SregKind::Tid, Dim::X}), t);
    EXPECT_EQ(sreg_aux(kc, t, {SregKind::CtaId, Dim::X}), 0u);
    EXPECT_EQ(sreg_aux(kc, t, {SregKind::NTid, Dim::X}), 32u);
    EXPECT_EQ(sreg_aux(kc, t, {SregKind::NCtaId, Dim::X}), 1u);
  }
}

TEST(Config, SregAuxMultiBlock) {
  KernelConfig kc{{4, 1, 1}, {8, 1, 1}, 8};
  const std::uint32_t tid = linear_tid(kc, 2, 5);
  EXPECT_EQ(tid, 21u);
  EXPECT_EQ(sreg_aux(kc, tid, {SregKind::Tid, Dim::X}), 5u);
  EXPECT_EQ(sreg_aux(kc, tid, {SregKind::CtaId, Dim::X}), 2u);
}

TEST(Config, SregAux3D) {
  KernelConfig kc{{2, 2, 2}, {2, 3, 4}, 32};
  // thread-in-block 17 = x:1 y:2 z:2 for block dims (2,3,4).
  const std::uint32_t tid = linear_tid(kc, 0, 17);
  EXPECT_EQ(sreg_aux(kc, tid, {SregKind::Tid, Dim::X}), 1u);
  EXPECT_EQ(sreg_aux(kc, tid, {SregKind::Tid, Dim::Y}), 2u);
  EXPECT_EQ(sreg_aux(kc, tid, {SregKind::Tid, Dim::Z}), 2u);
  // block 5 = x:1 y:0 z:1 for grid dims (2,2,2).
  const std::uint32_t tid2 = linear_tid(kc, 5, 0);
  EXPECT_EQ(sreg_aux(kc, tid2, {SregKind::CtaId, Dim::X}), 1u);
  EXPECT_EQ(sreg_aux(kc, tid2, {SregKind::CtaId, Dim::Y}), 0u);
  EXPECT_EQ(sreg_aux(kc, tid2, {SregKind::CtaId, Dim::Z}), 1u);
  EXPECT_EQ(sreg_aux(kc, tid2, {SregKind::NTid, Dim::Y}), 3u);
  EXPECT_EQ(sreg_aux(kc, tid2, {SregKind::NCtaId, Dim::Z}), 2u);
}

TEST(Config, EveryThreadHasUniqueIndexPair) {
  // Paper §III-4: every thread has a unique (tid, ctaid) combination.
  KernelConfig kc{{2, 2, 1}, {2, 2, 1}, 4};
  std::set<std::array<std::uint32_t, 6>> seen;
  for (std::uint32_t t = 0; t < kc.total_threads(); ++t) {
    seen.insert({sreg_aux(kc, t, {SregKind::Tid, Dim::X}),
                 sreg_aux(kc, t, {SregKind::Tid, Dim::Y}),
                 sreg_aux(kc, t, {SregKind::Tid, Dim::Z}),
                 sreg_aux(kc, t, {SregKind::CtaId, Dim::X}),
                 sreg_aux(kc, t, {SregKind::CtaId, Dim::Y}),
                 sreg_aux(kc, t, {SregKind::CtaId, Dim::Z})});
  }
  EXPECT_EQ(seen.size(), kc.total_threads());
}

}  // namespace
}  // namespace cac::sem
