// sem::LaunchSpec / parse_launch_args: the declarative launch surface
// shared by cacval, the benches and the examples.
//
//  * flag parsing round-trips into LaunchSpec fields and returns
//    unrecognized arguments (the front end's own flags) in order;
//  * malformed flags are rejected with LaunchArgError, which carries
//    the conventional usage exit status;
//  * to_launch() yields a runnable initial machine with params and
//    Global initializers applied.
#include "sem/launch.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "sched/scheduler.h"

namespace cac::sem {
namespace {

std::vector<std::string> parse(std::vector<std::string> args,
                               LaunchSpec& spec) {
  return parse_launch_args(args, spec);
}

TEST(LaunchSpecTest, Defaults) {
  const LaunchSpec spec;
  EXPECT_EQ(spec.grid.x, 1u);
  EXPECT_EQ(spec.block.x, 32u);
  EXPECT_EQ(spec.warp_size, 32u);
  const KernelConfig kc = spec.to_config();
  EXPECT_EQ(kc.block.x, 32u);
  EXPECT_EQ(kc.warp_size, 32u);
}

TEST(LaunchSpecTest, ParseRoundTripsAllFlags) {
  LaunchSpec spec;
  const auto rest = parse(
      {"--grid", "2,3", "--block", "8,1,1", "--warp", "4", "--global",
       "0x400", "--shared", "128", "--param", "size=8", "--param",
       "arr_A=0x100", "--init", "0x100=7", "--init", "0x104=0x2a"},
      spec);
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(spec.grid.x, 2u);
  EXPECT_EQ(spec.grid.y, 3u);
  EXPECT_EQ(spec.grid.z, 1u);
  EXPECT_EQ(spec.block.x, 8u);
  EXPECT_EQ(spec.warp_size, 4u);
  EXPECT_EQ(spec.global_bytes, 0x400u);
  EXPECT_EQ(spec.shared_bytes, 128u);
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.params[0].first, "size");
  EXPECT_EQ(spec.params[0].second, 8u);
  EXPECT_EQ(spec.params[1].first, "arr_A");
  EXPECT_EQ(spec.params[1].second, 0x100u);
  ASSERT_EQ(spec.inits.size(), 2u);
  EXPECT_EQ(spec.inits[0].first, 0x100u);
  EXPECT_EQ(spec.inits[0].second, 7u);
  EXPECT_EQ(spec.inits[1].first, 0x104u);
  EXPECT_EQ(spec.inits[1].second, 0x2au);
}

TEST(LaunchSpecTest, ParseReturnsUnrecognizedArgsInOrder) {
  LaunchSpec spec;
  const auto rest = parse({"kernel.ptx", "--block", "4", "--kernel", "k",
                           "--warp", "2", "--expect", "0x10=3"},
                          spec);
  EXPECT_EQ(rest, (std::vector<std::string>{"kernel.ptx", "--kernel", "k",
                                            "--expect", "0x10=3"}));
  EXPECT_EQ(spec.block.x, 4u);
  EXPECT_EQ(spec.warp_size, 2u);
}

TEST(LaunchSpecTest, RejectsMalformedValues) {
  LaunchSpec spec;
  // Non-numeric dimension.
  EXPECT_THROW(parse({"--grid", "abc"}, spec), LaunchArgError);
  // Trailing junk after a number.
  EXPECT_THROW(parse({"--grid", "12junk"}, spec), LaunchArgError);
  // Too many dimension components.
  EXPECT_THROW(parse({"--block", "1,2,3,4"}, spec), LaunchArgError);
  // Signs are rejected (values are unsigned).
  EXPECT_THROW(parse({"--warp", "-4"}, spec), LaunchArgError);
  EXPECT_THROW(parse({"--warp", "+4"}, spec), LaunchArgError);
  // --param / --init require NAME=VALUE with a non-empty name.
  EXPECT_THROW(parse({"--param", "size"}, spec), LaunchArgError);
  EXPECT_THROW(parse({"--param", "=8"}, spec), LaunchArgError);
  EXPECT_THROW(parse({"--init", "0x100"}, spec), LaunchArgError);
  // A flag at the end with no value.
  EXPECT_THROW(parse({"--block"}, spec), LaunchArgError);
  EXPECT_THROW(parse({"--param"}, spec), LaunchArgError);
}

TEST(LaunchSpecTest, ErrorCarriesUsageExitStatus) {
  // Front ends (cacval) translate LaunchArgError into this exit code;
  // tests/sem pins the contract so the CLI behavior can't drift.
  EXPECT_EQ(LaunchArgError::kExitStatus, 2);
  LaunchSpec spec;
  try {
    parse({"--grid", "12junk"}, spec);
    FAIL() << "expected LaunchArgError";
  } catch (const LaunchArgError& e) {
    EXPECT_NE(std::string(e.what()).find("--grid"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12junk"), std::string::npos);
  }
}

TEST(LaunchSpecTest, ToLaunchBuildsRunnableMachine) {
  const ptx::Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;

  LaunchSpec spec;
  const auto rest =
      parse({"--block", "4", "--warp", "4", "--global", "0x400",
             "--shared", "0", "--param", "size=4",
             "--param", "arr_A=0x100", "--param", "arr_B=0x200",
             "--param", "arr_C=0x300", "--init", "0x100=1",
             "--init", "0x104=2", "--init", "0x108=3", "--init",
             "0x10c=4", "--init", "0x200=10", "--init", "0x204=20",
             "--init", "0x208=30", "--init", "0x20c=40"},
          spec);
  EXPECT_TRUE(rest.empty());

  Launch launch = spec.to_launch(prg);
  Machine m = launch.machine();
  sched::FirstChoiceScheduler det;
  const sched::RunResult run = sched::run(prg, spec.to_config(), m, det);
  EXPECT_TRUE(run.terminated()) << run.message;
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.memory.load(mem::Space::Global, L.c + 4 * i, 4),
              (i + 1) + 10 * (i + 1))
        << "C[" << i << "]";
  }
}

TEST(LaunchSpecTest, ToLaunchHonorsModuleSharedMinimum) {
  const ptx::Program prg = programs::vector_add_listing2();
  LaunchSpec spec;
  spec.block = {4, 1, 1};
  spec.warp_size = 4;
  spec.shared_bytes = 16;
  // A module declaring a larger shared layout wins over the flag.
  Launch launch = spec.to_launch(prg, /*min_shared_bytes=*/256);
  EXPECT_GE(launch.memory().shared_size(), 256u);
}

}  // namespace
}  // namespace cac::sem
