#include "sem/warp.h"

#include <gtest/gtest.h>

namespace cac::sem {
namespace {

ThreadVec mk_threads(std::initializer_list<std::uint32_t> tids) {
  ThreadVec ts;
  for (std::uint32_t t : tids) {
    Thread th;
    th.tid = t;
    ts.push_back(th);
  }
  return ts;
}

TEST(Warp, UniformBasics) {
  const Warp w = make_warp(4, 3);
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.pc(), 0u);
  EXPECT_EQ(w.thread_count(), 3u);
  EXPECT_EQ(w.leaf_count(), 1u);
  EXPECT_EQ(w.depth(), 1u);
  EXPECT_EQ(w.threads()[0].tid, 4u);
  EXPECT_EQ(w.threads()[2].tid, 6u);
}

TEST(Warp, DivergentTreeShape) {
  Warp w(Warp(10, mk_threads({0, 1})), Warp(20, mk_threads({2, 3})));
  EXPECT_TRUE(w.divergent());
  EXPECT_EQ(w.pc(), 10u);  // left-most leaf pc
  EXPECT_EQ(w.thread_count(), 4u);
  EXPECT_EQ(w.leaf_count(), 2u);
  EXPECT_EQ(w.depth(), 2u);
  EXPECT_EQ(w.shape(), "D(U(10;2),U(20;2))");
}

TEST(Warp, DeepCopyIsIndependent) {
  Warp a(Warp(1, mk_threads({0})), Warp(2, mk_threads({1})));
  Warp b = a;
  b.left().set_uni_pc(99);
  EXPECT_EQ(a.left().uni_pc(), 1u);
  EXPECT_EQ(b.left().uni_pc(), 99u);
  EXPECT_NE(a, b);
}

TEST(Warp, EqualityAndHash) {
  const Warp a(Warp(1, mk_threads({0})), Warp(2, mk_threads({1})));
  const Warp b(Warp(1, mk_threads({0})), Warp(2, mk_threads({1})));
  EXPECT_EQ(a, b);
  Hasher ha, hb;
  a.mix_hash(ha);
  b.mix_hash(hb);
  EXPECT_EQ(ha.value(), hb.value());
  // A uniform warp and a divergent warp with the same threads differ.
  const Warp c(1, mk_threads({0, 1}));
  EXPECT_NE(a, c);
}

// --- sync function (Fig. 2), case by case ---

TEST(SyncFn, UniformAdvances) {
  const Warp w = sync_warp(Warp(7, mk_threads({0, 1})));
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 8u);
}

TEST(SyncFn, EmptyLeftCollapses) {
  // sync((pc1,{}), w2) = sync(w2)
  const Warp w = sync_warp(Warp(Warp(5, {}), Warp(9, mk_threads({0}))));
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 10u);
  EXPECT_EQ(w.thread_count(), 1u);
}

TEST(SyncFn, EmptyRightCollapses) {
  const Warp w = sync_warp(Warp(Warp(9, mk_threads({0})), Warp(5, {})));
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 10u);
}

TEST(SyncFn, SamePcMergesSortedByTid) {
  const Warp w = sync_warp(
      Warp(Warp(9, mk_threads({2, 3})), Warp(9, mk_threads({0, 1}))));
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 10u);
  ASSERT_EQ(w.thread_count(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w.threads()[i].tid, i);
  }
}

TEST(SyncFn, DifferentPcRotates) {
  // sync((pc1,t1), w2) = (w2, (pc1,t1)) — the lagging side moves left.
  const Warp w = sync_warp(
      Warp(Warp(9, mk_threads({0})), Warp(5, mk_threads({1}))));
  ASSERT_TRUE(w.divergent());
  EXPECT_EQ(w.left().uni_pc(), 5u);
  EXPECT_EQ(w.right().uni_pc(), 9u);
}

TEST(SyncFn, DivergentLeftRecurses) {
  // sync(w1, w2) = (sync(w1), w2) when w1 is divergent.
  Warp inner(Warp(9, mk_threads({0})), Warp(9, mk_threads({1})));
  const Warp w = sync_warp(Warp(std::move(inner), Warp(3, mk_threads({2}))));
  ASSERT_TRUE(w.divergent());
  EXPECT_FALSE(w.left().divergent());
  EXPECT_EQ(w.left().uni_pc(), 10u);  // inner pair merged
  EXPECT_EQ(w.left().thread_count(), 2u);
  EXPECT_EQ(w.right().uni_pc(), 3u);
}

TEST(SyncFn, NestedEmptySides) {
  // A tree of empties around one real leaf collapses to that leaf +1.
  Warp w(Warp(Warp(1, {}), Warp(4, mk_threads({7}))), Warp(2, {}));
  const Warp s = sync_warp(std::move(w));
  EXPECT_FALSE(s.divergent());
  EXPECT_EQ(s.uni_pc(), 5u);
  EXPECT_EQ(s.threads()[0].tid, 7u);
}

TEST(SyncFn, PreservesThreadState) {
  ThreadVec ts = mk_threads({0});
  ts[0].rho.write({ptx::TypeClass::UI, 32, 1}, 42);
  ts[0].phi.write({1}, true);
  const Warp w = sync_warp(
      Warp(Warp(9, std::move(ts)), Warp(9, mk_threads({1}))));
  EXPECT_EQ(w.threads()[0].rho.read({ptx::TypeClass::UI, 32, 1}), 42u);
  EXPECT_TRUE(w.threads()[0].phi.read({1}));
}

TEST(RegFile, ReadsAreCanonical) {
  RegFile rf;
  const ptx::Reg r8{ptx::TypeClass::UI, 8, 1};
  rf.write(r8, 0x1ff);  // truncated to width
  EXPECT_EQ(rf.read(r8), 0xffu);
  EXPECT_FALSE(rf.read_opt({ptx::TypeClass::UI, 8, 2}).has_value());
  EXPECT_EQ(rf.read({ptx::TypeClass::UI, 8, 2}), 0u);
}

TEST(PredState, DefaultsFalse) {
  PredState ps;
  EXPECT_FALSE(ps.read({3}));
  ps.write({3}, true);
  EXPECT_TRUE(ps.read({3}));
  ps.write({3}, false);
  EXPECT_FALSE(ps.read({3}));
}

}  // namespace
}  // namespace cac::sem
