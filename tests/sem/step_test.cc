// Unit tests for the Fig. 1 / Fig. 3 derivation rules, one rule at a
// time, on hand-built warps.
#include "sem/step.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sem/launch.h"

namespace cac::sem {
namespace {

using namespace cac::ptx;

const Reg r1{TypeClass::UI, 32, 1}, r2{TypeClass::UI, 32, 2},
    r3{TypeClass::UI, 32, 3};
const Reg rs{TypeClass::SI, 32, 4};
const Reg rd1{TypeClass::UI, 64, 1};
const Pred p1{1};

KernelConfig kc4() { return {{1, 1, 1}, {4, 1, 1}, 4}; }

mem::Memory mem64() {
  mem::MemSizes s;
  s.global = 64;
  s.constant = 16;
  s.shared = 32;
  s.param = 16;
  return mem::Memory(s);
}

/// One uniform 4-thread warp at pc 0, with r1 = tid preloaded.
Warp warp4() {
  Warp w = make_warp(0, 4);
  for (Thread& t : w.threads()) t.rho.write(r1, t.tid);
  return w;
}

StepResult step1(const Program& prg, Warp& w, mem::Memory& mu,
                 StepEvents* ev = nullptr, const StepOptions& opts = {}) {
  return step_warp(prg, kc4(), 0, w, mu, opts, ev);
}

TEST(StepRules, NopAdvancesPcOnly) {
  const Program prg("t", {INop{}, IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  const Warp before = w;
  ASSERT_TRUE(step1(prg, w, mu).ok());
  EXPECT_EQ(w.uni_pc(), 1u);
  EXPECT_EQ(w.threads(), before.threads());
}

TEST(StepRules, BopPerThread) {
  const Program prg(
      "t", {IBop{BinOp::Add, UI(32), r2, op_reg(r1), op_imm(10)}, IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  ASSERT_TRUE(step1(prg, w, mu).ok());
  for (const Thread& t : w.threads()) {
    EXPECT_EQ(t.rho.read(r2), t.tid + 10);
  }
}

TEST(StepRules, BopWidthWraps) {
  const Program prg(
      "t", {IMov{r1, op_imm(0xffffffff)},
            IBop{BinOp::Add, UI(32), r2, op_reg(r1), op_imm(1)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  ASSERT_TRUE(step1(prg, w, mu).ok());
  ASSERT_TRUE(step1(prg, w, mu).ok());
  EXPECT_EQ(w.threads()[0].rho.read(r2), 0u);
}

TEST(StepRules, MulWideSignedNegative) {
  // mul.wide.s32 -2, 4 = -8 as a 64-bit value (the Listing-2 address
  // computation depends on this sign extension).
  const Program prg(
      "t", {IMov{rs, op_imm(-2)},
            IBop{BinOp::MulWide, SI(32), rd1, op_reg(rs), op_imm(4)},
            IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  ASSERT_TRUE(step1(prg, w, mu).ok());
  ASSERT_TRUE(step1(prg, w, mu).ok());
  EXPECT_EQ(w.threads()[0].rho.read(rd1), 0xfffffffffffffff8ull);
}

TEST(StepRules, MulWideUnsignedZeroExtends) {
  const Program prg(
      "t", {IMov{r1, op_imm(0x80000000)},
            IBop{BinOp::MulWide, UI(32), rd1, op_reg(r1), op_imm(2)},
            IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  step1(prg, w, mu);
  step1(prg, w, mu);
  EXPECT_EQ(w.threads()[0].rho.read(rd1), 0x100000000ull);
}

TEST(StepRules, DivByZeroIsAllOnes) {
  const Program prg(
      "t", {IBop{BinOp::Div, UI(32), r2, op_imm(5), op_imm(0)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_EQ(w.threads()[0].rho.read(r2), 0xffffffffu);
}

TEST(StepRules, TopMadLo) {
  const Program prg(
      "t", {ITop{TerOp::MadLo, SI(32), r2, op_reg(r1), op_imm(3), op_imm(7)},
            IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  step1(prg, w, mu);
  for (const Thread& t : w.threads()) {
    EXPECT_EQ(t.rho.read(r2), t.tid * 3 + 7);
  }
}

TEST(StepRules, MovFromSreg) {
  const Program prg("t", {IMov{r2, op_sreg(SregKind::NTid, Dim::X)}, IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  step1(prg, w, mu);
  for (const Thread& t : w.threads()) EXPECT_EQ(t.rho.read(r2), 4u);
}

TEST(StepRules, SetpSignedVsUnsigned) {
  const Program prg(
      "t", {IMov{rs, op_imm(-1)},
            ISetp{CmpOp::Lt, SI(32), p1, op_reg(rs), op_imm(0)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  step1(prg, w, mu);
  step1(prg, w, mu);
  EXPECT_TRUE(w.threads()[0].phi.read(p1));

  const Program prg2(
      "t", {IMov{r1, op_imm(-1)},
            ISetp{CmpOp::Lt, UI(32), p1, op_reg(r1), op_imm(0)}, IExit{}});
  Warp w2 = make_warp(0, 1);
  step_warp(prg2, kc4(), 0, w2, mu);
  step_warp(prg2, kc4(), 0, w2, mu);
  EXPECT_FALSE(w2.threads()[0].phi.read(p1));  // 0xffffffff is large unsigned
}

TEST(StepRules, BraJumps) {
  const Program prg("t", {IBra{2}, INop{}, IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_EQ(w.uni_pc(), 2u);
}

TEST(StepRules, PBraSplitsByPredicate) {
  // Threads 0,1 have p1 set; they take the branch.
  const Program prg("t", {IPBra{p1, false, 3}, INop{}, INop{}, IExit{}});
  Warp w = warp4();
  for (Thread& t : w.threads()) t.phi.write(p1, t.tid < 2);
  auto mu = mem64();
  step1(prg, w, mu);
  ASSERT_TRUE(w.divergent());
  // Fall-through side is the left (executes first), taken side right.
  EXPECT_EQ(w.left().uni_pc(), 1u);
  EXPECT_EQ(w.left().thread_count(), 2u);
  EXPECT_EQ(w.right().uni_pc(), 3u);
  EXPECT_EQ(w.right().threads()[0].tid, 0u);
}

TEST(StepRules, PBraAllTakenStaysUniform) {
  const Program prg("t", {IPBra{p1, false, 2}, INop{}, IExit{}});
  Warp w = warp4();
  for (Thread& t : w.threads()) t.phi.write(p1, true);
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 2u);
}

TEST(StepRules, PBraNegated) {
  const Program prg("t", {IPBra{p1, true, 2}, INop{}, IExit{}});
  Warp w = warp4();
  for (Thread& t : w.threads()) t.phi.write(p1, true);
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 1u);  // @!p with p=true falls through
}

TEST(StepRules, DivRuleExecutesLeftmostOnly) {
  const Program prg(
      "t", {IBop{BinOp::Add, UI(32), r2, op_reg(r2), op_imm(1)},
            IBop{BinOp::Add, UI(32), r2, op_reg(r2), op_imm(1)}, IExit{}});
  Warp w(Warp(0, make_warp(0, 2).threads()),
         Warp(0, make_warp(2, 2).threads()));
  auto mu = mem64();
  step1(prg, w, mu);
  ASSERT_TRUE(w.divergent());
  EXPECT_EQ(w.left().uni_pc(), 1u);
  EXPECT_EQ(w.right().uni_pc(), 0u);  // untouched
  EXPECT_EQ(w.left().threads()[0].rho.read(r2), 1u);
  EXPECT_EQ(w.right().threads()[0].rho.read(r2), 0u);
}

TEST(StepRules, SyncInstructionMergesWholeTree) {
  const Program prg("t", {ISync{}, IExit{}});
  Warp w(Warp(0, make_warp(2, 2).threads()),
         Warp(0, make_warp(0, 2).threads()));
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_FALSE(w.divergent());
  EXPECT_EQ(w.uni_pc(), 1u);
  EXPECT_EQ(w.threads()[0].tid, 0u);  // canonical tid order
}

TEST(StepRules, LdStoresRoundTrip) {
  const Program prg(
      "t",
      {IBop{BinOp::Mul, UI(32), r2, op_reg(r1), op_imm(4)},  // addr = tid*4
       ISt{Space::Global, UI(32), op_reg(r2), r1},
       ILd{Space::Global, UI(32), r3, op_reg(r2)}, IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  step1(prg, w, mu);
  step1(prg, w, mu);
  step1(prg, w, mu);
  for (const Thread& t : w.threads()) {
    EXPECT_EQ(t.rho.read(r3), t.tid);
    EXPECT_EQ(mu.load(Space::Global, t.tid * 4, 4), t.tid);
  }
}

TEST(StepRules, GlobalStoreLeavesInvalidBit) {
  const Program prg("t", {ISt{Space::Global, UI(32), op_imm(0), r1}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_FALSE(mu.all_valid(Space::Global, 0, 4));
}

TEST(StepRules, LdOfInvalidByteEmitsEvent) {
  const Program prg("t", {ISt{Space::Global, UI(32), op_imm(0), r1},
                          ILd{Space::Global, UI(32), r2, op_imm(0)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  StepEvents ev;
  step1(prg, w, mu, &ev);
  step1(prg, w, mu, &ev);
  EXPECT_FALSE(ev.invalid_reads.empty());
  EXPECT_EQ(ev.invalid_reads[0].space, Space::Global);
}

TEST(StepRules, LdOfInitializedDataIsClean) {
  const Program prg("t", {ILd{Space::Global, UI(32), r2, op_imm(8)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  mu.init_u32(Space::Global, 8, 77);
  StepEvents ev;
  step1(prg, w, mu, &ev);
  EXPECT_TRUE(ev.invalid_reads.empty());
  EXPECT_EQ(w.threads()[0].rho.read(r2), 77u);
}

TEST(StepRules, LdSignExtendsSignedLoads) {
  const Program prg("t", {ILd{Space::Global, SI(8), r2, op_imm(0)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  std::uint8_t b = 0x80;
  mu.write_init(Space::Global, 0, &b, 1);
  step1(prg, w, mu);
  EXPECT_EQ(w.threads()[0].rho.read(r2), 0xffffff80u);
}

TEST(StepRules, OutOfBoundsLoadFaults) {
  const Program prg("t", {ILd{Space::Global, UI(32), r2, op_imm(62)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  const StepResult r = step1(prg, w, mu);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.fault.find("out-of-bounds"), std::string::npos);
  EXPECT_NE(r.fault.find("Global"), std::string::npos);
}

TEST(StepRules, StoreToReadOnlySpaceFaults) {
  const Program prg("t", {ISt{Space::Const, UI(32), op_imm(0), r1}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  EXPECT_FALSE(step1(prg, w, mu).ok());
}

TEST(StepRules, UninitReadEmitsEvent) {
  const Program prg(
      "t", {IBop{BinOp::Add, UI(32), r2, op_reg(r3), op_imm(0)}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  StepEvents ev;
  step1(prg, w, mu, &ev);
  ASSERT_EQ(ev.uninit_reads.size(), 1u);
  EXPECT_EQ(ev.uninit_reads[0].reg, r3);
}

TEST(StepRules, StoreConflictDetectedAndOrderDependent) {
  // All four lanes store their tid to address 0.
  const Program prg("t", {ISt{Space::Global, UI(32), op_imm(0), r1}, IExit{}});
  auto mu_a = mem64();
  auto mu_d = mem64();
  StepEvents ev;
  {
    Warp w = warp4();
    StepOptions o;
    o.order.kind = ThreadOrder::Kind::Ascending;
    step1(prg, w, mu_a, &ev, o);
  }
  EXPECT_FALSE(ev.store_conflicts.empty());
  {
    Warp w = warp4();
    StepOptions o;
    o.order.kind = ThreadOrder::Kind::Descending;
    step1(prg, w, mu_d, nullptr, o);
  }
  EXPECT_EQ(mu_a.load(Space::Global, 0, 4), 3u);  // last ascending lane
  EXPECT_EQ(mu_d.load(Space::Global, 0, 4), 0u);  // last descending lane
}

TEST(StepRules, DisjointStoresAreOrderIndependent) {
  const Program prg(
      "t",
      {IBop{BinOp::Mul, UI(32), r2, op_reg(r1), op_imm(4)},
       ISt{Space::Global, UI(32), op_reg(r2), r1}, IExit{}});
  mem::Memory mus[3] = {mem64(), mem64(), mem64()};
  const ThreadOrder::Kind kinds[] = {ThreadOrder::Kind::Ascending,
                                     ThreadOrder::Kind::Descending,
                                     ThreadOrder::Kind::Permuted};
  for (int i = 0; i < 3; ++i) {
    Warp w = warp4();
    StepOptions o;
    o.order.kind = kinds[i];
    o.order.perm = {2, 0, 3, 1};
    StepEvents ev;
    step1(prg, w, mus[i], &ev, o);
    step1(prg, w, mus[i], &ev, o);
    EXPECT_TRUE(ev.store_conflicts.empty());
  }
  EXPECT_EQ(mus[0], mus[1]);
  EXPECT_EQ(mus[0], mus[2]);
}

TEST(StepRules, AtomAddSerializesAndCommitsValid) {
  const Program prg(
      "t", {IAtom{AtomOp::Add, Space::Global, UI(32), r2, op_imm(0),
                  op_imm(1), op_imm(0)},
            IExit{}});
  Warp w = warp4();
  auto mu = mem64();
  mu.init_u32(Space::Global, 0, 100);
  step1(prg, w, mu);
  EXPECT_EQ(mu.load(Space::Global, 0, 4), 104u);
  EXPECT_TRUE(mu.all_valid(Space::Global, 0, 4));
  // Old values observed in sequence: 100,101,102,103 in ascending order.
  std::vector<std::uint64_t> olds;
  for (const Thread& t : w.threads()) olds.push_back(t.rho.read(r2));
  std::sort(olds.begin(), olds.end());
  EXPECT_EQ(olds, (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(StepRules, AtomCas) {
  const Program prg(
      "t", {IAtom{AtomOp::Cas, Space::Global, UI(32), r2, op_imm(0),
                  op_imm(0), op_reg(r1)},
            IExit{}});
  // All lanes CAS(0 -> tid); only the first lane in order succeeds.
  Warp w = warp4();
  for (Thread& t : w.threads()) t.rho.write(r1, t.tid + 10);
  auto mu = mem64();
  mu.init_u32(Space::Global, 0, 0);
  step1(prg, w, mu);
  EXPECT_EQ(mu.load(Space::Global, 0, 4), 10u);  // lane 0 won
}

TEST(StepRules, SelpPicksByPredicate) {
  const Program prg(
      "t", {ISelp{UI(32), r2, op_imm(7), op_imm(9), p1}, IExit{}});
  Warp w = warp4();
  for (Thread& t : w.threads()) t.phi.write(p1, t.tid % 2 == 0);
  auto mu = mem64();
  step1(prg, w, mu);
  EXPECT_EQ(w.threads()[0].rho.read(r2), 7u);
  EXPECT_EQ(w.threads()[1].rho.read(r2), 9u);
}

TEST(StepRules, SharedAccessesUseBlockBank) {
  const Program prg("t", {ISt{Space::Shared, UI(32), op_imm(0), r1},
                          ILd{Space::Shared, UI(32), r2, op_imm(0)}, IExit{}});
  mem::MemSizes s;
  s.shared = 32;
  s.shared_banks = 2;
  mem::Memory mu(s);
  Warp w0 = make_warp(0, 1);
  w0.threads()[0].rho.write(r1, 11);
  Warp w1 = make_warp(4, 1);
  w1.threads()[0].rho.write(r1, 22);
  // Same block-local address 0, different blocks.
  ASSERT_TRUE(step_warp(prg, kc4(), 0, w0, mu).ok());
  ASSERT_TRUE(step_warp(prg, kc4(), 1, w1, mu).ok());
  EXPECT_EQ(mu.load(Space::Shared, mu.shared_base(0), 4), 11u);
  EXPECT_EQ(mu.load(Space::Shared, mu.shared_base(1), 4), 22u);
}

TEST(StepRules, SharedOutOfBankFaults) {
  const Program prg("t", {ISt{Space::Shared, UI(32), op_imm(30), r1}, IExit{}});
  mem::MemSizes s;
  s.shared = 32;
  s.shared_banks = 2;
  mem::Memory mu(s);
  Warp w = make_warp(0, 1);
  EXPECT_FALSE(step_warp(prg, kc4(), 0, w, mu).ok());
}

TEST(StepRules, StepAtBarOrExitThrows) {
  const Program prg("t", {IBar{}, IExit{}});
  Warp w = make_warp(0, 1);
  auto mu = mem64();
  EXPECT_THROW(step1(prg, w, mu), cac::KernelError);
  w.set_uni_pc(1);
  EXPECT_THROW(step1(prg, w, mu), cac::KernelError);
}

// --- Fig. 3 block/grid rules ---

TEST(BlockRules, EligibilityExcludesBarAndExit) {
  const Program prg("t", {IBar{}, INop{}, IExit{}});
  Grid g;
  g.blocks.push_back(Block{{Warp(0, make_warp(0, 2).threads()),
                            Warp(1, make_warp(2, 2).threads())}});
  const auto choices = eligible_choices(prg, g);
  ASSERT_EQ(choices.size(), 1u);
  EXPECT_EQ(choices[0].kind, Choice::Kind::ExecWarp);
  EXPECT_EQ(choices[0].warp, 1u);
}

TEST(BlockRules, LiftBarWhenAllWarpsAtBar) {
  const Program prg("t", {IBar{}, IExit{}});
  Machine m;
  m.grid.blocks.push_back(Block{{Warp(0, make_warp(0, 2).threads()),
                                 Warp(0, make_warp(2, 2).threads())}});
  mem::MemSizes s;
  s.shared = 16;
  m.memory = mem::Memory(s);
  m.memory.store(Space::Shared, 0, 4, 5, false);

  const auto choices = eligible_choices(prg, m.grid);
  ASSERT_EQ(choices.size(), 1u);
  EXPECT_EQ(choices[0].kind, Choice::Kind::LiftBar);

  ASSERT_TRUE(apply_choice(prg, kc4(), m, choices[0]).ok());
  EXPECT_EQ(m.grid.blocks[0].warps[0].uni_pc(), 1u);
  EXPECT_EQ(m.grid.blocks[0].warps[1].uni_pc(), 1u);
  EXPECT_TRUE(m.memory.all_valid(Space::Shared, 0, 4));  // commit(mu)
  EXPECT_TRUE(terminated(prg, m.grid));
}

TEST(BlockRules, DivergentWarpAtBarIsStuck) {
  const Program prg("t", {IBar{}, IBar{}, IExit{}});
  Grid g;
  g.blocks.push_back(
      Block{{Warp(Warp(0, make_warp(0, 1).threads()),
                  Warp(1, make_warp(1, 1).threads()))}});
  EXPECT_TRUE(is_stuck(prg, g));
  EXPECT_NE(stuck_reason(prg, g).find("barrier-divergence"),
            std::string::npos);
}

TEST(BlockRules, DivergentWarpAtExitIsStuck) {
  const Program prg("t", {IExit{}, IExit{}});
  Grid g;
  g.blocks.push_back(
      Block{{Warp(Warp(0, make_warp(0, 1).threads()),
                  Warp(1, make_warp(1, 1).threads()))}});
  EXPECT_TRUE(is_stuck(prg, g));
  EXPECT_NE(stuck_reason(prg, g).find("reconvergence"), std::string::npos);
}

TEST(BlockRules, MixedBarExitIsStuck) {
  const Program prg("t", {IBar{}, IExit{}});
  Grid g;
  g.blocks.push_back(Block{{Warp(0, make_warp(0, 2).threads()),
                            Warp(1, make_warp(2, 2).threads())}});
  EXPECT_TRUE(is_stuck(prg, g));
  EXPECT_NE(stuck_reason(prg, g).find("never lift"), std::string::npos);
}

TEST(BlockRules, GridInterleavesBlocks) {
  const Program prg("t", {INop{}, IExit{}});
  Grid g;
  g.blocks.push_back(Block{{make_warp(0, 2)}});
  g.blocks.push_back(Block{{make_warp(2, 2)}});
  const auto choices = eligible_choices(prg, g);
  ASSERT_EQ(choices.size(), 2u);
  EXPECT_EQ(choices[0].block, 0u);
  EXPECT_EQ(choices[1].block, 1u);
}

TEST(BlockRules, ApplyChoiceInvalidatesMemoizedHash) {
  // The explorers memoize Machine::hash(); the semantics kernel is the
  // one mutator and must invalidate the cache on every transition.
  const Program prg("t", {INop{}, IExit{}});
  Machine m{generate_grid(kc4()), mem64()};
  const std::uint64_t before = m.hash();  // warm the cache
  const auto choices = eligible_choices(prg, m.grid);
  ASSERT_EQ(choices.size(), 1u);
  ASSERT_TRUE(apply_choice(prg, kc4(), m, choices[0]).ok());
  EXPECT_NE(m.hash(), before);
  Machine fresh = m;
  fresh.invalidate_hash();
  EXPECT_EQ(m.hash(), fresh.hash());
}

}  // namespace
}  // namespace cac::sem
