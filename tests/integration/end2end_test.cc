// End-to-end runs of the corpus kernels through the full pipeline:
// parse -> lower -> launch -> schedule -> validate results, reproducing
// the paper's §IV walk-through and its failure cases.
#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace cac {
namespace {

using programs::VecAddLayout;
using sched::FirstChoiceScheduler;
using sched::RoundRobinScheduler;
using sched::RandomScheduler;
using sched::RunResult;

sem::Launch vecadd_launch(const ptx::Program& prg, std::uint32_t nthreads,
                          std::uint32_t size, std::uint32_t warp_size = 32) {
  const VecAddLayout L;
  sem::KernelConfig kc{{1, 1, 1}, {nthreads, 1, 1}, warp_size};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", size);
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    launch.global_u32(L.a + 4 * i, 3 * i + 1);
    launch.global_u32(L.b + 4 * i, 7 * i + 2);
  }
  return launch;
}

void expect_vecadd_output(const mem::Memory& mu, std::uint32_t size,
                          std::uint32_t nthreads) {
  const VecAddLayout L;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    const std::uint64_t c = mu.load(mem::Space::Global, L.c + 4 * i, 4);
    if (i < size) {
      EXPECT_EQ(c, (3 * i + 1) + (7 * i + 2)) << "C[" << i << "]";
    } else {
      EXPECT_EQ(c, 0u) << "C[" << i << "] must be untouched";
    }
  }
}

// --- the paper's Listing 2/3 reproduction ---

TEST(VectorAdd, Listing2TerminatesInExactly19Steps) {
  const ptx::Program prg = programs::vector_add_listing2();
  auto launch = vecadd_launch(prg, 32, 32);
  sem::Machine m = launch.machine();
  FirstChoiceScheduler s;
  const RunResult r = sched::run(prg, launch.config(), m, s);
  EXPECT_TRUE(r.terminated());
  EXPECT_EQ(r.steps, 19u);  // the paper's add_vector_terminates bound
  expect_vecadd_output(m.memory, 32, 32);
}

TEST(VectorAdd, Listing2DivergentStillTerminatesIn19Steps) {
  // size=16: half the warp takes the guard, the warp diverges at the
  // PBra and reconverges at the Sync — same 19-step bound.
  const ptx::Program prg = programs::vector_add_listing2();
  auto launch = vecadd_launch(prg, 32, 16);
  sem::Machine m = launch.machine();
  FirstChoiceScheduler s;
  const RunResult r = sched::run(prg, launch.config(), m, s);
  EXPECT_TRUE(r.terminated());
  EXPECT_EQ(r.steps, 19u);
  expect_vecadd_output(m.memory, 16, 32);
}

TEST(VectorAdd, MechanicallyLoweredMatchesListing2Result) {
  const ptx::LoweredModule mod = ptx::load_ptx(programs::vector_add_ptx());
  const ptx::Program& mech = mod.kernel("add_vector");
  const ptx::Program hand = programs::vector_add_listing2();

  for (std::uint32_t size : {32u, 16u, 0u}) {
    auto l1 = vecadd_launch(mech, 32, size);
    auto l2 = vecadd_launch(hand, 32, size);
    sem::Machine m1 = l1.machine(), m2 = l2.machine();
    FirstChoiceScheduler s1, s2;
    const RunResult r1 = sched::run(mech, l1.config(), m1, s1);
    const RunResult r2 = sched::run(hand, l2.config(), m2, s2);
    ASSERT_TRUE(r1.terminated());
    ASSERT_TRUE(r2.terminated());
    if (size != 0) {
      // 22 = 19 + the three cvta Movs the hand translation dropped.
      EXPECT_EQ(r1.steps, 22u);
      EXPECT_EQ(r2.steps, 19u);
    }
    EXPECT_EQ(m1.memory, m2.memory) << "size=" << size;
  }
}

TEST(VectorAdd, MultiBlockGrid) {
  const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  sem::KernelConfig kc{{4, 1, 1}, {8, 1, 1}, 8};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", 30);
  for (std::uint32_t i = 0; i < 32; ++i) {
    launch.global_u32(L.a + 4 * i, 3 * i + 1);
    launch.global_u32(L.b + 4 * i, 7 * i + 2);
  }
  sem::Machine m = launch.machine();
  RoundRobinScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  ASSERT_TRUE(r.terminated());
  expect_vecadd_output(m.memory, 30, 32);
}

TEST(VectorAdd, ResultIsSchedulerInvariant) {
  const ptx::Program prg = programs::vector_add_listing2();
  std::vector<mem::Memory> finals;
  for (int variant = 0; variant < 4; ++variant) {
    sem::KernelConfig kc{{2, 1, 1}, {8, 1, 1}, 4};
    const VecAddLayout L;
    sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
    launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
        .param("size", 13);
    for (std::uint32_t i = 0; i < 16; ++i) {
      launch.global_u32(L.a + 4 * i, i * i);
      launch.global_u32(L.b + 4 * i, 100 - i);
    }
    sem::Machine m = launch.machine();
    FirstChoiceScheduler fc;
    RoundRobinScheduler rr;
    RandomScheduler rnd1(123), rnd2(99991);
    sched::Scheduler* scheds[] = {&fc, &rr, &rnd1, &rnd2};
    const RunResult r = sched::run(prg, kc, m, *scheds[variant]);
    ASSERT_TRUE(r.terminated());
    finals.push_back(m.memory);
  }
  EXPECT_EQ(finals[0], finals[1]);
  EXPECT_EQ(finals[0], finals[2]);
  EXPECT_EQ(finals[0], finals[3]);
}

// --- further corpus kernels ---

TEST(XorCipher, EncryptDecryptRoundTrip) {
  const ptx::Program& prg =
      ptx::load_ptx(programs::xor_cipher_ptx()).kernel("xor_cipher");
  const VecAddLayout L;
  sem::KernelConfig kc{{1, 1, 1}, {16, 1, 1}, 8};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", 16);
  for (std::uint32_t i = 0; i < 16; ++i) {
    launch.global_u32(L.a + 4 * i, 0xbeef0000 + i);     // plaintext
    launch.global_u32(L.b + 4 * i, 0x5a5a5a5a ^ i * i); // keystream
  }
  sem::Machine m = launch.machine();
  FirstChoiceScheduler s;
  ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
  for (std::uint32_t i = 0; i < 16; ++i) {
    const std::uint64_t c = m.memory.load(mem::Space::Global, L.c + 4 * i, 4);
    EXPECT_EQ(c ^ (0x5a5a5a5au ^ i * i), 0xbeef0000u + i);
  }
}

TEST(ScanSignature, FindsAllOccurrences) {
  const ptx::Program& prg = ptx::load_ptx(programs::scan_signature_ptx())
                                .kernel("scan_signature");
  const std::string data = "abcabxcababc";
  const std::string pat = "ab";
  sem::KernelConfig kc{{1, 1, 1},
                       {static_cast<std::uint32_t>(data.size()), 1, 1},
                       4};
  sem::Launch launch(prg, kc, mem::MemSizes{256, 0, 0, 0, 1});
  launch.param("data", 0).param("pattern", 64).param("out", 128)
      .param("dlen", data.size()).param("plen", pat.size());
  launch.memory().write_init(mem::Space::Global, 0, data.data(), data.size());
  launch.memory().write_init(mem::Space::Global, 64, pat.data(), pat.size());
  sem::Machine m = launch.machine();
  RoundRobinScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  ASSERT_TRUE(r.terminated()) << r.message;
  for (std::size_t i = 0; i + pat.size() <= data.size(); ++i) {
    const bool expect_match = data.compare(i, pat.size(), pat) == 0;
    EXPECT_EQ(m.memory.load(mem::Space::Global, 128 + i, 1),
              expect_match ? 1u : 0u)
        << "position " << i;
  }
}

TEST(ReduceShared, ComputesBlockSum) {
  const ptx::Program& prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};  // two warps, real barrier
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  std::uint32_t expected = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    launch.global_u32(4 * i, i * i + 1);
    expected += i * i + 1;
  }
  sem::Machine m = launch.machine();
  RoundRobinScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  ASSERT_TRUE(r.terminated()) << r.message;
  EXPECT_EQ(m.memory.load(mem::Space::Global, 64, 4), expected);
  // Shared values were committed by the barriers along the way.
  EXPECT_TRUE(r.events.invalid_reads.empty());
}

TEST(ReduceShared, MissingBarrierReadsInvalidBytesAndMiscomputes) {
  const ptx::Program& prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  std::uint32_t expected = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    launch.global_u32(4 * i, i * i + 1);
    expected += i * i + 1;
  }
  sem::Machine m = launch.machine();
  // First-choice runs warp 0 to completion before warp 1 starts: the
  // second warp's contributions are missing from the sum.
  FirstChoiceScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  ASSERT_TRUE(r.terminated()) << r.message;
  EXPECT_NE(m.memory.load(mem::Space::Global, 64, 4), expected);
  // ...and the valid-bit discipline flags every uncommitted read.
  EXPECT_FALSE(r.events.invalid_reads.empty());
}

TEST(AtomicSum, OrderInvariantTotal) {
  const ptx::Program& prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  for (const std::uint64_t seed : {1ull, 42ull, 777ull}) {
    sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 4};
    sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 0, 0, 1});
    launch.param("arr_A", 0).param("out", 64).param("size", 8);
    for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, i + 1);
    launch.global_u32(64, 0);
    sem::Machine m = launch.machine();
    RandomScheduler s(seed);
    ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
    EXPECT_EQ(m.memory.load(mem::Space::Global, 64, 4), 36u);
    EXPECT_TRUE(m.memory.all_valid(mem::Space::Global, 64, 4));
  }
}

TEST(RaceStore, LaneOrderChangesResultAndIsFlagged) {
  const ptx::Program& prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  mem::Memory finals[2];
  for (int i = 0; i < 2; ++i) {
    sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
    launch.param("out", 0);
    sem::Machine m = launch.machine();
    FirstChoiceScheduler s;
    sem::StepOptions opts;
    opts.order.kind = i == 0 ? sem::ThreadOrder::Kind::Ascending
                             : sem::ThreadOrder::Kind::Descending;
    const RunResult r = sched::run(prg, kc, m, s, 1000, opts);
    ASSERT_TRUE(r.terminated());
    EXPECT_FALSE(r.events.store_conflicts.empty());
    finals[i] = m.memory;
  }
  EXPECT_NE(finals[0], finals[1]);
}

// --- failure cases (paper §III-8) ---

TEST(Deadlock, BarrierDivergenceIsDetected) {
  const ptx::Program& prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                                .kernel("barrier_divergence");
  sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{});
  sem::Machine m = launch.machine();
  FirstChoiceScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  EXPECT_EQ(r.status, RunResult::Status::Stuck);
  EXPECT_NE(r.message.find("barrier"), std::string::npos);
}

TEST(Deadlock, DivergentExitWithoutSyncIsDetected) {
  const ptx::Program prg = programs::divergent_exit_program();
  sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{});
  sem::Machine m = launch.machine();
  FirstChoiceScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  EXPECT_EQ(r.status, RunResult::Status::Stuck);
  EXPECT_NE(r.message.find("reconvergence"), std::string::npos);
}

TEST(Fault, OutOfBoundsKernelFaults) {
  // size says 32 but Global space only has 64 bytes.
  const ptx::Program prg = programs::vector_add_listing2();
  sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});  // tiny global
  launch.param("arr_A", 0).param("arr_B", 16).param("arr_C", 32).param(
      "size", 32);
  sem::Machine m = launch.machine();
  FirstChoiceScheduler s;
  const RunResult r = sched::run(prg, kc, m, s);
  EXPECT_EQ(r.status, RunResult::Status::Fault);
  EXPECT_NE(r.message.find("out-of-bounds"), std::string::npos);
}

}  // namespace
}  // namespace cac
