// End-to-end + for-all-inputs validation of the extended corpus
// kernels (saxpy, vectorized copy).
#include <gtest/gtest.h>

#include "check/model.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "vcgen/prove.h"

namespace cac {
namespace {

TEST(Saxpy, ConcreteRun) {
  const ptx::Program prg = ptx::load_ptx(programs::saxpy_ptx()).kernel("saxpy");
  const sem::KernelConfig kc{{2, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{256, 0, 0, 0, 1});
  launch.param("arr_X", 0).param("arr_Y", 64).param("a", 7).param("size", 13);
  for (std::uint32_t i = 0; i < 16; ++i) {
    launch.global_u32(4 * i, i + 1);        // X
    launch.global_u32(64 + 4 * i, 100 * i); // Y
  }
  sem::Machine m = launch.machine();
  sched::RoundRobinScheduler s;
  ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
  for (std::uint32_t i = 0; i < 16; ++i) {
    const std::uint64_t y = m.memory.load(mem::Space::Global, 64 + 4 * i, 4);
    EXPECT_EQ(y, i < 13 ? 7 * (i + 1) + 100 * i : 100 * i) << i;
  }
}

TEST(Saxpy, ForAllInputsIncludingScalar) {
  // Y[i] = a*X[i] + Y[i] proved for arbitrary a, X, Y and size.
  const ptx::Program prg = ptx::load_ptx(programs::saxpy_ptx()).kernel("saxpy");
  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
  vcgen::GuardedWriteSpec spec;
  spec.guard = [](sym::TermArena& a, std::uint32_t tid) {
    return a.lt(a.konst(tid, 32), a.var("size", 32), false);
  };
  spec.writes = [](sym::TermArena& a, std::uint32_t tid) {
    const std::string i = std::to_string(4 * tid);
    return std::vector<sym::SymWrite>{
        {"arr_Y", 4ull * tid, 4,
         a.add(a.mul(a.var("a", 32), a.var("arr_X[" + i + "]", 32)),
               a.var("arr_Y[" + i + "]", 32))}};
  };
  const vcgen::ProofResult r = vcgen::prove_guarded_writes(
      prg, {{1, 1, 1}, {16, 1, 1}, 16}, env, spec);
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(Saxpy, AllSchedulesSmallConfig) {
  const ptx::Program prg = ptx::load_ptx(programs::saxpy_ptx()).kernel("saxpy");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_X", 0).param("arr_Y", 32).param("a", 3).param("size", 4);
  check::Spec post;
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(4 * i, i + 1);
    launch.global_u32(32 + 4 * i, 10 * i);
    post.mem_u32(mem::Space::Global, 32 + 4 * i, 3 * (i + 1) + 10 * i);
  }
  check::ModelCheckOptions opts;
  opts.require_schedule_independence = true;
  opts.explore.partial_order_reduction = true;
  const check::Verdict v =
      check::prove_total(prg, kc, launch.machine(), post, opts);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(CopyV2, ConcreteRun) {
  const ptx::Program prg =
      ptx::load_ptx(programs::copy_v2_ptx()).kernel("copy_v2");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 0, 0, 1});
  launch.param("in", 0).param("out", 64).param("npairs", 3);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, 0xa0 + i);
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint64_t out = m.memory.load(mem::Space::Global, 64 + 4 * i, 4);
    EXPECT_EQ(out, i < 6 ? 0xa0u + i : 0u) << i;
  }
}

TEST(CopyV2, ForAllInputs) {
  const ptx::Program prg =
      ptx::load_ptx(programs::copy_v2_ptx()).kernel("copy_v2");
  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
  vcgen::GuardedWriteSpec spec;
  spec.guard = [](sym::TermArena& a, std::uint32_t tid) {
    return a.lt(a.konst(tid, 32), a.var("npairs", 32), false);
  };
  spec.writes = [](sym::TermArena& a, std::uint32_t tid) {
    const std::string lo = std::to_string(8 * tid);
    const std::string hi = std::to_string(8 * tid + 4);
    return std::vector<sym::SymWrite>{
        {"out", 8ull * tid, 4, a.var("in[" + lo + "]", 32)},
        {"out", 8ull * tid + 4, 4, a.var("in[" + hi + "]", 32)}};
  };
  const vcgen::ProofResult r = vcgen::prove_guarded_writes(
      prg, {{1, 1, 1}, {8, 1, 1}, 8}, env, spec);
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(CopyV2, RaceFreeAndLaneOrderIndependent) {
  const ptx::Program prg =
      ptx::load_ptx(programs::copy_v2_ptx()).kernel("copy_v2");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 0, 0, 1});
  launch.param("in", 0).param("out", 64).param("npairs", 4);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, i);
  const check::Verdict v = check::prove_total(
      prg, kc, launch.machine(), check::Spec{});
  EXPECT_TRUE(v.proved()) << v.detail;
}

}  // namespace
}  // namespace cac
