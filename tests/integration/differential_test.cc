// Differential testing: the concrete semantics kernel (sem/step.cc)
// against the symbolic interpreter (sym/exec.cc), through the full
// front-end round trip.
//
// Pipeline per seed:
//   random program -> emit_ptx -> parse/lower (divergence analysis +
//   Sync insertion) -> (a) concrete run, (b) per-thread symbolic
//   execution + term evaluation under the concrete inputs.
// The two interpreters were written independently; agreement on every
// register of every thread over randomized programs (ALU ops of all
// kinds, sign/width conversions, symbolic loads feeding branch
// predicates) is strong evidence both implement the same semantics —
// the executable analogue of proving the Ltac interpreter sound
// against the operational rules.
#include <gtest/gtest.h>

#include <map>

#include "common/random_program.h"
#include "ptx/emit.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "sym/exec.h"

namespace cac {
namespace {

using namespace cac::ptx;
using testing::RandomProgramOptions;
using testing::Rng;

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, ConcreteAndSymbolicAgree) {
  Rng rng(GetParam());
  RandomProgramOptions gen;
  gen.n_instrs = 12 + rng.below(20);
  const Program raw = testing::random_program(rng, gen);

  // Round trip through the text front end (fuzzes emitter+parser too).
  const Program prg = load_ptx(emit_ptx(raw)).kernel("fuzz");
  ASSERT_TRUE(validate(prg).empty());

  // Concrete run: one warp of 4 threads, randomized initial Global.
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  std::uint8_t init[64];
  for (auto& b : init) b = static_cast<std::uint8_t>(rng.next());
  launch.memory().write_init(mem::Space::Global, 0, init, sizeof init);
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  const sched::RunResult run = sched::run(prg, kc, m, s, 10000);
  ASSERT_TRUE(run.terminated()) << run.message << "\n" << to_string(prg);

  sem::ThreadVec finals;
  for (const sem::Block& b : m.grid.blocks) {
    for (const sem::Warp& w : b.warps) w.collect_threads(finals);
  }
  ASSERT_EQ(finals.size(), 4u);

  // Symbolic execution per thread + evaluation under the concrete
  // initial memory.
  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
  for (const sem::Thread& t : finals) {
    const sym::ThreadSummary summary =
        sym_execute_thread(prg, kc, t.tid, env);
    ASSERT_TRUE(summary.all_ok()) << "tid " << t.tid;

    // Bind every memory-input variable to the concrete bytes.
    std::unordered_map<std::string, std::uint64_t> assignment;
    for (std::size_t i = 0; i < arena.size(); ++i) {
      const sym::TermNode& n = arena.node(static_cast<sym::TermRef>(i));
      if (n.op != sym::Op::Var) continue;
      const std::string& name = arena.var_name(static_cast<sym::TermRef>(i));
      const auto lb = name.find('[');
      if (lb == std::string::npos) continue;
      const std::uint64_t off = std::stoull(name.substr(lb + 1));
      std::uint64_t v = 0;
      for (unsigned byte = 0; byte < n.width / 8; ++byte) {
        v |= static_cast<std::uint64_t>(init[off + byte]) << (8 * byte);
      }
      assignment[name] = v;
    }

    // Exactly one path condition must evaluate to true.
    const sym::SymPath* live = nullptr;
    for (const sym::SymPath& p : summary.paths) {
      if (arena.evaluate(p.cond, assignment) == 1) {
        ASSERT_EQ(live, nullptr) << "two live paths for tid " << t.tid;
        live = &p;
      }
    }
    ASSERT_NE(live, nullptr) << "no live path for tid " << t.tid;

    // Every register agrees.
    std::map<std::uint32_t, std::uint64_t> sym_regs;
    for (const auto& [key, term] : live->regs.rho) {
      sym_regs[key] = arena.evaluate(term, assignment);
    }
    for (const auto& [key, value] : sym_regs) {
      const auto cls = static_cast<TypeClass>(key >> 24);
      const Reg reg{cls, static_cast<std::uint8_t>((key >> 16) & 0xff),
                    static_cast<std::uint16_t>(key & 0xffff)};
      EXPECT_EQ(t.rho.read(reg), value)
          << "tid " << t.tid << " reg " << to_string(reg) << "\n"
          << to_string(prg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace cac
