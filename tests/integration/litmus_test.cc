// Memory-model litmus tests: what the formal model guarantees.
//
// The paper's semantics interleaves grid steps — i.e. memory is
// *sequentially consistent* at the granularity of warp instructions —
// and compensates for real-GPU weakness with the valid-bit discipline:
// any load that observes an unsynchronized store is flagged
// (StepEvents::invalid_reads), so proofs that depend on such loads are
// visibly suspect even though the interleaving itself is SC.  These
// litmus tests pin that down by exhaustively enumerating the outcome
// sets of the classic shapes (the analogue of herd-style litmus runs):
//
//   MP (message passing): the non-causal outcome r1=1, r2=0 is
//     unreachable in the model (SC), and every racy read is flagged;
//   SB (store buffering): r1=r2=0 is unreachable in the model — real
//     GPUs CAN produce it; the model's answer is that both loads are
//     flagged invalid on every schedule, marking the idiom as
//     unsynchronized (DESIGN.md documents this as a model boundary);
//   CoRR (read-read coherence): a thread never observes a value
//     being "un-stored".
#include <gtest/gtest.h>

#include <set>

#include "sched/explore.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace cac {
namespace {

using namespace cac::ptx;

const Reg r1{TypeClass::UI, 32, 1}, r2{TypeClass::UI, 32, 2},
    rone{TypeClass::UI, 32, 3};

constexpr std::uint64_t X = 0, Y = 4;

/// Collect (r1, r2) of the observer thread (global tid `obs`) over all
/// reachable terminal states, plus whether any invalid read can occur.
std::set<std::pair<std::uint64_t, std::uint64_t>> outcomes(
    const Program& prg, std::uint32_t obs_tid, bool* all_finals_ok = nullptr) {
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.global_u32(X, 0);
  launch.global_u32(Y, 0);
  const sched::ExploreResult r =
      sched::explore(prg, kc, launch.machine(), {});
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.all_schedules_terminate());
  if (all_finals_ok) *all_finals_ok = true;

  std::set<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const sem::Machine& m : r.finals()) {
    for (const sem::Block& b : m.grid.blocks) {
      for (const sem::Warp& w : b.warps) {
        for (const sem::Thread& t : w.threads()) {
          if (t.tid == obs_tid) {
            out.emplace(t.rho.read(r1), t.rho.read(r2));
          }
        }
      }
    }
  }
  return out;
}

/// Both blocks run the same code; dispatch on ctaid.
Program mp_program() {
  // block 0: X := 1; Y := 1          block 1: r1 := Y; r2 := X
  const Pred p{1};
  return Program(
      "mp",
      {
          /*0*/ IMov{rone, op_imm(1)},
          /*1*/ IMov{r1, op_sreg(SregKind::CtaId, Dim::X)},
          /*2*/ ISetp{CmpOp::Ne, UI(32), p, op_reg(r1), op_imm(0)},
          /*3*/ IPBra{p, false, 7},
          /*4*/ ISt{Space::Global, UI(32), op_imm(X), rone},
          /*5*/ ISt{Space::Global, UI(32), op_imm(Y), rone},
          /*6*/ IExit{},
          /*7*/ ILd{Space::Global, UI(32), r1, op_imm(Y)},
          /*8*/ ILd{Space::Global, UI(32), r2, op_imm(X)},
          /*9*/ IExit{},
      });
}

TEST(Litmus, MessagePassingIsCausal) {
  const auto got = outcomes(mp_program(), 1);
  const std::set<std::pair<std::uint64_t, std::uint64_t>> expected{
      {0, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(got, expected);
  // In particular the non-causal (r1=1, r2=0) never appears.
  EXPECT_FALSE(got.count({1, 0}));
}

Program sb_program() {
  // block 0: X := 1; r1 := Y         block 1: Y := 1; r1 := X
  const Pred p{1};
  return Program(
      "sb",
      {
          /*0*/ IMov{rone, op_imm(1)},
          /*1*/ IMov{r1, op_sreg(SregKind::CtaId, Dim::X)},
          /*2*/ ISetp{CmpOp::Ne, UI(32), p, op_reg(r1), op_imm(0)},
          /*3*/ IPBra{p, false, 7},
          /*4*/ ISt{Space::Global, UI(32), op_imm(X), rone},
          /*5*/ ILd{Space::Global, UI(32), r1, op_imm(Y)},
          /*6*/ IExit{},
          /*7*/ ISt{Space::Global, UI(32), op_imm(Y), rone},
          /*8*/ ILd{Space::Global, UI(32), r1, op_imm(X)},
          /*9*/ IExit{},
      });
}

TEST(Litmus, StoreBufferingIsSCInTheModel) {
  // Gather (block0.r1, block1.r1) over all schedules.
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  sem::Launch launch(sb_program(), kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.global_u32(X, 0);
  launch.global_u32(Y, 0);
  const sched::ExploreResult r =
      sched::explore(sb_program(), kc, launch.machine(), {});
  ASSERT_TRUE(r.exhaustive);
  std::set<std::pair<std::uint64_t, std::uint64_t>> got;
  for (const sem::Machine& m : r.finals()) {
    std::uint64_t v[2] = {};
    for (const sem::Block& b : m.grid.blocks) {
      for (const sem::Warp& w : b.warps) {
        for (const sem::Thread& t : w.threads()) v[t.tid] = t.rho.read(r1);
      }
    }
    got.emplace(v[0], v[1]);
  }
  // SC forbids (0,0); real GPUs allow it — the model marks the idiom
  // through invalid-read flags instead (checked below).
  const std::set<std::pair<std::uint64_t, std::uint64_t>> expected{
      {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(got, expected);
}

TEST(Litmus, RacyReadsAreFlaggedOnEverySchedule) {
  // Whenever SB's load observes the other block's store, the byte is
  // invalid (plain global stores never validate) — run a few schedules
  // and check the flag fires exactly when a 1 is read.
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sem::Launch launch(sb_program(), kc, mem::MemSizes{16, 0, 0, 0, 1});
    launch.global_u32(X, 0);
    launch.global_u32(Y, 0);
    sem::Machine m = launch.machine();
    sched::RandomScheduler s(seed);
    const sched::RunResult rr = sched::run(sb_program(), kc, m, s);
    ASSERT_TRUE(rr.terminated());
    bool saw_one = false;
    for (const sem::Block& b : m.grid.blocks) {
      for (const sem::Warp& w : b.warps) {
        for (const sem::Thread& t : w.threads()) {
          saw_one |= t.rho.read(r1) == 1;
        }
      }
    }
    EXPECT_EQ(saw_one, !rr.events.invalid_reads.empty()) << "seed " << seed;
  }
}

TEST(Litmus, ReadReadCoherence) {
  // Observer reads X twice; writer stores 1 once.  Outcome (1,0) —
  // the value "un-storing" itself — must be unreachable.
  const Pred p{1};
  const Program prg(
      "corr",
      {
          /*0*/ IMov{rone, op_imm(1)},
          /*1*/ IMov{r1, op_sreg(SregKind::CtaId, Dim::X)},
          /*2*/ ISetp{CmpOp::Ne, UI(32), p, op_reg(r1), op_imm(0)},
          /*3*/ IPBra{p, false, 6},
          /*4*/ ISt{Space::Global, UI(32), op_imm(X), rone},
          /*5*/ IExit{},
          /*6*/ ILd{Space::Global, UI(32), r1, op_imm(X)},
          /*7*/ ILd{Space::Global, UI(32), r2, op_imm(X)},
          /*8*/ IExit{},
      });
  const auto got = outcomes(prg, 1);
  const std::set<std::pair<std::uint64_t, std::uint64_t>> expected{
      {0, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(got.count({1, 0}));
}

}  // namespace
}  // namespace cac
