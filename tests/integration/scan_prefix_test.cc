// Hillis–Steele inclusive scan: concrete runs, all-schedules proof,
// race-freedom, and the block-level symbolic prefix-sum theorem.
#include <gtest/gtest.h>

#include "check/model.h"
#include "check/race.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "vcgen/prove.h"

namespace cac {
namespace {

sem::Launch scan_launch(const ptx::Program& prg, const sem::KernelConfig& kc,
                        const std::vector<std::uint32_t>& a) {
  sem::Launch launch(prg, kc,
                     mem::MemSizes{8ull * a.size() + 8, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 4ull * a.size());
  for (std::uint32_t i = 0; i < a.size(); ++i) launch.global_u32(4 * i, a[i]);
  return launch;
}

TEST(ScanPrefix, ConcreteInclusiveSums) {
  const ptx::Program prg =
      ptx::load_ptx(programs::scan_prefix_ptx()).kernel("scan_prefix");
  const std::vector<std::uint32_t> a{5, 3, 8, 1, 9, 2, 6, 7};
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};  // two warps
  sem::Machine m = scan_launch(prg, kc, a).machine();
  sched::RoundRobinScheduler s;
  ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    acc += a[i];
    EXPECT_EQ(m.memory.load(mem::Space::Global, 4 * (a.size() + i), 4), acc)
        << "prefix " << i;
  }
}

TEST(ScanPrefix, AllSchedulesProofSmallBlock) {
  const ptx::Program prg =
      ptx::load_ptx(programs::scan_prefix_ptx()).kernel("scan_prefix");
  const std::vector<std::uint32_t> a{2, 7, 1, 8};
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // two warps
  sem::Launch launch = scan_launch(prg, kc, a);
  check::Spec post;
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    acc += a[i];
    post.mem_u32(mem::Space::Global, 16 + 4 * i, acc);
  }
  check::ModelCheckOptions opts;
  opts.require_schedule_independence = true;
  opts.explore.partial_order_reduction = true;
  const check::Verdict v =
      check::prove_total(prg, kc, launch.machine(), post, opts);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ScanPrefix, RaceFree) {
  const ptx::Program prg =
      ptx::load_ptx(programs::scan_prefix_ptx()).kernel("scan_prefix");
  const std::vector<std::uint32_t> a{1, 2, 3, 4, 5, 6, 7, 8};
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Machine m = scan_launch(prg, kc, a).machine();
  sched::RoundRobinScheduler s;
  const check::RaceReport r = check::detect_races(prg, kc, m, s);
  EXPECT_TRUE(r.run.terminated());
  EXPECT_FALSE(r.racy()) << r.summary();
}

TEST(ScanPrefix, BlockSymbolicPrefixTheorem) {
  // out[i] is the exact Hillis–Steele fold over arbitrary A.
  const ptx::Program prg =
      ptx::load_ptx(programs::scan_prefix_ptx()).kernel("scan_prefix");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
  const vcgen::ProofResult r = vcgen::prove_block_writes(
      prg, kc, env, [](sym::TermArena& a) {
        std::vector<sym::TermRef> v;
        for (unsigned i = 0; i < 8; ++i) {
          v.push_back(a.var("arr_A[" + std::to_string(4 * i) + "]", 32));
        }
        for (unsigned offset = 1; offset < 8; offset <<= 1) {
          std::vector<sym::TermRef> w = v;
          for (unsigned k = offset; k < 8; ++k) {
            w[k] = a.add(v[k], v[k - offset]);
          }
          v = w;
        }
        std::vector<sym::SymWrite> writes;
        for (unsigned i = 0; i < 8; ++i) {
          writes.push_back({"out", 4ull * i, 4, v[i]});
        }
        return writes;
      });
  EXPECT_TRUE(r.proved) << r.detail;

  // Sanity: the term really denotes the inclusive sum.
  std::unordered_map<std::string, std::uint64_t> env_vals;
  for (unsigned i = 0; i < 8; ++i) {
    env_vals["arr_A[" + std::to_string(4 * i) + "]"] = i + 1;
  }
  // Rebuild the lane-7 term and evaluate: 1+2+...+8 = 36.
  std::vector<sym::TermRef> v;
  for (unsigned i = 0; i < 8; ++i) {
    v.push_back(arena.var("arr_A[" + std::to_string(4 * i) + "]", 32));
  }
  for (unsigned offset = 1; offset < 8; offset <<= 1) {
    std::vector<sym::TermRef> w = v;
    for (unsigned k = offset; k < 8; ++k) w[k] = arena.add(v[k], v[k - offset]);
    v = w;
  }
  EXPECT_EQ(arena.evaluate(v[7], env_vals), 36u);
}

}  // namespace
}  // namespace cac
