// Warp primitives (vote / shfl): concrete semantics, PTX round trip,
// the butterfly reduction, and its block-level symbolic proof.
#include <gtest/gtest.h>

#include "check/model.h"
#include "programs/corpus.h"
#include "ptx/emit.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "sym/block_exec.h"
#include "vcgen/prove.h"

namespace cac {
namespace {

using namespace cac::ptx;

sem::Machine run_one_warp(const Program& prg, std::uint32_t n,
                          mem::MemSizes sizes,
                          const std::vector<std::uint32_t>& global_words) {
  const sem::KernelConfig kc{{1, 1, 1}, {n, 1, 1}, n};
  sem::Launch launch(prg, kc, sizes);
  for (std::uint32_t i = 0; i < global_words.size(); ++i) {
    launch.global_u32(4 * i, global_words[i]);
  }
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  EXPECT_TRUE(sched::run(prg, kc, m, s).terminated());
  return m;
}

TEST(Vote, AllAnyBallot) {
  const Program prg = load_ptx(R"(
.visible .entry f() {
  .reg .pred %p<5>;
  .reg .u32 %r<6>;
  mov.u32 %r1, %tid.x;
  setp.lt.u32 %p1, %r1, 2;
  vote.any.pred %p2, %p1;
  vote.all.pred %p3, %p1;
  vote.ballot.b32 %r2, %p1;
  selp.b32 %r3, 1, 0, %p2;
  selp.b32 %r4, 1, 0, %p3;
  st.global.u32 [0], %r3;
  st.global.u32 [4], %r4;
  st.global.u32 [8], %r2;
  ret;
})").kernel("f");
  const sem::Machine m = run_one_warp(prg, 4, mem::MemSizes{32, 0, 0, 0, 1},
                                      {});
  EXPECT_EQ(m.memory.load(mem::Space::Global, 0, 4), 1u);   // any
  EXPECT_EQ(m.memory.load(mem::Space::Global, 4, 4), 0u);   // not all
  EXPECT_EQ(m.memory.load(mem::Space::Global, 8, 4), 0b0011u);  // ballot
}

TEST(Shfl, ModesExchangeLanes) {
  const Program prg = load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<7>;
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, 4;
  shfl.idx.b32 %r3, %r2, 2;
  shfl.up.b32 %r4, %r2, 1;
  shfl.down.b32 %r5, %r2, 1;
  shfl.bfly.b32 %r6, %r2, 3;
  mul.lo.u32 %r1, %r1, 16;
  st.global.u32 [%r1], %r3;
  ret;
})").kernel("f");
  // 4 lanes, value = 16*lane.  idx 2 -> everyone gets 32.
  const sem::Machine m = run_one_warp(prg, 4, mem::MemSizes{64, 0, 0, 0, 1},
                                      {});
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(m.memory.load(mem::Space::Global, 16 * lane, 4), 32u);
  }
}

TEST(Shfl, UpDownClampAtEdges) {
  const Program prg = load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<6>;
  mov.u32 %r1, %tid.x;
  shfl.up.b32 %r2, %r1, 1;
  shfl.down.b32 %r3, %r1, 1;
  mul.lo.u32 %r4, %r1, 8;
  st.global.u32 [%r4], %r2;
  add.u32 %r4, %r4, 4;
  st.global.u32 [%r4], %r3;
  ret;
})").kernel("f");
  const sem::Machine m = run_one_warp(prg, 4, mem::MemSizes{64, 0, 0, 0, 1},
                                      {});
  // up: lane 0 keeps its own value; down: last lane keeps its own.
  EXPECT_EQ(m.memory.load(mem::Space::Global, 0, 4), 0u);    // lane0 up
  EXPECT_EQ(m.memory.load(mem::Space::Global, 8, 4), 0u);    // lane1 up = 0
  EXPECT_EQ(m.memory.load(mem::Space::Global, 4, 4), 1u);    // lane0 down
  EXPECT_EQ(m.memory.load(mem::Space::Global, 28, 4), 3u);   // lane3 down=self
}

TEST(WarpReduce, ConcreteSum) {
  const Program prg =
      load_ptx(programs::warp_reduce_shfl_ptx()).kernel("warp_reduce");
  std::vector<std::uint32_t> a{3, 1, 4, 1, 5, 9, 2, 6};
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 8};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, a[i]);
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
  EXPECT_EQ(m.memory.load(mem::Space::Global, 32, 4), 31u);
}

TEST(WarpReduce, BlockSymbolicProof) {
  // The butterfly sum proved for arbitrary inputs — no Shared memory,
  // no barriers, pure warp-level data exchange.
  const Program prg =
      load_ptx(programs::warp_reduce_shfl_ptx()).kernel("warp_reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 8};
  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
  const vcgen::ProofResult r = vcgen::prove_block_writes(
      prg, kc, env, [](sym::TermArena& a) {
        std::vector<sym::TermRef> v;
        for (unsigned i = 0; i < 8; ++i) {
          v.push_back(a.var("arr_A[" + std::to_string(4 * i) + "]", 32));
        }
        for (unsigned mask : {4u, 2u, 1u}) {
          std::vector<sym::TermRef> w(8);
          for (unsigned k = 0; k < 8; ++k) {
            w[k] = a.add(v[k], v[k ^ mask]);
          }
          v = w;
        }
        return std::vector<sym::SymWrite>{{"out", 0, 4, v[0]}};
      });
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(WarpReduce, AllSchedulesTotalCorrectness) {
  const Program prg =
      load_ptx(programs::warp_reduce_shfl_ptx()).kernel("warp_reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 8};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  std::uint32_t sum = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    launch.global_u32(4 * i, i * i + 2);
    sum += i * i + 2;
  }
  check::Spec post;
  post.mem_u32(mem::Space::Global, 32, sum);
  const check::Verdict v =
      check::prove_total(prg, kc, launch.machine(), post);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(WarpPrimitives, DivergentVoteFaults) {
  const Program prg = load_ptx(R"(
.visible .entry f() {
  .reg .pred %p<3>;
  .reg .u32 %r<3>;
  mov.u32 %r1, %tid.x;
  setp.eq.u32 %p1, %r1, 0;
  @%p1 bra SKIP;
  vote.any.pred %p2, %p1;
SKIP:
  ret;
})", ptx::LowerOptions{.insert_syncs = false}).kernel("f");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  sched::FirstChoiceScheduler s;
  const sched::RunResult r = sched::run(prg, kc, m, s);
  EXPECT_EQ(r.status, sched::RunResult::Status::Fault);
  EXPECT_NE(r.message.find("divergent"), std::string::npos);
}

TEST(WarpPrimitives, RoundTripThroughEmitter) {
  const Program prg =
      load_ptx(programs::warp_reduce_shfl_ptx()).kernel("warp_reduce");
  ptx::LowerOptions no_sync;
  no_sync.insert_syncs = false;
  const Program back =
      load_ptx(emit_ptx(prg), no_sync).kernel("warp_reduce");
  EXPECT_EQ(back, prg);
}

TEST(WarpPrimitives, PerThreadEngineRejectsThem) {
  const Program prg =
      load_ptx(programs::warp_reduce_shfl_ptx()).kernel("warp_reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 8};
  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
  const sym::ThreadSummary s = sym_execute_thread(prg, kc, 0, env);
  EXPECT_FALSE(s.all_ok());
}

}  // namespace
}  // namespace cac
