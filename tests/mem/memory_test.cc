#include "mem/memory.h"

#include <gtest/gtest.h>

namespace cac::mem {
namespace {

MemSizes sizes() {
  MemSizes s;
  s.global = 64;
  s.constant = 16;
  s.shared = 32;
  s.param = 16;
  s.shared_banks = 2;
  return s;
}

TEST(Memory, FreshBytesAreZeroAndInvalid) {
  const Memory m(sizes());
  EXPECT_EQ(m.load(Space::Global, 0, 8), 0u);
  EXPECT_FALSE(m.all_valid(Space::Global, 0, 1));
}

TEST(Memory, LittleEndianRoundTrip) {
  Memory m(sizes());
  m.store(Space::Global, 4, 4, 0xdeadbeef, false);
  EXPECT_EQ(m.load(Space::Global, 4, 4), 0xdeadbeefu);
  EXPECT_EQ(m.load(Space::Global, 4, 1), 0xefu);  // low byte first
  EXPECT_EQ(m.load(Space::Global, 7, 1), 0xdeu);
}

TEST(Memory, StoreRespectsWidth) {
  Memory m(sizes());
  m.store(Space::Global, 0, 8, ~0ull, false);
  m.store(Space::Global, 2, 2, 0, false);
  EXPECT_EQ(m.load(Space::Global, 0, 8), 0xffffffff0000ffffull);
}

TEST(Memory, ValidBitPolicyIsCallerChosen) {
  Memory m(sizes());
  m.store(Space::Global, 0, 4, 1, /*valid=*/false);
  EXPECT_FALSE(m.all_valid(Space::Global, 0, 4));
  m.store(Space::Global, 0, 4, 1, /*valid=*/true);   // atomic-style
  EXPECT_TRUE(m.all_valid(Space::Global, 0, 4));
}

TEST(Memory, InitWritesAreValid) {
  Memory m(sizes());
  m.init_u32(Space::Global, 8, 42);
  EXPECT_TRUE(m.all_valid(Space::Global, 8, 4));
  EXPECT_EQ(m.load(Space::Global, 8, 4), 42u);
  m.init_u64(Space::Param, 0, 0x1122334455667788ull);
  EXPECT_EQ(m.load(Space::Param, 0, 8), 0x1122334455667788ull);
}

TEST(Memory, Bounds) {
  const Memory m(sizes());
  EXPECT_TRUE(m.in_bounds(Space::Global, 60, 4));
  EXPECT_FALSE(m.in_bounds(Space::Global, 61, 4));
  EXPECT_FALSE(m.in_bounds(Space::Global, 64, 1));
  EXPECT_TRUE(m.in_bounds(Space::Global, 64, 0));
  EXPECT_FALSE(m.in_bounds(Space::Const, ~0ull, 1));  // overflow-safe
}

TEST(Memory, OutOfBoundsAccessThrows) {
  Memory m(sizes());
  EXPECT_THROW((void)m.load(Space::Const, 16, 1), cac::KernelError);
  EXPECT_THROW(m.store(Space::Global, 63, 4, 0, false), cac::KernelError);
}

TEST(Memory, SharedBanksAreIndependent) {
  Memory m(sizes());
  EXPECT_EQ(m.shared_size(), 32u);
  EXPECT_EQ(m.shared_base(0), 0u);
  EXPECT_EQ(m.shared_base(1), 32u);
  m.store(Space::Shared, m.shared_base(0) + 4, 4, 7, false);
  EXPECT_EQ(m.load(Space::Shared, m.shared_base(1) + 4, 4), 0u);
}

TEST(Memory, CommitSharedIsPerBlock) {
  Memory m(sizes());
  m.store(Space::Shared, m.shared_base(0), 4, 1, false);
  m.store(Space::Shared, m.shared_base(1), 4, 2, false);
  m.commit_shared(0);
  EXPECT_TRUE(m.all_valid(Space::Shared, m.shared_base(0), 4));
  EXPECT_FALSE(m.all_valid(Space::Shared, m.shared_base(1), 4));
  m.commit_shared(1);
  EXPECT_TRUE(m.all_valid(Space::Shared, m.shared_base(1), 4));
}

TEST(Memory, EqualityAndHashTrackValidBits) {
  Memory a(sizes()), b(sizes());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  a.store(Space::Global, 0, 1, 5, false);
  b.store(Space::Global, 0, 1, 5, true);  // same byte, different valid bit
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
  a.store(Space::Global, 0, 1, 5, true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Memory, HashDistinguishesSpaces) {
  Memory a(sizes()), b(sizes());
  a.store(Space::Global, 0, 1, 1, false);
  b.store(Space::Const, 0, 1, 1, false);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Memory, SetAllValid) {
  Memory m(sizes());
  m.set_all_valid(Space::Global, true);
  EXPECT_TRUE(m.all_valid(Space::Global, 0, 64));
}

TEST(Memory, DumpMarksInvalidBytes) {
  Memory m(sizes());
  m.init_u32(Space::Global, 0, 0xff);
  m.store(Space::Global, 4, 1, 0xab, false);
  const std::string d = m.dump(Space::Global, 0, 5);
  EXPECT_NE(d.find("ff "), std::string::npos);
  EXPECT_NE(d.find("ab!"), std::string::npos);
}

TEST(Memory, ZeroSizedSpacesWork) {
  const Memory m{MemSizes{}};
  EXPECT_FALSE(m.in_bounds(Space::Global, 0, 1));
  EXPECT_TRUE(m.in_bounds(Space::Global, 0, 0));
}

}  // namespace
}  // namespace cac::mem
