// Integration tests for the verification server: concurrent
// submissions, in-flight dedup, cache-hit replay, journal recovery,
// and protocol error handling — all in-process over a real AF_UNIX
// socket.
#include "front/serve.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "front/cache.h"

namespace cac::front {
namespace {

std::string data(const std::string& name) {
  std::ifstream in(std::string(CAC_SOURCE_DIR) + "/tests/data/" + name,
                   std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CheckRequest racy_check(std::uint32_t grid_x) {
  CheckRequest r;
  r.file = "racy.ptx";
  r.source = data("racy.ptx");
  r.launch.grid = {grid_x, 1, 1};
  r.launch.block = {1, 1, 1};
  r.launch.warp_size = 1;
  r.launch.global_bytes = 64;
  r.launch.params = {{"out", 0}};
  r.explore.max_depth = 1u << 20;
  return r;
}

/// A running server on a fresh socket (and optional state dir) that
/// tears itself down.
struct TestServer {
  explicit TestServer(bool persistent, std::uint32_t workers = 2) {
    dir = std::filesystem::temp_directory_path() /
          ("cac_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    std::filesystem::create_directories(dir);
    ServeOptions opts;
    opts.unix_path = dir / "sock";
    opts.workers = workers;
    if (persistent) opts.state_dir = dir / "state";
    server = std::make_unique<Server>(std::move(opts));
    server->start();
  }

  ~TestServer() {
    server->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  Client connect() { return Client::connect(dir / "sock"); }

  std::filesystem::path dir;
  std::unique_ptr<Server> server;
  static inline int counter = 0;
};

TEST(Serve, PingAndStats) {
  TestServer ts(false);
  Client client = ts.connect();
  const Client::Reply pong = client.call(R"({"command":"ping"})");
  EXPECT_EQ(pong.doc.str_or("status", ""), "ok");
  EXPECT_TRUE(pong.doc.bool_or("pong", false));
  const Client::Reply stats = client.call(R"({"command":"stats"})");
  EXPECT_EQ(stats.doc.str_or("status", ""), "ok");
  EXPECT_EQ(stats.doc.get("stats")->u64_or("requests", 99), 0u);
}

TEST(Serve, ColdRunThenByteIdenticalCacheHit) {
  TestServer ts(false);
  Client client = ts.connect();
  const std::string payload = to_json(Request{racy_check(2)});
  const Client::Reply cold = client.call(payload);
  ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
  EXPECT_FALSE(cold.doc.bool_or("cached", true));
  const Client::Reply warm = client.call(payload);
  ASSERT_EQ(warm.doc.str_or("status", ""), "ok");
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  // The cached response replays the original results bytes.
  const auto body = [](const std::string& raw) {
    const std::size_t at = raw.find("\"results\":");
    return raw.substr(at);
  };
  EXPECT_EQ(body(cold.raw), body(warm.raw));
  const ServeStats s = ts.server->stats();
  EXPECT_EQ(s.jobs_run, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
}

TEST(Serve, EquivalentSourcesShareACacheEntry) {
  TestServer ts(false);
  Client client = ts.connect();
  CheckRequest a = racy_check(2);
  CheckRequest b = racy_check(2);
  b.source = "// cosmetic comment\n" + b.source + "\n";
  b.file = "renamed.ptx";
  ASSERT_EQ(cache_key(Request{a}), cache_key(Request{b}));
  client.call(to_json(Request{a}));
  const Client::Reply warm = client.call(to_json(Request{b}));
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  EXPECT_EQ(ts.server->stats().jobs_run, 1u);
}

TEST(Serve, ConcurrentIdenticalSubmissionsRunOnce) {
  TestServer ts(true, 4);
  // grid 4 explores long enough (~1s) that all clients overlap one
  // in-flight execution.
  const std::string payload = to_json(Request{racy_check(4)});
  constexpr int kClients = 6;
  std::vector<std::string> bodies(kClients);
  std::vector<int> codes(kClients, -1);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        Client client = ts.connect();
        const Client::Reply r = client.call(payload);
        const std::size_t at = r.raw.find("\"results\":");
        bodies[i] = at == std::string::npos ? r.raw : r.raw.substr(at);
        codes[i] = static_cast<int>(r.doc.u64_or("exit_code", 99));
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(bodies[i], bodies[0]) << "client " << i;
    EXPECT_EQ(codes[i], codes[0]);
  }
  const ServeStats s = ts.server->stats();
  EXPECT_EQ(s.jobs_run, 1u);  // dedup + cache absorbed the rest
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.jobs_deduped + s.cache.hits,
            static_cast<std::uint64_t>(kClients - 1));
}

TEST(Serve, DistinctJobsRunConcurrently) {
  TestServer ts(false, 4);
  std::vector<std::uint32_t> grids = {2, 3};
  std::vector<std::string> statuses(grids.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < grids.size(); ++i) {
    threads.emplace_back([&, i] {
      Client client = ts.connect();
      const Client::Reply r = client.call(to_json(Request{racy_check(grids[i])}));
      statuses[i] = r.doc.str_or("status", "");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(statuses[0], "ok");
  EXPECT_EQ(statuses[1], "ok");
  EXPECT_EQ(ts.server->stats().jobs_run, 2u);
}

TEST(Serve, ProgressEventsStream) {
  TestServer ts(false);
  Client client = ts.connect();
  std::string payload = to_json(Request{racy_check(3)});
  payload.insert(payload.size() - 1, ",\"progress\":50");
  std::uint64_t events = 0;
  std::uint64_t last_states = 0;
  const Client::Reply r = client.call(payload, [&](const JsonValue& ev) {
    if (ev.str_or("event", "") == "progress") {
      ++events;
      last_states = ev.u64_or("states", 0);
    }
  });
  EXPECT_EQ(r.doc.str_or("status", ""), "ok");
  EXPECT_GT(events, 0u);
  EXPECT_GT(last_states, 0u);
}

TEST(Serve, MalformedPayloadIsError) {
  TestServer ts(false);
  Client client = ts.connect();
  const Client::Reply r = client.call("{not json");
  EXPECT_EQ(r.doc.str_or("status", ""), "error");
  EXPECT_EQ(r.doc.u64_or("exit_code", 0), 2u);
  // The connection survives an error response.
  EXPECT_EQ(client.call(R"({"command":"ping"})").doc.str_or("status", ""),
            "ok");
}

TEST(Serve, BadPtxIsUsageError) {
  TestServer ts(false);
  Client client = ts.connect();
  CheckRequest req = racy_check(2);
  req.source = "definitely not ptx";
  const Client::Reply r = client.call(to_json(Request{req}));
  EXPECT_EQ(r.doc.str_or("status", ""), "error");
  EXPECT_EQ(r.doc.u64_or("exit_code", 0), 2u);
}

TEST(Serve, VerdictsPersistAcrossRestart) {
  std::filesystem::path dir;
  std::string cold_body;
  const std::string payload = to_json(Request{racy_check(2)});
  {
    TestServer ts(true);
    dir = ts.dir;
    Client client = ts.connect();
    const Client::Reply cold = client.call(payload);
    ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
    cold_body = cold.raw.substr(cold.raw.find("\"results\":"));
    // Keep the state dir alive past the TestServer destructor.
    ServeOptions opts;
    opts.unix_path = dir / "sock2";
    opts.state_dir = dir / "state";
    ts.server->stop();
    Server second(std::move(opts));
    second.start();
    Client c2 = Client::connect(dir / "sock2");
    const Client::Reply warm = c2.call(payload);
    EXPECT_TRUE(warm.doc.bool_or("cached", false));
    EXPECT_EQ(warm.raw.substr(warm.raw.find("\"results\":")), cold_body);
    EXPECT_GE(second.stats().cache.disk_hits, 1u);
    second.stop();
  }
}

TEST(Serve, OrphanedJournalIsRecovered) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cac_serve_test_orphan_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir / "state" / "jobs");
  // Plant a journal entry as a SIGKILLed server would leave it.
  const Request req{racy_check(2)};
  const CacheKey key = cache_key(req);
  {
    std::ofstream out(dir / "state" / "jobs" / (key.hex() + ".req.json"));
    out << to_json(req);
  }
  ServeOptions opts;
  opts.unix_path = dir / "sock";
  opts.state_dir = dir / "state";
  Server server(std::move(opts));
  server.start();
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  // The recovered job completes and lands in the cache; a submission
  // of the same request is then served without a fresh execution.
  Client client = Client::connect(dir / "sock");
  const Client::Reply r = client.call(to_json(req));
  EXPECT_EQ(r.doc.str_or("status", ""), "ok");
  server.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace cac::front
