// Integration tests for the verification server: concurrent
// submissions, in-flight dedup, cache-hit replay, journal recovery,
// and protocol error handling — all in-process over a real AF_UNIX
// socket.
#include "front/serve.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "dist/transport.h"
#include "dist/wire.h"
#include "front/cache.h"
#include "support/fault.h"

namespace cac::front {
namespace {

std::string data(const std::string& name) {
  std::ifstream in(std::string(CAC_SOURCE_DIR) + "/tests/data/" + name,
                   std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CheckRequest racy_check(std::uint32_t grid_x) {
  CheckRequest r;
  r.file = "racy.ptx";
  r.source = data("racy.ptx");
  r.launch.grid = {grid_x, 1, 1};
  r.launch.block = {1, 1, 1};
  r.launch.warp_size = 1;
  r.launch.global_bytes = 64;
  r.launch.params = {{"out", 0}};
  r.explore.max_depth = 1u << 20;
  return r;
}

/// A running server on a fresh socket (and optional state dir) that
/// tears itself down.
struct TestServer {
  explicit TestServer(bool persistent, std::uint32_t workers = 2,
                      std::size_t queue_limit = 64) {
    dir = std::filesystem::temp_directory_path() /
          ("cac_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    std::filesystem::create_directories(dir);
    ServeOptions opts;
    opts.unix_path = dir / "sock";
    opts.workers = workers;
    opts.queue_limit = queue_limit;
    if (persistent) opts.state_dir = dir / "state";
    server = std::make_unique<Server>(std::move(opts));
    server->start();
  }

  ~TestServer() {
    server->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  Client connect() { return Client::connect(dir / "sock"); }

  std::filesystem::path dir;
  std::unique_ptr<Server> server;
  static inline int counter = 0;
};

TEST(Serve, PingAndStats) {
  TestServer ts(false);
  Client client = ts.connect();
  const Client::Reply pong = client.call(R"({"command":"ping"})");
  EXPECT_EQ(pong.doc.str_or("status", ""), "ok");
  EXPECT_TRUE(pong.doc.bool_or("pong", false));
  const Client::Reply stats = client.call(R"({"command":"stats"})");
  EXPECT_EQ(stats.doc.str_or("status", ""), "ok");
  EXPECT_EQ(stats.doc.get("stats")->u64_or("requests", 99), 0u);
}

TEST(Serve, ColdRunThenByteIdenticalCacheHit) {
  TestServer ts(false);
  Client client = ts.connect();
  const std::string payload = to_json(Request{racy_check(2)});
  const Client::Reply cold = client.call(payload);
  ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
  EXPECT_FALSE(cold.doc.bool_or("cached", true));
  const Client::Reply warm = client.call(payload);
  ASSERT_EQ(warm.doc.str_or("status", ""), "ok");
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  // The cached response replays the original results bytes.
  const auto body = [](const std::string& raw) {
    const std::size_t at = raw.find("\"results\":");
    return raw.substr(at);
  };
  EXPECT_EQ(body(cold.raw), body(warm.raw));
  const ServeStats s = ts.server->stats();
  EXPECT_EQ(s.jobs_run, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
}

TEST(Serve, LintPerfVerdictIsCachedByteIdentically) {
  TestServer ts(false);
  Client client = ts.connect();
  LintRequest req;
  req.file = "strided_vecadd.ptx";
  std::ifstream in(std::string(CAC_SOURCE_DIR) +
                       "/examples/buggy/perf/strided_vecadd.ptx",
                   std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  req.source = ss.str();
  req.perf = true;
  const std::string payload = to_json(Request{req});
  const Client::Reply cold = client.call(payload);
  ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
  EXPECT_FALSE(cold.doc.bool_or("cached", true));
  EXPECT_EQ(cold.doc.u64_or("exit_code", 99), 0u);  // warnings only
  const Client::Reply warm = client.call(payload);
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  const auto body = [](const std::string& raw) {
    const std::size_t at = raw.find("\"results\":");
    return raw.substr(at);
  };
  EXPECT_EQ(body(cold.raw), body(warm.raw));
  // Dropping --perf is a different verdict: a miss, not a stale hit.
  LintRequest noperf = req;
  noperf.perf = false;
  const Client::Reply other = client.call(to_json(Request{noperf}));
  EXPECT_FALSE(other.doc.bool_or("cached", true));
  EXPECT_EQ(ts.server->stats().jobs_run, 2u);
}

TEST(Serve, EquivalentSourcesShareACacheEntry) {
  TestServer ts(false);
  Client client = ts.connect();
  CheckRequest a = racy_check(2);
  CheckRequest b = racy_check(2);
  b.source = "// cosmetic comment\n" + b.source + "\n";
  b.file = "renamed.ptx";
  ASSERT_EQ(cache_key(Request{a}), cache_key(Request{b}));
  client.call(to_json(Request{a}));
  const Client::Reply warm = client.call(to_json(Request{b}));
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  EXPECT_EQ(ts.server->stats().jobs_run, 1u);
}

TEST(Serve, ConcurrentIdenticalSubmissionsRunOnce) {
  TestServer ts(true, 4);
  // grid 4 explores long enough (~1s) that all clients overlap one
  // in-flight execution.
  const std::string payload = to_json(Request{racy_check(4)});
  constexpr int kClients = 6;
  std::vector<std::string> bodies(kClients);
  std::vector<int> codes(kClients, -1);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        Client client = ts.connect();
        const Client::Reply r = client.call(payload);
        const std::size_t at = r.raw.find("\"results\":");
        bodies[i] = at == std::string::npos ? r.raw : r.raw.substr(at);
        codes[i] = static_cast<int>(r.doc.u64_or("exit_code", 99));
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(bodies[i], bodies[0]) << "client " << i;
    EXPECT_EQ(codes[i], codes[0]);
  }
  const ServeStats s = ts.server->stats();
  EXPECT_EQ(s.jobs_run, 1u);  // dedup + cache absorbed the rest
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.jobs_deduped + s.cache.hits,
            static_cast<std::uint64_t>(kClients - 1));
}

TEST(Serve, DistinctJobsRunConcurrently) {
  TestServer ts(false, 4);
  std::vector<std::uint32_t> grids = {2, 3};
  std::vector<std::string> statuses(grids.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < grids.size(); ++i) {
    threads.emplace_back([&, i] {
      Client client = ts.connect();
      const Client::Reply r = client.call(to_json(Request{racy_check(grids[i])}));
      statuses[i] = r.doc.str_or("status", "");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(statuses[0], "ok");
  EXPECT_EQ(statuses[1], "ok");
  EXPECT_EQ(ts.server->stats().jobs_run, 2u);
}

TEST(Serve, ProgressEventsStream) {
  TestServer ts(false);
  Client client = ts.connect();
  std::string payload = to_json(Request{racy_check(3)});
  payload.insert(payload.size() - 1, ",\"progress\":50");
  std::uint64_t events = 0;
  std::uint64_t last_states = 0;
  const Client::Reply r = client.call(payload, [&](const JsonValue& ev) {
    if (ev.str_or("event", "") == "progress") {
      ++events;
      last_states = ev.u64_or("states", 0);
    }
  });
  EXPECT_EQ(r.doc.str_or("status", ""), "ok");
  EXPECT_GT(events, 0u);
  EXPECT_GT(last_states, 0u);
}

TEST(Serve, MalformedPayloadIsError) {
  TestServer ts(false);
  Client client = ts.connect();
  const Client::Reply r = client.call("{not json");
  EXPECT_EQ(r.doc.str_or("status", ""), "error");
  EXPECT_EQ(r.doc.u64_or("exit_code", 0), 2u);
  // The connection survives an error response.
  EXPECT_EQ(client.call(R"({"command":"ping"})").doc.str_or("status", ""),
            "ok");
}

TEST(Serve, BadPtxIsUsageError) {
  TestServer ts(false);
  Client client = ts.connect();
  CheckRequest req = racy_check(2);
  req.source = "definitely not ptx";
  const Client::Reply r = client.call(to_json(Request{req}));
  EXPECT_EQ(r.doc.str_or("status", ""), "error");
  EXPECT_EQ(r.doc.u64_or("exit_code", 0), 2u);
}

TEST(Serve, VerdictsPersistAcrossRestart) {
  std::filesystem::path dir;
  std::string cold_body;
  const std::string payload = to_json(Request{racy_check(2)});
  {
    TestServer ts(true);
    dir = ts.dir;
    Client client = ts.connect();
    const Client::Reply cold = client.call(payload);
    ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
    cold_body = cold.raw.substr(cold.raw.find("\"results\":"));
    // Keep the state dir alive past the TestServer destructor.
    ServeOptions opts;
    opts.unix_path = dir / "sock2";
    opts.state_dir = dir / "state";
    ts.server->stop();
    Server second(std::move(opts));
    second.start();
    Client c2 = Client::connect(dir / "sock2");
    const Client::Reply warm = c2.call(payload);
    EXPECT_TRUE(warm.doc.bool_or("cached", false));
    EXPECT_EQ(warm.raw.substr(warm.raw.find("\"results\":")), cold_body);
    EXPECT_GE(second.stats().cache.disk_hits, 1u);
    second.stop();
  }
}

TEST(Serve, OrphanedJournalIsRecovered) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cac_serve_test_orphan_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir / "state" / "jobs");
  // Plant a journal entry as a SIGKILLed server would leave it.
  const Request req{racy_check(2)};
  const CacheKey key = cache_key(req);
  {
    std::ofstream out(dir / "state" / "jobs" / (key.hex() + ".req.json"));
    out << to_json(req);
  }
  ServeOptions opts;
  opts.unix_path = dir / "sock";
  opts.state_dir = dir / "state";
  Server server(std::move(opts));
  server.start();
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  // The recovered job completes and lands in the cache; a submission
  // of the same request is then served without a fresh execution.
  Client client = Client::connect(dir / "sock");
  const Client::Reply r = client.call(to_json(req));
  EXPECT_EQ(r.doc.str_or("status", ""), "ok");
  server.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------
// Robustness (docs/robustness.md): load shedding, vanished-client
// reaping, journal faults, client deadlines, and typed retryable exits.

TEST(ServeRobust, QueueFullSubmissionIsTypedBusy) {
  // queue_limit=0 pins the queue shut: every fresh submission is shed
  // with the typed, retryable busy reply rather than a blind error.
  TestServer ts(false, /*workers=*/1, /*queue_limit=*/0);
  Client client = ts.connect();
  const std::string payload = to_json(Request{racy_check(2)});
  const Client::Reply r = client.call(payload);
  EXPECT_EQ(r.doc.str_or("status", ""), "busy");
  EXPECT_EQ(r.doc.u64_or("exit_code", 0), 4u);
  EXPECT_GT(r.doc.u64_or("retry_after_ms", 0), 0u);
  EXPECT_GE(ts.server->stats().shed_requests, 1u);

  // submit_with_retry backs off retry_after_ms between attempts; with
  // the queue still shut it hands back the final busy reply (callers
  // map that to exit 4) instead of throwing.
  SubmitOptions sopts;
  sopts.max_attempts = 2;
  const SubmitOutcome out =
      submit_with_retry(ts.dir / "sock", payload, sopts);
  EXPECT_EQ(out.reply.doc.str_or("status", ""), "busy");
  EXPECT_EQ(out.reconnects, 0u);
}

TEST(ServeRobust, StatsReplyReportsHealthCounters) {
  TestServer ts(false);
  Client client = ts.connect();
  const Client::Reply r = client.call(R"({"command":"stats"})");
  ASSERT_EQ(r.doc.str_or("status", ""), "ok");
  const JsonValue* s = r.doc.get("stats");
  ASSERT_NE(s, nullptr);
  // Fresh server: every health counter present and — unless CI armed
  // a process-wide CAC_FAULT_PLAN, which legitimately accrues
  // transport retries — zero.  u64_or's default 99 distinguishes
  // "absent" from "zero".
  const bool armed = support::fault_active();
  for (const char* key :
       {"shed_requests", "reaped_clients", "degraded_spill",
        "checkpoint_write_failures", "journal_failures", "send_retries",
        "connect_retries"}) {
    if (armed) {
      EXPECT_NE(s->u64_or(key, 99), 99u) << key;
    } else {
      EXPECT_EQ(s->u64_or(key, 99), 0u) << key;
    }
  }
}

TEST(ServeRobust, VanishedClientIsReapedAndItsJobCancelled) {
  TestServer ts(false, /*workers=*/1);
  // Pin the only worker on a ~2s job...
  std::thread busy([&] {
    Client client = ts.connect();
    client.call(to_json(Request{racy_check(8)}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  {
    // ...then submit a distinct job over a raw connection and vanish
    // without reading the reply.  The 300ms linger lets the server
    // accept and journal the job before the socket dies.
    dist::Fd raw = dist::unix_connect((ts.dir / "sock").string());
    const std::string frame = dist::encode_frame(
        dist::FrameType::kServeRequest, to_json(Request{racy_check(3)}));
    dist::send_all(raw.get(), frame.data(), frame.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  // The server's liveness probe notices within ~100ms and reaps the
  // queued job nobody will ever read.
  bool reaped = false;
  for (int i = 0; i < 100 && !reaped; ++i) {
    reaped = ts.server->stats().reaped_clients >= 1;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(reaped);
  busy.join();
  EXPECT_EQ(ts.server->stats().jobs_run, 1u);  // the orphan never ran
}

TEST(ServeRobust, JournalWriteFailureIsCountedNotFatal) {
  TestServer ts(true);
  support::ScopedFaultPlan plan(
      "op=write,path=*.req.json,every=1,err=ENOSPC");
  Client client = ts.connect();
  const Client::Reply r = client.call(to_json(Request{racy_check(2)}));
  // Losing the crash-recovery journal costs durability, never the
  // verdict: the job still runs and replies normally.
  EXPECT_EQ(r.doc.str_or("status", ""), "ok");
  EXPECT_GE(ts.server->stats().journal_failures, 1u);
}

TEST(ServeRobust, ClientCallDeadlineExpiresOnSilentServer) {
  // A peer that accepts and then says nothing must not hang the
  // client: the per-frame deadline turns silence into a typed Timeout.
  const auto path = std::filesystem::temp_directory_path() /
                    ("cac_serve_silent_" + std::to_string(::getpid()));
  std::filesystem::remove(path);
  dist::Fd listener = dist::unix_listen(path.string());
  std::thread acceptor([&] {
    dist::Fd conn = dist::unix_accept(listener.get());
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
  });
  Client client = Client::connect(path.string());
  try {
    client.call(R"({"command":"ping"})", {}, /*deadline_ms=*/200);
    FAIL() << "expected a deadline timeout";
  } catch (const dist::DistError& e) {
    EXPECT_EQ(e.kind(), dist::DistError::Kind::Timeout);
  }
  acceptor.join();
  std::filesystem::remove(path);
}

TEST(ServeRobust, SubmitWithRetryConnectsOnceServerIsUp) {
  // Backoff across connect attempts rides out a server that is not
  // up yet — the cold-start/restart half of reconnect-and-reattach.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cac_serve_late_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServeOptions opts;
  opts.unix_path = dir / "sock";
  opts.workers = 1;
  Server server(std::move(opts));
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server.start();
  });
  SubmitOptions sopts;
  sopts.connect.max_attempts = 20;
  sopts.connect.initial_backoff_ms = 25;
  sopts.connect.max_backoff_ms = 100;
  const SubmitOutcome out =
      submit_with_retry(dir / "sock", to_json(Request{racy_check(2)}), sopts);
  EXPECT_EQ(out.reply.doc.str_or("status", ""), "ok");
  starter.join();
  server.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ServeRobust, ServerDeathMidWaitIsRetryableAndReattachable) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cac_serve_death_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServeOptions opts;
  opts.unix_path = dir / "sock";
  opts.workers = 1;
  opts.state_dir = dir / "state";
  auto server = std::make_unique<Server>(std::move(opts));
  server->start();

  std::thread busy([&] {
    try {
      Client client = Client::connect((dir / "sock").string());
      client.call(to_json(Request{racy_check(8)}));  // ~2s: pins the worker
    } catch (const std::exception&) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // A second job queues behind the pinned worker; the server then dies
  // under it.  The waiter must see a RETRYABLE failure — the typed
  // exit-5 error reply if the response wins the race with teardown,
  // or a retryable transport error if it does not — never a hang and
  // never a non-retryable verdict.
  const std::string queued = to_json(Request{racy_check(3)});
  std::atomic<int> outcome{-1};  // 0|1 retryable, 2 wrong
  std::thread waiter([&] {
    try {
      Client client = Client::connect((dir / "sock").string());
      const Client::Reply r = client.call(queued);
      outcome = (r.doc.str_or("status", "") == "error" &&
                 r.doc.u64_or("exit_code", 0) == 5)
                    ? 0
                    : 2;
    } catch (const dist::DistError& e) {
      const auto k = e.kind();
      outcome = (k == dist::DistError::Kind::PeerDied ||
                 k == dist::DistError::Kind::Io ||
                 k == dist::DistError::Kind::Timeout)
                    ? 1
                    : 2;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->stop();
  busy.join();
  waiter.join();
  EXPECT_NE(outcome.load(), 2);
  EXPECT_NE(outcome.load(), -1);

  // Re-attach: the journal survived the shutdown, so a restarted
  // server on the same state dir completes the same request.
  ServeOptions o2;
  o2.unix_path = dir / "sock2";
  o2.state_dir = dir / "state";
  o2.workers = 1;
  Server second(std::move(o2));
  second.start();
  Client client = Client::connect((dir / "sock2").string());
  const Client::Reply r = client.call(queued);
  EXPECT_EQ(r.doc.str_or("status", ""), "ok");
  second.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace cac::front
