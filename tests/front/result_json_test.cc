// Golden-file tests for the unified JSON schema: every document the
// front end can emit (check proved/refuted, validate, lint, equiv) is
// pinned byte-for-byte against a committed golden file, and the request
// wire form round-trips.  If a schema change is intentional, regenerate
// with tools/regen_front_goldens.sh and commit the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "front/cache.h"
#include "front/front.h"

namespace cac::front {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string golden_path(const std::string& name) {
  return std::string(CAC_SOURCE_DIR) + "/tests/front/golden/" + name;
}

std::string golden(const std::string& name) {
  std::string text = read_file(golden_path(name));
  // Goldens are committed with a trailing newline (the CLI prints one);
  // the library document has none.
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

/// Compare against the committed golden — or rewrite it when
/// CAC_UPDATE_GOLDENS is set (tools/regen_front_goldens.sh).
void expect_golden(const std::string& name, const std::string& document) {
  if (std::getenv("CAC_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path(name), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path(name);
    out << document << "\n";
    return;
  }
  EXPECT_EQ(document, golden(name));
}

std::string data(const std::string& name) {
  return read_file(std::string(CAC_SOURCE_DIR) + "/tests/data/" + name);
}

std::string buggy(const std::string& name) {
  return read_file(std::string(CAC_SOURCE_DIR) + "/examples/buggy/" + name);
}

CheckRequest vecadd_check() {
  CheckRequest r;
  r.file = "vecadd.ptx";
  r.source = data("vecadd.ptx");
  r.launch.block = {4, 1, 1};
  r.launch.warp_size = 2;
  r.launch.global_bytes = 1024;
  r.launch.params = {{"arr_A", 0x100}, {"arr_B", 0x200}, {"arr_C", 0x300},
                     {"size", 4}};
  r.launch.inits = {{0x100, 1}, {0x104, 2}, {0x108, 3}, {0x10c, 4},
                    {0x200, 10}, {0x204, 20}, {0x208, 30}, {0x20c, 40}};
  r.expects = {{0x300, 11}, {0x304, 22}, {0x308, 33}, {0x30c, 44}};
  r.require_independence = true;
  r.exact_steps = 44;
  r.explore.max_depth = 1u << 20;
  return r;
}

CheckRequest racy_check() {
  CheckRequest r;
  r.file = "racy.ptx";
  r.source = data("racy.ptx");
  r.launch.grid = {2, 1, 1};
  r.launch.block = {1, 1, 1};
  r.launch.warp_size = 1;
  r.launch.global_bytes = 64;
  r.launch.params = {{"out", 0}};
  r.explore.max_depth = 1u << 20;
  return r;
}

TEST(GoldenJson, CheckProved) {
  const std::vector<Result> results = run(Request{vecadd_check()});
  expect_golden("check_vecadd_proved.json", to_json(results));
  EXPECT_EQ(exit_code_of(results), kExitProved);
}

TEST(GoldenJson, CheckRefutedWithCounterexample) {
  CheckRequest req = racy_check();
  req.expects = {{0, 99}};  // impossible postcondition
  const std::vector<Result> results = run(Request{req});
  expect_golden("check_racy_refuted.json", to_json(results));
  EXPECT_EQ(exit_code_of(results), kExitFinding);
}

TEST(GoldenJson, CheckLimitTripped) {
  CheckRequest req = racy_check();
  req.explore.max_states = 4;
  const std::vector<Result> results = run(Request{req});
  expect_golden("check_racy_limit.json", to_json(results));
  EXPECT_EQ(exit_code_of(results), kExitLimit);
}

TEST(GoldenJson, Validate) {
  CheckRequest req = vecadd_check();
  req.full_validate = true;
  req.explore.partial_order_reduction = true;
  const std::vector<Result> results = run(Request{req});
  expect_golden("validate_vecadd.json", to_json(results));
  EXPECT_EQ(exit_code_of(results), kExitProved);
}

TEST(GoldenJson, LintFindings) {
  LintRequest req;
  req.file = "global_race.ptx";
  req.source = buggy("global_race.ptx");
  const std::vector<Result> results = run(Request{req});
  expect_golden("lint_global_race.json", to_json(results));
  EXPECT_EQ(exit_code_of(results), kExitFinding);
}

TEST(GoldenJson, LintPerfWarnings) {
  LintRequest req;
  req.file = "strided_vecadd.ptx";
  req.source = buggy("perf/strided_vecadd.ptx");
  req.perf = true;
  const std::vector<Result> results = run(Request{req});
  expect_golden("lint_perf_strided.json", to_json(results));
  // Perf findings are warnings: never part of the correctness exit.
  EXPECT_EQ(exit_code_of(results), kExitProved);
}

TEST(GoldenJson, FindingOrderIsCanonical) {
  // Equal verdicts serialize byte-identically even across option sets
  // that change the producer's internal emission order but not the
  // finding set itself.
  LintRequest a;
  a.file = "divergent_barrier.ptx";
  a.source = buggy("divergent_barrier.ptx");
  LintRequest b = a;
  b.races = false;
  EXPECT_EQ(to_json(run(Request{a})), to_json(run(Request{b})));
}

TEST(GoldenJson, EquivProved) {
  EquivRequest req;
  req.file = "vecadd.ptx";
  req.source = data("vecadd.ptx");
  req.file_b = "vecadd.ptx";
  req.source_b = data("vecadd.ptx");
  req.launch.block = {8, 1, 1};
  req.launch.warp_size = 8;
  const std::vector<Result> results = run(Request{req});
  expect_golden("equiv_vecadd_self.json", to_json(results));
  EXPECT_EQ(exit_code_of(results), kExitProved);
}

TEST(GoldenJson, EqualVerdictsSerializeIdentically) {
  const Request req{vecadd_check()};
  EXPECT_EQ(to_json(run(req)), to_json(run(req)));
}

// The request wire form: parse(to_json(r)) must address the same cache
// entry and produce the same verdict document.
TEST(RequestRoundTrip, CheckKeyAndVerdictSurvive) {
  const Request req{vecadd_check()};
  const Request back = request_from_json(to_json(req));
  EXPECT_EQ(cache_key(req), cache_key(back));
  EXPECT_EQ(to_json(req), to_json(back));
  EXPECT_EQ(to_json(run(req)), to_json(run(back)));
}

TEST(RequestRoundTrip, LintAndEquiv) {
  LintRequest lint;
  lint.file = "global_race.ptx";
  lint.source = buggy("global_race.ptx");
  lint.races = false;
  lint.perf = true;
  const Request lreq{lint};
  const Request lback = request_from_json(to_json(lreq));
  EXPECT_EQ(cache_key(lreq), cache_key(lback));
  EXPECT_TRUE(std::get<LintRequest>(lback).perf);

  EquivRequest eq;
  eq.file = "vecadd.ptx";
  eq.source = data("vecadd.ptx");
  eq.file_b = "vecadd.ptx";
  eq.source_b = data("vecadd.ptx");
  eq.launch.block = {8, 1, 1};
  eq.sym.max_paths = 9;
  const Request ereq{eq};
  const Request eback = request_from_json(to_json(ereq));
  EXPECT_EQ(cache_key(ereq), cache_key(eback));
  EXPECT_EQ(std::get<EquivRequest>(eback).sym.max_paths, 9u);
}

TEST(RequestRoundTrip, MalformedRequestsThrow) {
  EXPECT_THROW(request_from_json("{}"), JsonError);
  EXPECT_THROW(request_from_json(R"({"command":"bogus"})"), JsonError);
  EXPECT_THROW(request_from_json("not json"), JsonError);
}

}  // namespace
}  // namespace cac::front
