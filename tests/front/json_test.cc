// The JSON layer under the service: deterministic emission and strict
// parsing of untrusted payloads.
#include "front/json.h"

#include <gtest/gtest.h>

namespace cac::front {
namespace {

TEST(JsonWriter, EmitsInCallOrder) {
  JsonWriter w;
  w.begin_obj()
      .key("b").value(std::uint64_t{2})
      .key("a").value("x")
      .key("list").begin_arr().value(true).value_null().end_arr()
      .end_obj();
  EXPECT_EQ(w.take(), R"({"b":2,"a":"x","list":[true,null]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_obj().key("s").value("a\"b\\c\n\t\x01").end_obj();
  EXPECT_EQ(w.take(), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w;
  w.begin_obj().key("inner").raw(R"([1,2,{"k":"v"}])").end_obj();
  EXPECT_EQ(w.take(), R"({"inner":[1,2,{"k":"v"}]})");
}

TEST(JsonWriter, SignedAndUnsigned) {
  JsonWriter w;
  w.begin_arr()
      .value(std::int64_t{-5})
      .value(std::uint64_t{18446744073709551615ull})
      .end_arr();
  EXPECT_EQ(w.take(), "[-5,18446744073709551615]");
}

TEST(JsonWriter, IdenticalInputsIdenticalBytes) {
  auto emit = [] {
    JsonWriter w;
    w.begin_obj().key("n").value(std::uint64_t{7}).key("ok").value(true)
        .end_obj();
    return w.take();
  };
  EXPECT_EQ(emit(), emit());
}

TEST(JsonParse, RoundTripsDocument) {
  const std::string doc =
      R"({"cmd":"check","n":3,"neg":-4,"ok":true,"arr":[1,"two",null]})";
  const JsonValue v = json_parse(doc);
  ASSERT_TRUE(v.is_obj());
  EXPECT_EQ(v.str_or("cmd", ""), "check");
  EXPECT_EQ(v.u64_or("n", 0), 3u);
  EXPECT_EQ(v.get("neg")->as_i64(), -4);
  EXPECT_TRUE(v.bool_or("ok", false));
  ASSERT_TRUE(v.get("arr")->is_arr());
  EXPECT_EQ(v.get("arr")->arr.size(), 3u);
  EXPECT_EQ(v.get("arr")->arr[1].as_str(), "two");
}

TEST(JsonParse, PreservesMemberOrder) {
  const JsonValue v = json_parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.obj.size(), 3u);
  EXPECT_EQ(v.obj[0].first, "z");
  EXPECT_EQ(v.obj[1].first, "a");
  EXPECT_EQ(v.obj[2].first, "m");
}

TEST(JsonParse, DecodesEscapes) {
  const JsonValue v = json_parse(R"({"s":"a\"b\\c\nA"})");
  EXPECT_EQ(v.str_or("s", ""), "a\"b\\c\nA");
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("{\"a\":}"), JsonError);
  EXPECT_THROW(json_parse("[1,2,]"), JsonError);
  EXPECT_THROW(json_parse("{} trailing"), JsonError);
  EXPECT_THROW(json_parse("nul"), JsonError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonError);
}

TEST(JsonParse, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_THROW(json_parse(deep), JsonError);
}

TEST(JsonParse, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = json_parse(R"({"s":"x","n":1})");
  EXPECT_THROW(static_cast<void>(v.get("s")->as_u64()), JsonError);
  EXPECT_THROW(static_cast<void>(v.get("n")->as_str()), JsonError);
  EXPECT_EQ(v.get("missing"), nullptr);
}

}  // namespace
}  // namespace cac::front
