// The content-addressed verdict cache: key canonicalization (what is
// and is not part of a verdict's identity), the cacheability rule, and
// the bounded LRU with disk persistence.
#include "front/cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/fault.h"

namespace cac::front {
namespace {

const char* kVecAdd = R"(
.version 6.0
.target sm_30
.address_size 64
.visible .entry k(
  .param .u64 out
)
{
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [out];
  mov.u32 %r1, %tid.x;
  st.global.u32 [%rd1], %r1;
  ret;
}
)";

CheckRequest base_request() {
  CheckRequest r;
  r.file = "a.ptx";
  r.source = kVecAdd;
  r.launch.block = {2, 1, 1};
  r.launch.warp_size = 1;
  r.launch.global_bytes = 64;
  r.launch.params.emplace_back("out", 0);
  return r;
}

TEST(CacheKey, StableAcrossCalls) {
  const CheckRequest r = base_request();
  EXPECT_EQ(cache_key(r), cache_key(r));
  EXPECT_EQ(cache_key(r).hex().size(), 32u);
}

TEST(CacheKey, WhitespaceAndCommentsWashOut) {
  CheckRequest a = base_request();
  CheckRequest b = base_request();
  b.source = std::string("// a comment\n") + kVecAdd + "\n\n  \n";
  b.file = "same-kernel-different-file.ptx";  // display name is not content
  EXPECT_EQ(cache_key(Request{a}), cache_key(Request{b}));
}

TEST(CacheKey, TransientOptionsExcluded) {
  CheckRequest a = base_request();
  CheckRequest b = base_request();
  b.explore.num_threads = 8;
  b.explore.deadline_ms = 1234;
  b.explore.mem_limit_bytes = 1u << 30;
  b.explore.checkpoint_path = "/tmp/x.ckpt";
  b.explore.checkpoint_every_states = 17;
  b.explore.store_resident_budget_bytes = 4096;
  EXPECT_EQ(cache_key(Request{a}), cache_key(Request{b}));
}

TEST(CacheKey, StructuralOptionsIncluded) {
  const CheckRequest a = base_request();
  CheckRequest b = base_request();
  b.explore.max_states = 7;
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{b}));

  CheckRequest c = base_request();
  c.explore.partial_order_reduction = true;
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{c}));

  CheckRequest d = base_request();
  d.expects.emplace_back(0, 1);
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{d}));

  CheckRequest e = base_request();
  e.full_validate = true;
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{e}));

  CheckRequest f = base_request();
  f.launch.block = {3, 1, 1};
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{f}));
}

TEST(CacheKey, LintPerfIsStructural) {
  // The perf passes change what the verdict contains, so `--perf` is
  // part of a lint verdict's identity; display names and formatting
  // still wash out.
  LintRequest a;
  a.file = "a.ptx";
  a.source = kVecAdd;
  LintRequest b = a;
  b.perf = true;
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{b}));

  LintRequest c = b;
  c.file = "renamed.ptx";
  c.source = std::string("// comment\n") + kVecAdd + "\n";
  EXPECT_EQ(cache_key(Request{b}), cache_key(Request{c}));

  LintRequest d = a;
  d.races = false;
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{d}));
}

TEST(CacheKey, KernelSourceIsContent) {
  const CheckRequest a = base_request();
  CheckRequest b = base_request();
  std::string changed = kVecAdd;
  const auto at = changed.find("%tid.x");
  ASSERT_NE(at, std::string::npos);
  changed.replace(at, 6, "%ctaid.x");
  b.source = changed;
  EXPECT_NE(cache_key(Request{a}), cache_key(Request{b}));
}

TEST(CacheKey, MalformedSourceThrows) {
  CheckRequest r = base_request();
  r.source = "this is not ptx";
  EXPECT_THROW(cache_key(Request{r}), PtxError);
}

Result explored_result(const std::string& limit) {
  Result r;
  r.command = "check";
  r.stats.have_explore = true;
  r.stats.limit_hit = limit;
  r.stats.exhaustive = limit == "none";
  return r;
}

TEST(Cacheable, DeterministicOutcomesOnly) {
  EXPECT_TRUE(cacheable({explored_result("none")}));
  EXPECT_TRUE(cacheable({explored_result("max-states")}));
  EXPECT_TRUE(cacheable({explored_result("max-depth")}));
  EXPECT_FALSE(cacheable({explored_result("deadline")}));
  EXPECT_FALSE(cacheable({explored_result("mem-limit")}));
  EXPECT_FALSE(cacheable({explored_result("interrupted")}));
  EXPECT_FALSE(cacheable({}));

  Result lint;  // no exploration block: always deterministic
  lint.command = "lint";
  EXPECT_TRUE(cacheable({lint}));
}

CacheKey key_of(std::uint64_t n) {
  CacheKey k;
  k.hi = n;
  k.lo = ~n;
  return k;
}

VerdictCache::Entry entry_of(int code, const std::string& body) {
  VerdictCache::Entry e;
  e.exit_code = code;
  e.results_json = body;
  return e;
}

TEST(VerdictCache, HitReturnsVerbatimPayload) {
  VerdictCache cache;
  const std::string body = R"([{"verdict":"proved","exit_code":0}])";
  cache.put(key_of(1), entry_of(0, body));
  const auto hit = cache.get(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->results_json, body);
  EXPECT_EQ(hit->exit_code, 0);
  EXPECT_FALSE(cache.get(key_of(2)).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(VerdictCache, EvictsLeastRecentlyUsedByEntryCount) {
  VerdictCache::Options opts;
  opts.max_entries = 2;
  VerdictCache cache(opts);
  cache.put(key_of(1), entry_of(0, "[1]"));
  cache.put(key_of(2), entry_of(0, "[2]"));
  ASSERT_TRUE(cache.get(key_of(1)).has_value());  // refresh 1
  cache.put(key_of(3), entry_of(0, "[3]"));       // evicts 2
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  EXPECT_FALSE(cache.get(key_of(2)).has_value());
  EXPECT_TRUE(cache.get(key_of(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(VerdictCache, EvictsByPayloadBytes) {
  VerdictCache::Options opts;
  opts.max_bytes = 10;
  VerdictCache cache(opts);
  cache.put(key_of(1), entry_of(0, "12345678"));  // 8 bytes
  cache.put(key_of(2), entry_of(0, "12345678"));  // 16 > 10: evict 1
  EXPECT_FALSE(cache.get(key_of(1)).has_value());
  EXPECT_TRUE(cache.get(key_of(2)).has_value());
}

TEST(VerdictCache, PersistsAcrossInstances) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "cac_cache_test_persist";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  VerdictCache::Options opts;
  opts.dir = dir;
  const std::string body = R"([{"verdict":"refuted","exit_code":1}])";
  {
    VerdictCache cache(opts);
    cache.put(key_of(9), entry_of(1, body));
  }
  VerdictCache fresh(opts);
  const auto hit = fresh.get(key_of(9));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->results_json, body);  // byte-for-byte replay
  EXPECT_EQ(hit->exit_code, 1);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(VerdictCache, CorruptDiskFileIsAMiss) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "cac_cache_test_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  VerdictCache::Options opts;
  opts.dir = dir;
  VerdictCache cache(opts);
  {
    std::ofstream out(dir + "/" + key_of(5).hex() + ".json");
    out << "{\"exit_code\":1,\"resul";  // torn write
  }
  EXPECT_FALSE(cache.get(key_of(5)).has_value());
  std::filesystem::remove_all(dir);
}

TEST(VerdictCache, PersistFailureKeepsEntryResident) {
  // ENOSPC on the cache's disk tier costs durability, not the verdict:
  // the entry stays served from memory and the failure is counted.
  const std::string dir =
      std::filesystem::temp_directory_path() / "cac_cache_test_enospc";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  VerdictCache::Options opts;
  opts.dir = dir;
  VerdictCache cache(opts);
  const std::string body = R"([{"verdict":"proved","exit_code":0}])";
  {
    support::ScopedFaultPlan plan("op=write,path=*.json,every=1,err=ENOSPC");
    cache.put(key_of(3), entry_of(0, body));
  }
  EXPECT_EQ(cache.stats().persist_failures, 1u);
  const auto hit = cache.get(key_of(3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->results_json, body);
  // Nothing (and no .tmp litter) landed on disk.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
  std::filesystem::remove_all(dir);
}

TEST(VerdictCache, DiskReadFaultIsAMissNotACrash) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "cac_cache_test_eio";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  VerdictCache::Options opts;
  opts.dir = dir;
  {
    VerdictCache writer(opts);
    writer.put(key_of(7), entry_of(1, "[7]"));
  }
  VerdictCache fresh(opts);
  {
    support::ScopedFaultPlan plan("op=open,path=*.json,every=1,err=EIO");
    EXPECT_FALSE(fresh.get(key_of(7)).has_value());
  }
  // Seam off, the same file reads fine — the fault was transient.
  EXPECT_TRUE(fresh.get(key_of(7)).has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cac::front
