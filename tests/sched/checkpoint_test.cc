// Crash-safe exploration: checkpoint format, resource budgets, and
// resume equivalence.
//
// The contract under test (docs/explorer.md "Checkpoint/resume"):
//
//  * a StateStore round-trips through encode/decode with every
//    fragment and state id preserved;
//  * a run interrupted at ANY point and resumed from its checkpoint
//    reaches a verdict byte-identical to the uninterrupted run —
//    serial and parallel, with and without POR;
//  * budgets (deadline, RSS watermark, stop flag) end a run gracefully
//    with the precise limit reported and a final checkpoint written;
//  * corrupt checkpoint files — truncated, bit-flipped, version-skewed
//    — are rejected with a structured CheckpointError, never a crash,
//    and never a silently wrong verdict; the last good checkpoint
//    stays usable.
#include "sched/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sched/explore_parallel.h"
#include "sem/launch.h"
#include "support/binio.h"

namespace cac::sched {
namespace {

using namespace cac::ptx;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cac_ckpt_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void expect_identical(const ExploreResult& a, const ExploreResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.min_steps_to_termination, b.min_steps_to_termination);
  EXPECT_EQ(a.max_steps_to_termination, b.max_steps_to_termination);
  EXPECT_EQ(a.limit_hit, b.limit_hit);
  ASSERT_EQ(a.final_ids.size(), b.final_ids.size());
  const std::vector<sem::Machine> af = a.finals();
  const std::vector<sem::Machine> bf = b.finals();
  for (std::size_t i = 0; i < af.size(); ++i) {
    EXPECT_EQ(af[i], bf[i]) << "finals[" << i << "]";
  }
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
    EXPECT_EQ(a.violations[i].message, b.violations[i].message);
    EXPECT_EQ(a.violations[i].trace, b.violations[i].trace);
  }
}

/// The dense interleaving lattice: plenty of states, no violations.
struct Lattice {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;

  explicit Lattice(std::uint32_t instrs, std::uint32_t threads = 8)
      : prg(programs::straightline_program(instrs)),
        kc{{1, 1, 1}, {threads, 1, 1}, 2},
        init(sem::Launch(prg, kc, mem::MemSizes{}).machine()) {}
};

// ---------------------------------------------------------------------
// StateStore codec

TEST(StateStoreCodec, RoundTripPreservesIdsAndContents) {
  const Lattice w(3, 4);
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
  ASSERT_TRUE(r.exhaustive);
  ASSERT_GT(r.states_visited, 10u);

  support::BinWriter bw;
  r.store->encode(bw);
  support::BinReader br(bw.buffer());
  StateStore copy;
  copy.decode(br);
  EXPECT_TRUE(br.done());

  EXPECT_EQ(copy.size(), r.store->size());
  // Every id must materialize to the same machine with the same
  // memoized hash — id preservation is what makes resume possible.
  for (const StateId id : r.final_ids) {
    EXPECT_EQ(copy.materialize(id), r.store->materialize(id));
    EXPECT_EQ(copy.machine_hash(id), r.store->machine_hash(id));
  }
}

TEST(StateStoreCodec, DecodeIntoNonEmptyStoreThrows) {
  const Lattice w(2, 2);
  const ExploreResult r = explore(w.prg, w.kc, w.init);
  support::BinWriter bw;
  r.store->encode(bw);

  StateStore dirty;
  (void)dirty.intern(w.init);
  support::BinReader br(bw.buffer());
  EXPECT_THROW(dirty.decode(br), KernelError);
}

// ---------------------------------------------------------------------
// Serial resume: every cut point reaches the uninterrupted verdict.

TEST(CheckpointResume, SerialEveryCutPointByteIdentical) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  const sem::Machine init = launch.machine();

  for (const bool por : {false, true}) {
    ExploreOptions base;
    base.partial_order_reduction = por;
    base.stop_at_first_violation = false;
    const ExploreResult full = explore(prg, kc, init, base);
    ASSERT_TRUE(full.exhaustive);

    const std::string path =
        temp_path("serial_cut_" + std::to_string(por));
    // Cut after every k states up to the full size: the checkpoint at
    // each k must resume to the identical verdict.
    for (std::uint64_t k = 1; k <= full.states_visited; k += 7) {
      ExploreOptions cut = base;
      cut.stop_after_states = k;
      cut.checkpoint_path = path;
      const ExploreResult stopped = explore(prg, kc, init, cut);
      ASSERT_EQ(stopped.limit_hit, ExploreResult::Limit::Interrupted);
      ASSERT_TRUE(stopped.checkpointed);

      const Checkpoint ck = Checkpoint::load(path);
      EXPECT_EQ(ck.engine, Checkpoint::Engine::Serial);
      const ExploreResult resumed = explore(prg, kc, init, base, &ck);
      expect_identical(full, resumed,
                       "por=" + std::to_string(por) +
                           " cut=" + std::to_string(k));
    }
    std::remove(path.c_str());
  }
}

TEST(CheckpointResume, SerialResumeReproducesViolations) {
  // A schedule-dependent racy store with faults: interrupt after the
  // first violation was recorded and make sure resumed output keeps it.
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();

  ExploreOptions base;
  base.stop_at_first_violation = false;
  const ExploreResult full = explore(prg, kc, init, base);
  ASSERT_FALSE(full.violations.empty());

  const std::string path = temp_path("serial_viol");
  for (std::uint64_t k = 1; k < full.states_visited; k += 3) {
    ExploreOptions cut = base;
    cut.stop_after_states = k;
    cut.checkpoint_path = path;
    const ExploreResult stopped = explore(prg, kc, init, cut);
    ASSERT_TRUE(stopped.checkpointed);
    const Checkpoint ck = Checkpoint::load(path);
    const ExploreResult resumed = explore(prg, kc, init, base, &ck);
    expect_identical(full, resumed, "cut=" + std::to_string(k));
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Parallel resume at every thread count.

TEST(CheckpointResume, ParallelResumeByteIdentical) {
  const Lattice w(12);
  for (const bool por : {false, true}) {
    ExploreOptions base;
    base.partial_order_reduction = por;
    base.stop_at_first_violation = false;
    const ExploreResult serial = explore(w.prg, w.kc, w.init, base);
    ASSERT_TRUE(serial.exhaustive);

    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      const std::string path = temp_path(
          "par_" + std::to_string(por) + "_" + std::to_string(threads));
      ExploreOptions cut = base;
      cut.num_threads = threads;
      cut.stop_after_states = 32;  // monitor trips once the store holds 32
      cut.checkpoint_path = path;
      const ExploreResult stopped = explore(w.prg, w.kc, w.init, cut);

      ExploreOptions cont = base;
      cont.num_threads = threads;
      if (stopped.checkpointed &&
          stopped.limit_hit == ExploreResult::Limit::Interrupted) {
        const Checkpoint ck = Checkpoint::load(path);
        EXPECT_EQ(ck.engine, Checkpoint::Engine::Parallel);
        const ExploreResult resumed =
            explore(w.prg, w.kc, w.init, cont, &ck);
        expect_identical(serial, resumed,
                         "por=" + std::to_string(por) +
                             " threads=" + std::to_string(threads));
      } else {
        // The graph build outran the monitor's poll — legal, the run
        // just completed (it may still have written a final checkpoint
        // if the trip landed after completion); the verdict must match.
        ASSERT_TRUE(stopped.exhaustive);
        expect_identical(serial, stopped,
                         "uncut por=" + std::to_string(por) +
                             " threads=" + std::to_string(threads));
      }
      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointResume, ParallelPeriodicCheckpointResumable) {
  const Lattice w(12);
  ExploreOptions base;
  base.stop_at_first_violation = false;
  const ExploreResult serial = explore(w.prg, w.kc, w.init, base);

  const std::string path = temp_path("par_periodic");
  ExploreOptions opts = base;
  opts.num_threads = 4;
  opts.checkpoint_path = path;
  opts.checkpoint_every_states = 16;
  const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
  expect_identical(serial, r, "periodic run itself");
  if (r.checkpointed) {
    // Whatever mid-run snapshot was last written must resume to the
    // same verdict.
    const Checkpoint ck = Checkpoint::load(path);
    ExploreOptions cont = base;
    cont.num_threads = 4;
    const ExploreResult resumed = explore(w.prg, w.kc, w.init, cont, &ck);
    expect_identical(serial, resumed, "resume from periodic snapshot");
  }
  std::remove(path.c_str());
}

TEST(CheckpointResume, MidSpillCheckpointResumesByteIdentical) {
  // Tiering is transparent to checkpoints: a run whose store is
  // actively evicting and spilling when the snapshot lands must
  // resume — with the same tier knobs, with different knobs, or with
  // tiering off — to the uninterrupted verdict.  Tier knobs are
  // transient (never in the option fingerprint), so the cross-knob
  // resumes also pin that they don't poison resume validation.
  const Lattice w(10);
  ExploreOptions base;
  base.stop_at_first_violation = false;
  const ExploreResult full = explore(w.prg, w.kc, w.init, base);
  ASSERT_TRUE(full.exhaustive);

  const std::string path = temp_path("mid_spill");
  ExploreOptions cut = base;
  cut.store_spill_dir = testing::TempDir();
  cut.store_resident_budget_bytes = 16 << 10;
  cut.stop_after_states = full.states_visited / 2;
  cut.checkpoint_path = path;
  const ExploreResult stopped = explore(w.prg, w.kc, w.init, cut);
  ASSERT_EQ(stopped.limit_hit, ExploreResult::Limit::Interrupted);
  ASSERT_TRUE(stopped.checkpointed);
  // The snapshot really was taken mid-spill.
  ASSERT_GT(stopped.store_stats.spilled_bytes, 0u);

  struct Variant {
    const char* what;
    std::string spill_dir;
    std::uint64_t budget;
  };
  const Variant variants[] = {
      {"same knobs", testing::TempDir(), 16 << 10},
      {"tighter budget", testing::TempDir(), 4 << 10},
      {"tiering off", "", 0},
  };
  for (const Variant& v : variants) {
    const Checkpoint ck = Checkpoint::load(path);
    ExploreOptions cont = base;
    cont.store_spill_dir = v.spill_dir;
    cont.store_resident_budget_bytes = v.budget;
    const ExploreResult resumed = explore(w.prg, w.kc, w.init, cont, &ck);
    expect_identical(full, resumed, std::string("mid-spill resume, ") +
                                        v.what);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Budgets: graceful stop with the precise limit and a usable snapshot.

TEST(Budgets, DeadlineStopsSerialRunGracefully) {
  const Lattice w(16);
  const std::string path = temp_path("deadline");
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  opts.deadline_ms = 1;
  opts.checkpoint_path = path;
  const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
  ASSERT_FALSE(r.exhaustive);
  EXPECT_EQ(r.limit_hit, ExploreResult::Limit::Deadline);
  ASSERT_TRUE(r.checkpointed);

  // Resume without the deadline: must complete and match the
  // uninterrupted run exactly (the transient Deadline reason must not
  // have leaked into the checkpoint).
  ExploreOptions base;
  base.stop_at_first_violation = false;
  const ExploreResult full = explore(w.prg, w.kc, w.init, base);
  const Checkpoint ck = Checkpoint::load(path);
  EXPECT_EQ(ck.limit_hit, ExploreResult::Limit::None);
  const ExploreResult resumed = explore(w.prg, w.kc, w.init, base, &ck);
  expect_identical(full, resumed, "deadline resume");
  std::remove(path.c_str());
}

TEST(Budgets, MemLimitStopsRunWithPreciseReason) {
  const Lattice w(16);
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  opts.mem_limit_bytes = 1;  // any real process exceeds one byte of RSS
  if (current_rss_bytes() == 0) GTEST_SKIP() << "no /proc RSS here";
  const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
  ASSERT_FALSE(r.exhaustive);
  EXPECT_EQ(r.limit_hit, ExploreResult::Limit::MemLimit);
}

TEST(Budgets, StopFlagInterruptsBothEngines) {
  const Lattice w(12);
  std::atomic<bool> stop{true};  // pre-set: trips on the first poll
  for (const std::uint32_t threads : {0u, 4u}) {
    ExploreOptions opts;
    opts.stop_at_first_violation = false;
    opts.stop_flag = &stop;
    opts.num_threads = threads;
    const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
    EXPECT_FALSE(r.exhaustive) << threads;
    EXPECT_EQ(r.limit_hit, ExploreResult::Limit::Interrupted) << threads;
  }
}

TEST(Budgets, DeadlineStopsParallelRunGracefully) {
  const Lattice w(16);
  const std::string path = temp_path("deadline_par");
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  opts.num_threads = 4;
  opts.deadline_ms = 1;
  opts.checkpoint_path = path;
  const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
  if (!r.exhaustive) {
    EXPECT_EQ(r.limit_hit, ExploreResult::Limit::Deadline);
    ASSERT_TRUE(r.checkpointed);
    ExploreOptions base;
    base.stop_at_first_violation = false;
    base.num_threads = 4;
    const Checkpoint ck = Checkpoint::load(path);
    const ExploreResult resumed = explore(w.prg, w.kc, w.init, base, &ck);
    ExploreOptions sbase;
    sbase.stop_at_first_violation = false;
    const ExploreResult full = explore(w.prg, w.kc, w.init, sbase);
    expect_identical(full, resumed, "parallel deadline resume");
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Structured rejection of unusable checkpoints.

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Lattice w(8, 4);
    // Per-case path: ctest runs each case as its own process, so a
    // fixture-wide name would collide under a parallel ctest.
    path_ = temp_path(std::string("corrupt_") +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
    ExploreOptions opts;
    opts.stop_at_first_violation = false;
    opts.stop_after_states = 10;
    opts.checkpoint_path = path_;
    const ExploreResult r = explore(w.prg, w.kc, w.init, opts);
    ASSERT_TRUE(r.checkpointed);
    good_ = slurp(path_);
    ASSERT_GT(good_.size(), kHeader);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static constexpr std::size_t kHeader = 32;
  std::string path_;
  std::string good_;
};

TEST_F(CorruptionTest, GoodFileLoads) {
  EXPECT_NO_THROW(Checkpoint::load(path_));
}

TEST_F(CorruptionTest, MissingFileIsIoError) {
  try {
    Checkpoint::load(path_ + ".nope");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::Io);
  }
}

TEST_F(CorruptionTest, EveryTruncationRejectedStructurally) {
  // Every prefix of the file (a crash mid-write of a non-atomic
  // writer, a full disk, a torn copy) must be rejected cleanly.
  for (std::size_t len = 0; len < good_.size();
       len += (len < kHeader ? 1 : 97)) {
    spit(path_, good_.substr(0, len));
    try {
      Checkpoint::load(path_);
      FAIL() << "truncation to " << len << " bytes loaded";
    } catch (const CheckpointError& e) {
      EXPECT_TRUE(e.kind() == CheckpointError::Kind::Corrupt ||
                  e.kind() == CheckpointError::Kind::Io)
          << "len=" << len << ": " << e.what();
    }
  }
}

TEST_F(CorruptionTest, EveryBitFlipRejectedOrHarmless) {
  // Flip one bit at a stride across the whole file.  The payload is
  // checksummed, so any payload flip is caught; header flips hit the
  // magic, version, size, or checksum fields.
  for (std::size_t i = 0; i < good_.size();
       i += (i < kHeader ? 1 : 131)) {
    std::string bad = good_;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    spit(path_, bad);
    try {
      Checkpoint::load(path_);
      FAIL() << "bit flip at byte " << i << " loaded";
    } catch (const CheckpointError&) {
      // Structured rejection: exactly what the contract requires.
    }
  }
}

TEST_F(CorruptionTest, VersionSkewReportedAsVersionMismatch) {
  std::string bad = good_;
  // Header version field; the checksum covers payload only.
  bad[8] = static_cast<char>(Checkpoint::kFormatVersion + 1);
  spit(path_, bad);
  try {
    Checkpoint::load(path_);
    FAIL() << "version-skewed file loaded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::VersionMismatch);
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(CorruptionTest, V2FilesRejectedWithVersionMismatch) {
  // Format v3 changed the embedded store payload (per-warp-record
  // tier metadata for delta chains), so a v2 file from an older build
  // must be refused outright — decoding its payload with the v3
  // layout would misread fragment records.
  std::string bad = good_;
  bad[8] = 2;  // header version field; the checksum covers payload only
  spit(path_, bad);
  try {
    Checkpoint::load(path_);
    FAIL() << "v2 file loaded by a v3 reader";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::VersionMismatch);
    EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos)
        << e.what();
  }
}

TEST_F(CorruptionTest, WrongMagicIsNotACheckpoint) {
  std::string bad = good_;
  bad[0] = 'X';
  spit(path_, bad);
  try {
    Checkpoint::load(path_);
    FAIL() << "bad-magic file loaded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::Corrupt);
  }
}

TEST_F(CorruptionTest, LastGoodCheckpointSurvivesCorruptedSuccessor) {
  // The atomic write-then-rename discipline means a corrupted "new"
  // file never replaces a good old one; model that by keeping a copy.
  const std::string backup = path_ + ".bak";
  spit(backup, good_);
  spit(path_, good_.substr(0, good_.size() / 2));
  EXPECT_THROW(Checkpoint::load(path_), CheckpointError);
  EXPECT_NO_THROW(Checkpoint::load(backup));
  std::remove(backup.c_str());
}

// ---------------------------------------------------------------------
// Resume compatibility checks.

class ResumeMismatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = std::make_unique<Lattice>(8, 4);
    // Per-case path: see CorruptionTest::SetUp.
    path_ = temp_path(std::string("mismatch_") +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
    base_.stop_at_first_violation = false;
    ExploreOptions opts = base_;
    opts.stop_after_states = 10;
    opts.checkpoint_path = path_;
    const ExploreResult r = explore(w_->prg, w_->kc, w_->init, opts);
    ASSERT_TRUE(r.checkpointed);
    ck_ = std::make_unique<Checkpoint>(Checkpoint::load(path_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void expect_mismatch(const ptx::Program& prg, const sem::KernelConfig& kc,
                       const sem::Machine& init, const ExploreOptions& opts) {
    try {
      (void)explore(prg, kc, init, opts, ck_.get());
      FAIL() << "resume accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointError::Kind::Mismatch);
    }
  }

  std::unique_ptr<Lattice> w_;
  std::string path_;
  ExploreOptions base_;
  std::unique_ptr<Checkpoint> ck_;
};

TEST_F(ResumeMismatchTest, WrongEngineRejected) {
  ExploreOptions par = base_;
  par.num_threads = 2;  // serial checkpoint, parallel resume
  expect_mismatch(w_->prg, w_->kc, w_->init, par);
}

TEST_F(ResumeMismatchTest, DifferentProgramRejected) {
  const Lattice other(3, 4);
  expect_mismatch(other.prg, w_->kc, w_->init, base_);
}

TEST_F(ResumeMismatchTest, DifferentConfigRejected) {
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 2};
  expect_mismatch(w_->prg, kc, w_->init, base_);
}

TEST_F(ResumeMismatchTest, DifferentBoundsRejected) {
  ExploreOptions opts = base_;
  opts.max_depth = 7;
  expect_mismatch(w_->prg, w_->kc, w_->init, opts);
}

TEST_F(ResumeMismatchTest, DifferentPolicyRejected) {
  ExploreOptions opts = base_;
  opts.partial_order_reduction = true;
  expect_mismatch(w_->prg, w_->kc, w_->init, opts);
}

TEST_F(ResumeMismatchTest, BudgetsAreNotStructural) {
  // A different deadline/mem-limit/checkpoint path must NOT block
  // resume — budgets are transient.
  ExploreOptions opts = base_;
  opts.deadline_ms = 60'000;
  opts.mem_limit_bytes = 1ull << 40;
  opts.checkpoint_path = path_ + ".next";
  const ExploreResult r = explore(w_->prg, w_->kc, w_->init, opts, ck_.get());
  EXPECT_TRUE(r.exhaustive);
  std::remove((path_ + ".next").c_str());
}

}  // namespace
}  // namespace cac::sched
