// Verdict equivalence between the serial DFS explorer and the parallel
// frontier engine: on every scenario the parallel engine must
// reproduce the serial ExploreResult *byte for byte* — exhaustive
// flag, state/transition counts, violations with their kinds, messages
// and replayable traces, the finals vector (content and order), and
// the min/max schedule lengths — at every thread count, with and
// without partial-order reduction.
#include "sched/explore_parallel.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace cac::sched {
namespace {

using namespace cac::ptx;
using programs::VecAddLayout;

void expect_identical(const ExploreResult& a, const ExploreResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.min_steps_to_termination, b.min_steps_to_termination);
  EXPECT_EQ(a.max_steps_to_termination, b.max_steps_to_termination);
  ASSERT_EQ(a.final_ids.size(), b.final_ids.size());
  const std::vector<sem::Machine> af = a.finals();
  const std::vector<sem::Machine> bf = b.finals();
  for (std::size_t i = 0; i < af.size(); ++i) {
    EXPECT_EQ(af[i], bf[i]) << "finals[" << i << "]";
  }
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
    EXPECT_EQ(a.violations[i].message, b.violations[i].message);
    EXPECT_EQ(a.violations[i].trace, b.violations[i].trace);
  }
}

/// Run serial vs parallel at several thread counts, with and without
/// POR, and demand identical results throughout.
void expect_parallel_equivalent(const ptx::Program& prg,
                                const sem::KernelConfig& kc,
                                const sem::Machine& init,
                                bool stop_at_first = true) {
  for (const bool por : {false, true}) {
    ExploreOptions serial_opts;
    serial_opts.partial_order_reduction = por;
    serial_opts.stop_at_first_violation = stop_at_first;
    const ExploreResult serial = explore(prg, kc, init, serial_opts);

    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      ExploreOptions par_opts = serial_opts;
      par_opts.num_threads = threads;
      // Both entry points must agree: the explicit one and the
      // explore() dispatch on num_threads.
      const ExploreResult via_dispatch = explore(prg, kc, init, par_opts);
      expect_identical(serial, via_dispatch,
                       "por=" + std::to_string(por) +
                           " threads=" + std::to_string(threads));
      const ExploreResult direct = explore_parallel(prg, kc, init, par_opts);
      expect_identical(serial, direct,
                       "direct por=" + std::to_string(por) +
                           " threads=" + std::to_string(threads));
    }
  }
}

sem::Machine vecadd_machine(const ptx::Program& prg,
                            const sem::KernelConfig& kc, std::uint32_t size) {
  const VecAddLayout L;
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", size);
  for (std::uint32_t i = 0; i < size; ++i) {
    launch.global_u32(L.a + 4 * i, 3 * i + 1);
    launch.global_u32(L.b + 4 * i, 7 * i + 2);
  }
  return launch.machine();
}

TEST(ParallelExplore, VectorAddTwoWarps) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  expect_parallel_equivalent(prg, kc, vecadd_machine(prg, kc, 8));
}

TEST(ParallelExplore, ReduceSharedWithBarriers) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  expect_parallel_equivalent(prg, kc, launch.machine());
}

TEST(ParallelExplore, AtomicSumTwoBlocks) {
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{2, 1, 1}, {2, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32).param("size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  launch.global_u32(32, 0);
  expect_parallel_equivalent(prg, kc, launch.machine());
}

TEST(ParallelExplore, RacyStoreFinalsDifferBySchedule) {
  // Two blocks store their block id to Global[0]: schedule-dependent.
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("race",
                    {IMov{r1, op_sreg(SregKind::CtaId, Dim::X)},
                     ISt{Space::Global, UI(32), op_imm(0), r1}, IExit{}});
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  const sem::Machine init =
      sem::Launch(prg, kc, mem::MemSizes{8, 0, 0, 0, 1}).machine();
  expect_parallel_equivalent(prg, kc, init);

  ExploreOptions opts;
  opts.num_threads = 4;
  const ExploreResult r = explore(prg, kc, init, opts);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.all_schedules_terminate());
  EXPECT_FALSE(r.schedule_independent());
  EXPECT_EQ(r.final_ids.size(), 2u);
}

TEST(ParallelExplore, StuckVerdictMatchesSerial) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  expect_parallel_equivalent(prg, kc, init, /*stop_at_first=*/true);
  expect_parallel_equivalent(prg, kc, init, /*stop_at_first=*/false);
}

TEST(ParallelExplore, CycleVerdictMatchesSerial) {
  const Program prg("spin", {IBra{0}});
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  expect_parallel_equivalent(prg, kc, init);

  ExploreOptions opts;
  opts.num_threads = 2;
  const ExploreResult r = explore(prg, kc, init, opts);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::Cycle);
}

TEST(ParallelExplore, FaultVerdictMatchesSerial) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("oob",
                    {ILd{Space::Global, UI(32), r1, op_imm(1000)}, IExit{}});
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine init =
      sem::Launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1}).machine();
  expect_parallel_equivalent(prg, kc, init);
}

TEST(ParallelExplore, ManyWarpsStraightline) {
  // 4 independent warps: a dense interleaving lattice — the kind of
  // graph the frontier engine is built for.
  const ptx::Program prg = programs::straightline_program(2);
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  expect_parallel_equivalent(prg, kc, init);
}

TEST(ParallelExplore, StateLimitStillNonExhaustive) {
  // Under a state cap both engines must report non-exhaustive (the
  // exact cut may differ; see docs/explorer.md).
  const ptx::Program prg = programs::straightline_program(10);
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  ExploreOptions opts;
  opts.max_states = 10;
  opts.stop_at_first_violation = false;
  opts.num_threads = 4;
  const ExploreResult r = explore(prg, kc, init, opts);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_LE(r.states_visited, 10u);
}

TEST(ParallelExplore, DepthBoundStillReported) {
  const ptx::Program prg = programs::straightline_program(50);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  ExploreOptions opts;
  opts.max_depth = 5;
  opts.num_threads = 4;
  const ExploreResult r = explore(prg, kc, init, opts);
  EXPECT_FALSE(r.exhaustive);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::DepthExceeded);
}

}  // namespace
}  // namespace cac::sched
