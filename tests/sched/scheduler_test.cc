#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "programs/corpus.h"
#include "sem/launch.h"

namespace cac::sched {
namespace {

sem::Machine straightline_machine(const ptx::Program& prg,
                                  const sem::KernelConfig& kc) {
  sem::Launch launch(prg, kc, mem::MemSizes{});
  return launch.machine();
}

TEST(Schedulers, FirstChoiceIsDeterministic) {
  const ptx::Program prg = programs::straightline_program(4);
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 2};  // 4 warps
  FirstChoiceScheduler a, b;
  sem::Machine m1 = straightline_machine(prg, kc);
  sem::Machine m2 = straightline_machine(prg, kc);
  const RunResult r1 = run(prg, kc, m1, a);
  const RunResult r2 = run(prg, kc, m2, b);
  ASSERT_TRUE(r1.terminated());
  EXPECT_EQ(r1.trace, r2.trace);
  EXPECT_EQ(m1, m2);
}

TEST(Schedulers, RandomIsSeedReproducible) {
  const ptx::Program prg = programs::straightline_program(4);
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 2};
  RandomScheduler a(7), b(7), c(8);
  sem::Machine m1 = straightline_machine(prg, kc);
  sem::Machine m2 = straightline_machine(prg, kc);
  sem::Machine m3 = straightline_machine(prg, kc);
  const RunResult r1 = run(prg, kc, m1, a);
  const RunResult r2 = run(prg, kc, m2, b);
  const RunResult r3 = run(prg, kc, m3, c);
  EXPECT_EQ(r1.trace, r2.trace);
  // A different seed gives a different schedule (overwhelmingly likely
  // for 4 warps x 7 steps; this is a fixed-seed regression check).
  EXPECT_NE(r1.trace, r3.trace);
}

TEST(Schedulers, RoundRobinTouchesAllWarps) {
  const ptx::Program prg = programs::straightline_program(8);
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};  // 4 warps
  RoundRobinScheduler s;
  sem::Machine m = straightline_machine(prg, kc);
  const RunResult r = run(prg, kc, m, s);
  ASSERT_TRUE(r.terminated());
  std::set<std::uint32_t> warps_early;
  for (std::size_t i = 0; i < 4 && i < r.trace.size(); ++i) {
    warps_early.insert(r.trace[i].warp);
  }
  EXPECT_EQ(warps_early.size(), 4u);  // every warp progressed early
}

TEST(Schedulers, StepBoundReported) {
  const ptx::Program prg = programs::straightline_program(100);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  FirstChoiceScheduler s;
  sem::Machine m = straightline_machine(prg, kc);
  const RunResult r = run(prg, kc, m, s, /*max_steps=*/5);
  EXPECT_EQ(r.status, RunResult::Status::BoundExceeded);
  EXPECT_EQ(r.steps, 5u);
}

TEST(Schedulers, TraceLengthEqualsSteps) {
  const ptx::Program prg = programs::straightline_program(3);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  FirstChoiceScheduler s;
  sem::Machine m = straightline_machine(prg, kc);
  const RunResult r = run(prg, kc, m, s);
  ASSERT_TRUE(r.terminated());
  EXPECT_EQ(r.trace.size(), r.steps);
  EXPECT_EQ(r.steps, 5u);  // 2 movs + 3 ALU ops; Exit is not a step
}

}  // namespace
}  // namespace cac::sched
