// sched::StateStore: interning/copy-on-write invariants behind the
// handle-based explorer API.
//
//  * intern() dedups structurally equal machines to one StateId;
//  * materialize() round-trips (structural equality and hash);
//  * materialized machines share memory banks with the store by
//    refcount, and copy-on-write isolates mutations;
//  * dedup survives forced hash collisions (equality, not hash,
//    decides) — the soundness property the explorers lean on.
#include "sched/state_store.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "sem/launch.h"
#include "sem/step.h"

namespace cac::sched {
namespace {

using programs::VecAddLayout;

sem::Machine vecadd_initial(const sem::KernelConfig& kc,
                            std::uint32_t size) {
  static const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  sem::LaunchSpec spec;
  spec.grid = kc.grid;
  spec.block = kc.block;
  spec.warp_size = kc.warp_size;
  spec.global_bytes = L.global_bytes;
  spec.shared_bytes = 0;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", size}};
  for (std::uint32_t i = 0; i < size; ++i) {
    spec.inits.emplace_back(L.a + 4 * i, i);
    spec.inits.emplace_back(L.b + 4 * i, 2 * i);
  }
  return spec.to_launch(prg).machine();
}

const ptx::Program& vecadd_prg() {
  static const ptx::Program prg = programs::vector_add_listing2();
  return prg;
}

/// Step the machine once along the first eligible choice.
sem::Machine step_once(const sem::KernelConfig& kc, sem::Machine m) {
  const auto eligible = sem::eligible_choices(vecadd_prg(), m.grid);
  EXPECT_FALSE(eligible.empty());
  const sem::StepResult sr =
      sem::apply_choice(vecadd_prg(), kc, m, eligible.front(), {}, nullptr);
  EXPECT_TRUE(sr.ok()) << sr.fault;
  return m;
}

TEST(StateStoreTest, InternDedupsEqualMachines) {
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine m = vecadd_initial(kc, 8);
  const sem::Machine copy = m;  // structurally equal, distinct banks refs

  StateStore store;
  const auto a = store.intern(m);
  ASSERT_TRUE(a.id.valid());
  EXPECT_TRUE(a.inserted);

  const auto b = store.intern(copy);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().states, 1u);
}

TEST(StateStoreTest, MaterializeRoundTrips) {
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Machine m = vecadd_initial(kc, 8);
  m = step_once(kc, std::move(m));
  m = step_once(kc, std::move(m));

  StateStore store;
  const auto r = store.intern(m);
  ASSERT_TRUE(r.id.valid());

  const sem::Machine back = store.materialize(r.id);
  EXPECT_TRUE(back == m);
  EXPECT_EQ(back.hash(), m.hash());
  EXPECT_EQ(store.machine_hash(r.id), m.hash());

  // And the round-tripped machine interns to the same handle.
  const auto again = store.intern(back);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, r.id);
}

TEST(StateStoreTest, MaterializedMachineSharesBanksCopyOnWrite) {
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine m = vecadd_initial(kc, 8);

  StateStore store;
  const auto r = store.intern(m);
  ASSERT_TRUE(r.id.valid());

  sem::Machine a = store.materialize(r.id);
  const sem::Machine b = store.materialize(r.id);
  // Banks are shared by refcount, not copied per materialization.
  EXPECT_EQ(a.memory.bank_ref(mem::Space::Global).get(),
            b.memory.bank_ref(mem::Space::Global).get());
  EXPECT_EQ(a.memory.bank_ref(mem::Space::Param).get(),
            b.memory.bank_ref(mem::Space::Param).get());

  // Mutating one copy clones only its bank; the sibling and the store
  // keep the original bytes.
  const std::uint64_t before =
      b.memory.load(mem::Space::Global, 0, 4);
  a.memory.store(mem::Space::Global, 0, 4, 0xdeadbeef, true);
  a.invalidate_hash();
  EXPECT_NE(a.memory.bank_ref(mem::Space::Global).get(),
            b.memory.bank_ref(mem::Space::Global).get());
  EXPECT_EQ(b.memory.load(mem::Space::Global, 0, 4), before);
  const sem::Machine c = store.materialize(r.id);
  EXPECT_EQ(c.memory.load(mem::Space::Global, 0, 4), before);
}

TEST(StateStoreTest, RegisterLocalStepSharesAllButOneWarp) {
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};  // two warps
  const sem::Machine m0 = vecadd_initial(kc, 8);
  const sem::Machine m1 = step_once(kc, m0);

  StateStore store;
  ASSERT_TRUE(store.intern(m0).inserted);
  const auto s0 = store.stats();
  ASSERT_TRUE(store.intern(m1).inserted);
  const auto s1 = store.stats();

  // The first instruction is register-local: one warp changed, the
  // untouched warp and every memory bank are shared with state 0.
  EXPECT_EQ(s1.states, 2u);
  EXPECT_LE(s1.warp_fragments, s0.warp_fragments + 1);
  EXPECT_EQ(s1.bank_fragments, s0.bank_fragments);
  // The incremental resident cost is far below a full machine copy.
  EXPECT_LT(s1.resident_bytes - s0.resident_bytes,
            (s1.materialized_bytes - s0.materialized_bytes) / 2);
}

TEST(StateStoreTest, ForcedHashCollisionsStillDedupByEquality) {
  // hash_mask 0 sends every fragment and state into one bucket: any
  // dedup decision now rests purely on structural equality.
  StateStore store(0ull);

  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  std::vector<sem::Machine> chain;
  chain.push_back(vecadd_initial(kc, 8));
  for (int i = 0; i < 4; ++i) {
    chain.push_back(step_once(kc, chain.back()));
  }

  std::vector<StateId> ids;
  for (const sem::Machine& m : chain) {
    const auto r = store.intern(m);
    ASSERT_TRUE(r.id.valid());
    EXPECT_TRUE(r.inserted);
    ids.push_back(r.id);
  }
  // All distinct states got distinct ids despite total collision...
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_FALSE(ids[i] == ids[j]) << i << " vs " << j;
    }
  }
  // ...re-interning dedups to the existing ids...
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const auto r = store.intern(chain[i]);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.id, ids[i]);
  }
  // ...and every handle still materializes its own state.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_TRUE(store.materialize(ids[i]) == chain[i]) << i;
  }
}

TEST(StateStoreTest, MaxStatesCapDropsNewKeepsExisting) {
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  const sem::Machine m0 = vecadd_initial(kc, 8);
  const sem::Machine m1 = step_once(kc, m0);

  StateStore store;
  const auto a = store.intern(m0, 1);
  ASSERT_TRUE(a.id.valid());
  EXPECT_TRUE(a.inserted);

  // A new state over the cap is dropped...
  const auto b = store.intern(m1, 1);
  EXPECT_FALSE(b.id.valid());
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(store.size(), 1u);

  // ...but an existing state is still found (existence before cap).
  const auto c = store.intern(m0, 1);
  EXPECT_TRUE(c.id.valid());
  EXPECT_FALSE(c.inserted);
  EXPECT_EQ(c.id, a.id);
}

}  // namespace
}  // namespace cac::sched
