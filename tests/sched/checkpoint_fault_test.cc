// Fault-injection harness for checkpoint/resume: simulate a crash at
// randomized points of an exploration, resume from the last
// checkpoint, and demand the uninterrupted verdict — or a structured
// CheckpointError when the file was damaged — but never a crash and
// never a silently wrong verdict.
//
// The "kill" is the stop_after_states seam: the serial engine honors
// it exactly (polled every DFS iteration), which makes every cut point
// reachable deterministically; the parallel engine is cut by its
// monitor, so the cut lands wherever the poll caught the workers —
// both are exactly the states a real SIGKILL could land in, because a
// checkpoint is only ever written at a quiescent cut.  A second layer
// re-runs with the *file* damaged at pseudo-random offsets
// (tools/checkpoint_crash_drill.py adds the real-process SIGKILL
// variant on top of cacval).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/checkpoint.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace cac::sched {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cac_fault_" + name;
}

/// Deterministic PRNG (splitmix64) so failures replay exactly.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

void expect_identical(const ExploreResult& a, const ExploreResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.min_steps_to_termination, b.min_steps_to_termination);
  EXPECT_EQ(a.max_steps_to_termination, b.max_steps_to_termination);
  ASSERT_EQ(a.final_ids.size(), b.final_ids.size());
  const std::vector<sem::Machine> af = a.finals();
  const std::vector<sem::Machine> bf = b.finals();
  for (std::size_t i = 0; i < af.size(); ++i) {
    EXPECT_EQ(af[i], bf[i]) << "finals[" << i << "]";
  }
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
    EXPECT_EQ(a.violations[i].message, b.violations[i].message);
    EXPECT_EQ(a.violations[i].trace, b.violations[i].trace);
  }
}

struct Scenario {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;
  std::string name;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    const ptx::Program prg = programs::straightline_program(6);
    const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};
    out.push_back({prg, kc,
                   sem::Launch(prg, kc, mem::MemSizes{}).machine(),
                   "lattice"});
  }
  {
    const ptx::Program prg =
        ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
    const sem::KernelConfig kc{{2, 1, 1}, {2, 1, 1}, 2};
    sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
    launch.param("arr_A", 0).param("out", 32).param("size", 4);
    for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
    launch.global_u32(32, 0);
    out.push_back({prg, kc, launch.machine(), "atomic_sum"});
  }
  {
    const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                                 .kernel("barrier_divergence");
    const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
    out.push_back({prg, kc,
                   sem::Launch(prg, kc, mem::MemSizes{}).machine(),
                   "stuck"});
  }
  return out;
}

TEST(CheckpointFault, RandomKillPointsResumeToIdenticalVerdict) {
  Rng rng{0xc0ffee};
  for (const Scenario& sc : scenarios()) {
    for (const bool por : {false, true}) {
      for (const std::uint32_t threads : {0u, 2u}) {
        ExploreOptions base;
        base.partial_order_reduction = por;
        base.stop_at_first_violation = false;
        ExploreOptions sbase = base;
        const ExploreResult full = explore(sc.prg, sc.kc, sc.init, sbase);

        const std::string tag = sc.name + "_por" + std::to_string(por) +
                                "_t" + std::to_string(threads);
        const std::string path = temp_path(tag);
        for (int trial = 0; trial < 6; ++trial) {
          const std::uint64_t kill_at =
              1 + rng.below(full.states_visited > 1 ? full.states_visited - 1
                                                    : 1);
          ExploreOptions cut = base;
          cut.num_threads = threads;
          cut.stop_after_states = kill_at;
          cut.checkpoint_path = path;
          const ExploreResult stopped = explore(sc.prg, sc.kc, sc.init, cut);

          ExploreOptions cont = base;
          cont.num_threads = threads;
          if (!stopped.checkpointed) {
            // Parallel monitor may not have caught the run in time; it
            // then completed normally — verify and move on.
            expect_identical(full, stopped, tag + " uncut");
            continue;
          }
          const Checkpoint ck = Checkpoint::load(path);
          const ExploreResult resumed =
              explore(sc.prg, sc.kc, sc.init, cont, &ck);
          expect_identical(full, resumed,
                           tag + " kill_at=" + std::to_string(kill_at));
        }
        std::remove(path.c_str());
      }
    }
  }
}

TEST(CheckpointFault, ChainedKillsAcrossGenerations) {
  // Crash, resume, crash again mid-resume, resume again — three
  // generations deep, then compare against the uninterrupted verdict.
  const ptx::Program prg = programs::straightline_program(6);
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();

  ExploreOptions base;
  base.stop_at_first_violation = false;
  const ExploreResult full = explore(prg, kc, init, base);
  ASSERT_GT(full.states_visited, 30u);

  const std::string path = temp_path("chained");
  ExploreOptions g1 = base;
  g1.stop_after_states = full.states_visited / 4;
  g1.checkpoint_path = path;
  const ExploreResult r1 = explore(prg, kc, init, g1);
  ASSERT_TRUE(r1.checkpointed);

  const Checkpoint ck1 = Checkpoint::load(path);
  ExploreOptions g2 = base;
  g2.stop_after_states = full.states_visited / 2;
  g2.checkpoint_path = path;
  const ExploreResult r2 = explore(prg, kc, init, g2, &ck1);
  ASSERT_TRUE(r2.checkpointed);
  ASSERT_EQ(r2.limit_hit, ExploreResult::Limit::Interrupted);

  const Checkpoint ck2 = Checkpoint::load(path);
  const ExploreResult resumed = explore(prg, kc, init, base, &ck2);
  expect_identical(full, resumed, "generation 3");
  std::remove(path.c_str());
}

TEST(CheckpointFault, RandomFileDamageNeverCrashesNeverLies) {
  // Produce a good checkpoint, then hand the loader pseudo-randomly
  // damaged variants: every outcome must be either a clean load of a
  // *valid* checkpoint (flips that miss all validated bytes cannot
  // happen — the checksum covers the whole payload) or a structured
  // CheckpointError.
  const ptx::Program prg = programs::straightline_program(6);
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();

  const std::string path = temp_path("damage");
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  opts.stop_after_states = 20;
  opts.checkpoint_path = path;
  const ExploreResult r = explore(prg, kc, init, opts);
  ASSERT_TRUE(r.checkpointed);

  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    good = ss.str();
  }
  ASSERT_GT(good.size(), 32u);

  Rng rng{0xdecafbad};
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = good;
    switch (trial % 3) {
      case 0:  // single bit flip
        bad[rng.below(bad.size())] ^= static_cast<char>(1u << rng.below(8));
        break;
      case 1:  // truncate
        bad.resize(rng.below(bad.size()));
        break;
      case 2:  // garbage splice
        for (int k = 0; k < 8; ++k) {
          bad[rng.below(bad.size())] = static_cast<char>(rng.next());
        }
        break;
    }
    if (bad == good) continue;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();
    try {
      const Checkpoint ck = Checkpoint::load(path);
      // Loadable despite damage would mean the damage missed every
      // meaningful byte — impossible with a full-payload checksum
      // unless the flip undid itself (excluded above).
      FAIL() << "trial " << trial << ": damaged checkpoint loaded";
    } catch (const CheckpointError&) {
      // Structured rejection — the required outcome.
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cac::sched
