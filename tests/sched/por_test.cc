// Soundness cross-checks for the persistent-set partial-order
// reduction: on every corpus scenario, POR must reach the same verdict
// and the same set of final MEMORY states as full exploration, with
// (usually far) fewer intermediate states.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace cac::sched {
namespace {

struct Outcome {
  bool exhaustive;
  std::size_t violation_kinds;  // bitmask of kinds seen
  std::set<std::uint64_t> final_memory_hashes;
  std::uint64_t states;
};

Outcome summarize(const ExploreResult& r) {
  Outcome o{r.exhaustive, 0, {}, r.states_visited};
  for (const Violation& v : r.violations) {
    o.violation_kinds |= 1u << static_cast<unsigned>(v.kind);
  }
  for (const sem::Machine& m : r.finals()) {
    o.final_memory_hashes.insert(m.memory.hash());
  }
  return o;
}

void expect_por_equivalent(const ptx::Program& prg,
                           const sem::KernelConfig& kc,
                           const sem::Machine& init,
                           bool expect_reduction = true) {
  ExploreOptions full;
  full.stop_at_first_violation = false;
  ExploreOptions por = full;
  por.partial_order_reduction = true;

  const Outcome a = summarize(explore(prg, kc, init, full));
  const Outcome b = summarize(explore(prg, kc, init, por));
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.violation_kinds, b.violation_kinds);
  EXPECT_EQ(a.final_memory_hashes, b.final_memory_hashes);
  EXPECT_LE(b.states, a.states);
  if (expect_reduction && a.states > 30) {
    EXPECT_LT(b.states, a.states) << "POR reduced nothing";
  }
}

TEST(PartialOrderReduction, VectorAddTwoWarps) {
  const ptx::Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  expect_por_equivalent(prg, kc, launch.machine());
}

TEST(PartialOrderReduction, StraightlineCollapsesToOnePath) {
  const ptx::Program prg = programs::straightline_program(6);
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 2};  // 4 warps
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  ExploreOptions por;
  por.partial_order_reduction = true;
  const ExploreResult r = explore(prg, kc, init, por);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.schedule_independent());
  // Every instruction is register-local: the schedule graph is a chain.
  EXPECT_EQ(r.states_visited, 4u * 8u + 1u);
}

TEST(PartialOrderReduction, RacyProgramKeepsBothFinals) {
  // POR must NOT collapse genuine store races.
  const ptx::Reg r1{ptx::TypeClass::UI, 32, 1};
  const ptx::Program prg(
      "race", {ptx::IMov{r1, ptx::op_sreg(ptx::SregKind::CtaId, ptx::Dim::X)},
               ptx::ISt{ptx::Space::Global, ptx::UI(32), ptx::op_imm(0), r1},
               ptx::IExit{}});
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  const sem::Machine init =
      sem::Launch(prg, kc, mem::MemSizes{8, 0, 0, 0, 1}).machine();
  ExploreOptions por;
  por.partial_order_reduction = true;
  const ExploreResult r = explore(prg, kc, init, por);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.final_ids.size(), 2u);
  expect_por_equivalent(prg, kc, init, /*expect_reduction=*/false);
}

TEST(PartialOrderReduction, BarrierReduction) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  expect_por_equivalent(prg, kc, launch.machine());
}

TEST(PartialOrderReduction, NoBarrierRaceStillDetected) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  // Both explorations must agree that the result is schedule-dependent.
  ExploreOptions por;
  por.partial_order_reduction = true;
  const ExploreResult r = explore(prg, kc, launch.machine(), por);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.final_ids.size(), 1u);
  expect_por_equivalent(prg, kc, launch.machine());
}

TEST(PartialOrderReduction, DeadlockStillDetected) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  const sem::Machine init = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  ExploreOptions por;
  por.partial_order_reduction = true;
  por.stop_at_first_violation = false;
  const ExploreResult r = explore(prg, kc, init, por);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::Stuck);
  expect_por_equivalent(prg, kc, init);
}

TEST(PartialOrderReduction, AtomicsAreBranchPoints) {
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{2, 1, 1}, {2, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32).param("size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  launch.global_u32(32, 0);
  expect_por_equivalent(prg, kc, launch.machine());
}

}  // namespace
}  // namespace cac::sched
