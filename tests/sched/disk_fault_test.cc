// Disk faults on the explorer's persistence paths (docs/robustness.md):
// every injected ENOSPC/EIO must degrade gracefully — the verdict is
// byte-identical to an unfaulted run, the degradation is counted, and
// the process neither crashes nor hangs.
//
//  * spill-append failure: the store drops to resident-only (the
//    record stays warm), stats().degraded_spill reports it, and the
//    exploration's verdict/finals are unchanged;
//  * spill-open failure at configure(): same degradation, from the
//    first byte;
//  * checkpoint write failure (open/write/rename): the run logs,
//    keeps exploring to the same verdict, and counts the failure in
//    ExploreResult::checkpoint_write_failures; a later unfaulted
//    cadence then persists a loadable checkpoint.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "programs/corpus.h"
#include "sched/checkpoint.h"
#include "sched/explore.h"
#include "sched/state_store.h"
#include "sem/launch.h"
#include "support/fault.h"

namespace cac::sched {
namespace {

struct Lattice {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;

  explicit Lattice(std::uint32_t instrs, std::uint32_t threads = 8)
      : prg(programs::straightline_program(instrs)),
        kc{{1, 1, 1}, {threads, 1, 1}, 2},
        init(sem::Launch(prg, kc, mem::MemSizes{}).machine()) {}
};

/// Exploration options that force the spill tier to carry real
/// traffic: a tiny resident budget over a dense lattice.
ExploreOptions tiered_opts(const std::string& spill_dir) {
  ExploreOptions o;
  o.stop_at_first_violation = false;
  o.store_spill_dir = spill_dir;
  o.store_resident_budget_bytes = 16 << 10;
  return o;
}

void expect_same_verdict(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  ASSERT_EQ(a.final_ids.size(), b.final_ids.size());
  const auto af = a.finals();
  const auto bf = b.finals();
  for (std::size_t i = 0; i < af.size(); ++i) EXPECT_EQ(af[i], bf[i]);
}

// ---------------------------------------------------------------------
// Spill-tier faults

TEST(DiskFault, EnospcOnSpillAppendDegradesToResidentOnly) {
  const Lattice w(5, 8);
  const ExploreResult clean =
      explore(w.prg, w.kc, w.init, tiered_opts(testing::TempDir()));
  ASSERT_TRUE(clean.exhaustive);
  ASSERT_GT(clean.store_stats.spilled_bytes, 0u) << "test needs spill traffic";

  support::ScopedFaultPlan plan("op=write,path=*cac-spill*,nth=1,err=ENOSPC");
  const ExploreResult faulted =
      explore(w.prg, w.kc, w.init, tiered_opts(testing::TempDir()));
  EXPECT_GE(support::fault_injections(), 1u) << "fault never hit the seam";

  // The whole point: capacity loss, zero verdict drift.
  expect_same_verdict(clean, faulted);
  EXPECT_GT(faulted.store_stats.degraded_spill, 0u);
  // Degraded means the spill tier stopped taking bytes at the fault.
  EXPECT_LE(faulted.store_stats.spilled_bytes,
            clean.store_stats.spilled_bytes);
}

TEST(DiskFault, SpillOpenFailureAtConfigureDegrades) {
  const Lattice w(5, 8);
  support::ScopedFaultPlan plan("op=open,path=*cac-spill*,every=1,err=EACCES");
  const ExploreResult r =
      explore(w.prg, w.kc, w.init, tiered_opts(testing::TempDir()));
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.store_stats.degraded_spill, 0u);
  EXPECT_EQ(r.store_stats.spilled_bytes, 0u);
}

TEST(DiskFault, StoreLevelAppendFaultKeepsRecordReadable) {
  // Unit-level: a store whose spill append fails mid-eviction keeps
  // every state materializable (the failing record stays warm).
  const Lattice w(5, 6);
  StoreOptions o;
  o.spill_dir = testing::TempDir();
  o.resident_budget_bytes = 4 << 10;
  StateStore store(o);

  std::vector<StateId> ids;
  StateId parent{};
  sem::Machine m = w.init;
  const auto r0 = store.intern(m, ~0ull, parent);
  ids.push_back(r0.id);
  parent = r0.id;
  for (int i = 0; i < 60; ++i) {
    const auto eligible = sem::eligible_choices(w.prg, m.grid);
    if (eligible.empty()) break;
    sem::apply_choice(w.prg, w.kc, m, eligible.front(), {}, nullptr);
    const auto r = store.intern(m, ~0ull, parent);
    parent = r.id;
    ids.push_back(r.id);
  }

  support::ScopedFaultPlan plan("op=write,path=*cac-spill*,every=1,err=EIO");
  store.evict_all();  // every spill attempt fails; warm demotion remains
  EXPECT_GT(store.stats().degraded_spill, 0u);

  sem::Machine replay = w.init;
  EXPECT_EQ(store.materialize(ids.front()), replay);
  EXPECT_EQ(store.materialize(ids.back()), m);
}

// ---------------------------------------------------------------------
// Checkpoint-write faults

TEST(DiskFault, CheckpointWriteFailureIsRetriedNextCadence) {
  const Lattice w(5, 8);
  const std::string path = testing::TempDir() + "/faulted.ckpt";

  ExploreOptions clean_opts;
  clean_opts.stop_at_first_violation = false;
  const ExploreResult clean = explore(w.prg, w.kc, w.init, clean_opts);

  ExploreOptions o = clean_opts;
  o.checkpoint_path = path;
  o.checkpoint_every_states = 32;  // several cadences over this lattice

  // The first two checkpoint attempts die (rename = the commit point);
  // later cadences go through.
  support::ScopedFaultPlan plan(
      "op=rename,path=*faulted.ckpt,nth=1,err=ENOSPC;"
      "op=rename,path=*faulted.ckpt,nth=2,err=EIO");
  const ExploreResult r = explore(w.prg, w.kc, w.init, o);

  expect_same_verdict(clean, r);
  EXPECT_EQ(r.checkpoint_write_failures, 2u);
  // A later cadence (or the final write) succeeded, and what landed on
  // disk is a loadable, untorn checkpoint.
  EXPECT_TRUE(r.checkpointed);
  EXPECT_NO_THROW(Checkpoint::load(path));
}

TEST(DiskFault, EveryCheckpointWriteFailingStillReachesTheVerdict) {
  const Lattice w(5, 8);
  ExploreOptions clean_opts;
  clean_opts.stop_at_first_violation = false;
  const ExploreResult clean = explore(w.prg, w.kc, w.init, clean_opts);

  const std::string path = testing::TempDir() + "/always_fails.ckpt";
  ExploreOptions o = clean_opts;
  o.checkpoint_path = path;
  o.checkpoint_every_states = 64;

  support::ScopedFaultPlan plan(
      "op=write,path=*always_fails.ckpt,every=1,err=ENOSPC");
  const ExploreResult r = explore(w.prg, w.kc, w.init, o);

  expect_same_verdict(clean, r);
  EXPECT_GT(r.checkpoint_write_failures, 0u);
  EXPECT_FALSE(r.checkpointed);
}

TEST(DiskFault, ParallelEngineSurvivesCheckpointFaults) {
  const Lattice w(5, 8);
  ExploreOptions clean_opts;
  clean_opts.stop_at_first_violation = false;
  const ExploreResult clean = explore(w.prg, w.kc, w.init, clean_opts);

  const std::string path = testing::TempDir() + "/par_fault.ckpt";
  ExploreOptions o = clean_opts;
  o.num_threads = 2;
  o.checkpoint_path = path;
  o.checkpoint_every_states = 64;

  support::ScopedFaultPlan plan("op=rename,path=*par_fault.ckpt,nth=1");
  const ExploreResult r = explore(w.prg, w.kc, w.init, o);
  EXPECT_EQ(r.exhaustive, clean.exhaustive);
  EXPECT_EQ(r.states_visited, clean.states_visited);
  EXPECT_EQ(r.transitions, clean.transitions);
  EXPECT_GE(r.checkpoint_write_failures, 1u);
}

}  // namespace
}  // namespace cac::sched
