// The tiered StateStore: spill/rematerialize transparency, delta
// chains, bloom-filtered dedup.
//
// The contract under test (docs/explorer.md "Tiered storage"):
//
//  * evicting fragments — to the warm encoded tier or to the on-disk
//    spill segment — never changes what materialize() returns, what
//    machine_hash() reports, or which machines dedup to which ids;
//  * delta chains never exceed the configured depth, and depth 0
//    disables delta encoding entirely;
//  * the bloom pre-check is an accelerator, not an oracle: with every
//    filter bit saturated (hash_mask 0 drives all traffic into one
//    shard), dedup still rests on structural equality alone;
//  * configure() on a live store (the resume path) applies new tier
//    knobs without disturbing stored states.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "programs/corpus.h"
#include "sched/explore.h"
#include "sched/state_store.h"
#include "sem/launch.h"
#include "sem/step.h"

namespace cac::sched {
namespace {

/// The dense interleaving lattice from the checkpoint suite: plenty of
/// distinct states reachable by stepping, no violations.
struct Lattice {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;

  explicit Lattice(std::uint32_t instrs, std::uint32_t threads = 8)
      : prg(programs::straightline_program(instrs)),
        kc{{1, 1, 1}, {threads, 1, 1}, 2},
        init(sem::Launch(prg, kc, mem::MemSizes{}).machine()) {}
};

/// Walk a pseudo-random schedule from `init`, collecting each machine
/// along the way.  The walk shape (long runs of single-warp steps)
/// produces exactly the parent-chained inserts the delta tier is
/// built for.
std::vector<sem::Machine> random_walk(const ptx::Program& prg,
                                      const sem::KernelConfig& kc,
                                      const sem::Machine& init,
                                      std::uint64_t seed,
                                      std::size_t steps) {
  std::mt19937_64 rng(seed);
  std::vector<sem::Machine> out;
  sem::Machine m = init;
  out.push_back(m);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto eligible = sem::eligible_choices(prg, m.grid);
    if (eligible.empty()) break;
    std::uniform_int_distribution<std::size_t> pick(0, eligible.size() - 1);
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, m, eligible[pick(rng)], {}, nullptr);
    EXPECT_TRUE(sr.ok()) << sr.fault;
    out.push_back(m);
  }
  return out;
}

std::vector<sem::Machine> random_walk(const Lattice& w, std::uint64_t seed,
                                      std::size_t steps) {
  return random_walk(w.prg, w.kc, w.init, seed, steps);
}

/// A vecadd machine: warps with real register files, so fragment
/// encodings are large enough that delta encoding pays (the lattice's
/// two-register warps fall under the break-even slack).
struct VecAdd {
  ptx::Program prg;
  sem::KernelConfig kc;
  sem::Machine init;

  explicit VecAdd(std::uint32_t threads = 8, std::uint32_t warp = 4,
                  std::uint32_t size = 8)
      : prg(programs::vector_add_listing2()), kc{{1, 1, 1}, {threads, 1, 1},
                                                 warp} {
    const programs::VecAddLayout L;
    sem::LaunchSpec spec;
    spec.grid = kc.grid;
    spec.block = kc.block;
    spec.warp_size = kc.warp_size;
    spec.global_bytes = L.global_bytes;
    spec.shared_bytes = 0;
    spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                   {"size", size}};
    for (std::uint32_t i = 0; i < size; ++i) {
      spec.inits.emplace_back(L.a + 4 * i, i);
      spec.inits.emplace_back(L.b + 4 * i, 2 * i);
    }
    init = spec.to_launch(prg).machine();
  }
};

// ---------------------------------------------------------------------
// Spill/rematerialize transparency

TEST(StoreTier, RandomizedSpillRematerializePreservesEverything) {
  const Lattice w(6, 6);

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::vector<sem::Machine> walk = random_walk(w, seed, 120);

    // Reference store: everything hot (budget 0 disables eviction).
    StateStore hot;
    // Tiered store: a budget small enough that insertion itself keeps
    // evicting, plus a spill segment so eviction reaches the cold tier.
    StoreOptions tiered;
    tiered.spill_dir = testing::TempDir();
    tiered.resident_budget_bytes = 16 << 10;
    tiered.delta_max_depth = 6;
    StateStore cold(tiered);

    std::vector<StateId> hot_ids, cold_ids;
    StateId hp{}, cp{};
    for (const sem::Machine& m : walk) {
      const auto a = hot.intern(m, ~0ull, hp);
      const auto b = cold.intern(m, ~0ull, cp);
      ASSERT_TRUE(a.id.valid());
      ASSERT_TRUE(b.id.valid());
      // Chain parents the way the serial explorer does.
      hp = a.id;
      cp = b.id;
      EXPECT_EQ(a.inserted, b.inserted) << "seed " << seed;
      hot_ids.push_back(a.id);
      cold_ids.push_back(b.id);
    }
    EXPECT_EQ(hot.size(), cold.size());

    // Force a full demotion sweep, then check every state survives.
    cold.evict_all();
    EXPECT_GT(cold.stats().hot_evictions, 0u) << "seed " << seed;
    EXPECT_GT(cold.stats().spilled_bytes, 0u) << "seed " << seed;

    std::mt19937_64 order(seed ^ 0xabcdef);
    std::vector<std::size_t> idx(walk.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::shuffle(idx.begin(), idx.end(), order);
    for (const std::size_t i : idx) {
      EXPECT_EQ(cold.materialize(cold_ids[i]), walk[i]) << "seed " << seed;
      EXPECT_EQ(cold.machine_hash(cold_ids[i]),
                hot.machine_hash(hot_ids[i]))
          << "seed " << seed;
    }
    EXPECT_GT(cold.stats().rematerializations, 0u);

    // Re-interning every walked machine after the sweep must dedup —
    // the visited-set property the explorers lean on mid-spill.
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const auto again = cold.intern(walk[i]);
      EXPECT_FALSE(again.inserted) << "seed " << seed << " i " << i;
      EXPECT_EQ(again.id, cold_ids[i]) << "seed " << seed << " i " << i;
    }
  }
}

TEST(StoreTier, WarmOnlyEvictionWorksWithoutSpillDir) {
  // No spill_dir: eviction stops at the warm tier but must still be
  // transparent.
  const Lattice w(5, 6);
  const std::vector<sem::Machine> walk = random_walk(w, 7, 80);

  StoreOptions o;
  o.resident_budget_bytes = 8 << 10;
  StateStore store(o);
  std::vector<StateId> ids;
  StateId parent{};
  for (const sem::Machine& m : walk) {
    const auto r = store.intern(m, ~0ull, parent);
    ASSERT_TRUE(r.id.valid());
    parent = r.id;
    ids.push_back(r.id);
  }
  store.evict_all();
  EXPECT_EQ(store.stats().spilled_bytes, 0u);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    EXPECT_EQ(store.materialize(ids[i]), walk[i]) << i;
  }
}

// ---------------------------------------------------------------------
// Delta chains

TEST(StoreTier, DeltaChainDepthIsBounded) {
  const VecAdd w;
  // A long single-schedule walk maximizes parent chaining.
  const std::vector<sem::Machine> walk =
      random_walk(w.prg, w.kc, w.init, 11, 200);

  for (const std::uint32_t depth : {1u, 3u, 8u}) {
    StoreOptions o;
    o.delta_max_depth = depth;
    StateStore store(o);
    StateId parent{};
    std::vector<StateId> ids;
    for (const sem::Machine& m : walk) {
      const auto r = store.intern(m, ~0ull, parent);
      ASSERT_TRUE(r.id.valid());
      parent = r.id;
      ids.push_back(r.id);
    }
    // Deltas were used...
    EXPECT_GT(store.stats().delta_fragments, 0u) << "depth " << depth;
    // ...and every state still materializes exactly, which bounds the
    // chain implicitly: a chain longer than `depth` would have been
    // re-based at insert, and a broken base link would throw here.
    for (std::size_t i = 0; i < walk.size(); ++i) {
      EXPECT_EQ(store.materialize(ids[i]), walk[i])
          << "depth " << depth << " i " << i;
    }
  }
}

TEST(StoreTier, DeltaDepthZeroDisablesDeltas) {
  const VecAdd w;
  const std::vector<sem::Machine> walk =
      random_walk(w.prg, w.kc, w.init, 13, 100);

  StoreOptions o;
  o.delta_max_depth = 0;
  StateStore store(o);
  StateId parent{};
  for (const sem::Machine& m : walk) {
    const auto r = store.intern(m, ~0ull, parent);
    ASSERT_TRUE(r.id.valid());
    parent = r.id;
  }
  EXPECT_EQ(store.stats().delta_fragments, 0u);
}

TEST(StoreTier, DeeperChainsNeverCostMoreResidentBytes) {
  // The point of deltas: chained fragments shrink the resident
  // footprint on step-shaped insert sequences.
  const VecAdd w;
  const std::vector<sem::Machine> walk =
      random_walk(w.prg, w.kc, w.init, 17, 200);

  auto resident_with_depth = [&](std::uint32_t depth) {
    StoreOptions o;
    o.delta_max_depth = depth;
    StateStore store(o);
    StateId parent{};
    for (const sem::Machine& m : walk) {
      const auto r = store.intern(m, ~0ull, parent);
      parent = r.id;
    }
    store.evict_all();  // demote hot objects so encoded size dominates
    return store.stats().resident_bytes;
  };
  EXPECT_LE(resident_with_depth(8), resident_with_depth(0));
}

// ---------------------------------------------------------------------
// Bloom fallback

TEST(StoreTier, SaturatedBloomStillDedupsByEquality) {
  // hash_mask 0 forces every state and fragment into one shard and
  // saturates its bloom filter after a handful of inserts: from then
  // on every probe is a potential false positive and correctness rests
  // on the exact structural-equality probe.
  const Lattice w(5, 6);
  const std::vector<sem::Machine> walk = random_walk(w, 19, 80);

  StoreOptions o;
  o.hash_mask = 0;
  o.bloom_bits_per_shard = 64;  // tiny: saturates immediately
  StateStore store(o);

  std::vector<StateId> ids;
  for (const sem::Machine& m : walk) {
    const auto r = store.intern(m);
    ASSERT_TRUE(r.id.valid());
    ids.push_back(r.id);
  }
  // Re-intern everything: all dedup hits, none may insert.
  for (std::size_t i = 0; i < walk.size(); ++i) {
    const auto again = store.intern(walk[i]);
    EXPECT_FALSE(again.inserted) << i;
    EXPECT_EQ(again.id, ids[i]) << i;
  }
  EXPECT_EQ(store.size(), ids.size());
  // The saturated filter must have produced false positives (probes
  // that found nothing) without ever producing a false "visited".
  EXPECT_GT(store.stats().bloom_false_positives, 0u);
}

// ---------------------------------------------------------------------
// Live reconfiguration (the resume path)

TEST(StoreTier, ConfigureOnLiveStorePreservesStates) {
  const Lattice w(5, 6);
  const std::vector<sem::Machine> walk = random_walk(w, 23, 60);

  StateStore store;  // default: everything hot, no spill
  std::vector<StateId> ids;
  StateId parent{};
  for (const sem::Machine& m : walk) {
    const auto r = store.intern(m, ~0ull, parent);
    parent = r.id;
    ids.push_back(r.id);
  }

  // The resume path: a default-configured store from checkpoint decode
  // gets this run's tier knobs applied afterwards.
  StoreOptions o;
  o.spill_dir = testing::TempDir();
  o.resident_budget_bytes = 4 << 10;
  store.configure(o);
  store.evict_all();
  EXPECT_GT(store.stats().spilled_bytes, 0u);

  for (std::size_t i = 0; i < walk.size(); ++i) {
    EXPECT_EQ(store.materialize(ids[i]), walk[i]) << i;
    const auto again = store.intern(walk[i]);
    EXPECT_FALSE(again.inserted) << i;
    EXPECT_EQ(again.id, ids[i]) << i;
  }
}

// ---------------------------------------------------------------------
// Whole-engine property: tiering never changes a verdict.

TEST(StoreTier, ExplorationVerdictIdenticalUnderTightBudget) {
  const Lattice w(5, 8);
  ExploreOptions plain;
  plain.stop_at_first_violation = false;
  const ExploreResult full = explore(w.prg, w.kc, w.init, plain);
  ASSERT_TRUE(full.exhaustive);
  ASSERT_GT(full.states_visited, 100u);

  ExploreOptions tight = plain;
  tight.store_spill_dir = testing::TempDir();
  tight.store_resident_budget_bytes = 32 << 10;
  const ExploreResult tiered = explore(w.prg, w.kc, w.init, tight);
  EXPECT_TRUE(tiered.exhaustive);
  EXPECT_EQ(tiered.states_visited, full.states_visited);
  EXPECT_EQ(tiered.transitions, full.transitions);
  EXPECT_EQ(tiered.final_ids.size(), full.final_ids.size());
  const auto af = full.finals();
  const auto bf = tiered.finals();
  for (std::size_t i = 0; i < af.size(); ++i) EXPECT_EQ(af[i], bf[i]);
  // The budget bit: the run actually spilled, and the spilled bytes
  // are excluded from the resident figure.
  EXPECT_GT(tiered.store_stats.spilled_bytes, 0u);
  EXPECT_LT(tiered.store_stats.resident_bytes,
            full.store_stats.resident_bytes);
}

}  // namespace
}  // namespace cac::sched
