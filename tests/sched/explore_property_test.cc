// Property tests for the schedule explorer on random programs:
//  * the deterministic run's final state is among the explored finals,
//  * seeded-random runs only ever produce explored finals,
//  * POR preserves the final-state set,
//  * disjoint-store programs are schedule-independent.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random_program.h"
#include "ptx/emit.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace cac::sched {
namespace {

using testing::RandomProgramOptions;
using testing::Rng;

class ExplorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExplorePropertyTest, FinalsCoverEveryScheduler) {
  Rng rng(GetParam());
  RandomProgramOptions gen;
  gen.n_instrs = 6 + rng.below(8);
  gen.allow_stores = true;  // disjoint per-thread stores at 128+4*tid
  const ptx::Program prg =
      ptx::load_ptx(ptx::emit_ptx(testing::random_program(rng, gen)))
          .kernel("fuzz");

  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // two warps
  sem::Launch launch(prg, kc, mem::MemSizes{256, 0, 0, 0, 1});
  std::uint8_t init[64];
  for (auto& b : init) b = static_cast<std::uint8_t>(rng.next());
  launch.memory().write_init(mem::Space::Global, 0, init, sizeof init);
  const sem::Machine initial = launch.machine();

  ExploreOptions opts;
  const ExploreResult full = explore(prg, kc, initial, opts);
  ASSERT_TRUE(full.exhaustive);
  ASSERT_TRUE(full.all_schedules_terminate());
  // Disjoint stores + thread-local registers: schedule independent.
  EXPECT_TRUE(full.schedule_independent());

  // Deterministic and random schedules land in the explored finals.
  const std::vector<sem::Machine> full_finals = full.finals();
  for (int variant = 0; variant < 3; ++variant) {
    sem::Machine m = initial;
    FirstChoiceScheduler fc;
    RandomScheduler rnd(GetParam() * 31 + variant);
    Scheduler& s = variant == 0 ? static_cast<Scheduler&>(fc)
                                : static_cast<Scheduler&>(rnd);
    ASSERT_TRUE(run(prg, kc, m, s).terminated());
    EXPECT_NE(std::find(full_finals.begin(), full_finals.end(), m),
              full_finals.end());
  }

  // POR agrees on the final-state set.
  ExploreOptions por = opts;
  por.partial_order_reduction = true;
  const ExploreResult reduced = explore(prg, kc, initial, por);
  ASSERT_TRUE(reduced.exhaustive);
  auto hashes = [](const std::vector<sem::Machine>& ms) {
    std::vector<std::uint64_t> h;
    for (const auto& m : ms) h.push_back(m.hash());
    std::sort(h.begin(), h.end());
    return h;
  };
  EXPECT_EQ(hashes(full.finals()), hashes(reduced.finals()));
  EXPECT_LE(reduced.states_visited, full.states_visited);
}

TEST_P(ExplorePropertyTest, CollidingStoresStillCovered) {
  // stride 0: every thread stores to Global[128] — genuinely racy
  // across warps; the explored finals must still cover concrete runs.
  Rng rng(GetParam() ^ 0xabcdef);
  RandomProgramOptions gen;
  gen.n_instrs = 5 + rng.below(6);
  gen.allow_stores = true;
  gen.store_stride = 0;
  gen.allow_branch = false;
  const ptx::Program prg =
      ptx::load_ptx(ptx::emit_ptx(testing::random_program(rng, gen)))
          .kernel("fuzz");

  const sem::KernelConfig kc{{2, 1, 1}, {2, 1, 1}, 2};  // two blocks
  sem::Launch launch(prg, kc, mem::MemSizes{256, 0, 0, 0, 1});
  std::uint8_t init[64];
  for (auto& b : init) b = static_cast<std::uint8_t>(rng.next());
  launch.memory().write_init(mem::Space::Global, 0, init, sizeof init);
  const sem::Machine initial = launch.machine();

  const ExploreResult full = explore(prg, kc, initial, {});
  ASSERT_TRUE(full.exhaustive);
  ASSERT_TRUE(full.all_schedules_terminate());
  const std::vector<sem::Machine> full_finals = full.finals();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sem::Machine m = initial;
    RandomScheduler s(seed);
    ASSERT_TRUE(run(prg, kc, m, s).terminated());
    EXPECT_NE(std::find(full_finals.begin(), full_finals.end(), m),
              full_finals.end());
  }

  ExploreOptions por;
  por.partial_order_reduction = true;
  const ExploreResult reduced = explore(prg, kc, initial, por);
  EXPECT_EQ(full.final_ids.size(), reduced.final_ids.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplorePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cac::sched
