#include "sched/explore.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::sched {
namespace {

using namespace cac::ptx;

sem::Machine plain_machine(const Program& prg, const sem::KernelConfig& kc,
                           mem::MemSizes sizes = {}) {
  return sem::Launch(prg, kc, sizes).machine();
}

TEST(Explore, SingleWarpHasLinearScheduleGraph) {
  const Program prg = programs::straightline_program(3);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc));
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.all_schedules_terminate());
  EXPECT_TRUE(r.schedule_independent());
  // 5 executable instructions -> 6 states in a chain.
  EXPECT_EQ(r.states_visited, 6u);
  EXPECT_EQ(r.transitions, 5u);
  EXPECT_EQ(r.min_steps_to_termination, 5u);
  EXPECT_EQ(r.max_steps_to_termination, 5u);
}

TEST(Explore, TwoWarpInterleavingsConverge) {
  // Two independent warps of a straight-line program: every
  // interleaving leads to the same final state (a diamond lattice).
  const Program prg = programs::straightline_program(2);
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // 2 warps
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc));
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.schedule_independent());
  // Each warp takes 4 steps; the interleaving lattice has 5*5 = 25
  // states and every path has length 8.
  EXPECT_EQ(r.states_visited, 25u);
  EXPECT_EQ(r.min_steps_to_termination, 8u);
  EXPECT_EQ(r.max_steps_to_termination, 8u);
}

TEST(Explore, CycleIsReportedAsViolation) {
  const Program prg("spin", {IBra{0}});
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc));
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::Cycle);
}

TEST(Explore, StuckStateIsReportedWithTrace) {
  const Program& prg = load_ptx(programs::barrier_divergence_ptx())
                           .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc));
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::Stuck);
  EXPECT_FALSE(r.violations[0].trace.empty());
  EXPECT_FALSE(r.all_schedules_terminate());
}

TEST(Explore, FaultIsReportedWithTrace) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("oob",
                    {ILd{Space::Global, UI(32), r1, op_imm(1000)}, IExit{}});
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const ExploreResult r =
      explore(prg, kc, plain_machine(prg, kc, mem::MemSizes{16, 0, 0, 0, 1}));
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::Fault);
  EXPECT_EQ(r.violations[0].trace.size(), 1u);
}

TEST(Explore, DepthBoundYieldsNonExhaustive) {
  const Program prg = programs::straightline_program(50);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  ExploreOptions opts;
  opts.max_depth = 5;
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc), opts);
  EXPECT_FALSE(r.exhaustive);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::DepthExceeded);
}

TEST(Explore, StateLimitYieldsNonExhaustive) {
  const Program prg = programs::straightline_program(10);
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 2};
  ExploreOptions opts;
  opts.max_states = 10;
  opts.stop_at_first_violation = false;
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc), opts);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_LE(r.states_visited, 10u);
}

TEST(Explore, BarrierSerializesSchedules) {
  // Two warps meeting at a barrier: all schedules funnel through the
  // single lift-bar state and agree afterwards.
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("bar", {IMov{r1, op_sreg(SregKind::Tid, Dim::X)},
                            IBar{}, INop{}, IExit{}});
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  mem::MemSizes s;
  s.shared = 8;
  const ExploreResult r = explore(prg, kc, plain_machine(prg, kc, s));
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.schedule_independent());
  EXPECT_EQ(r.min_steps_to_termination, r.max_steps_to_termination);
  EXPECT_EQ(r.min_steps_to_termination, 5u);  // 2 movs + lift + 2 nops
}

TEST(Explore, RacyProgramHasMultipleFinals) {
  // Warp 0 and warp 1 both store to Global[0] (different values) in
  // separate instructions: the outcome depends on the schedule.
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("race",
                    {IMov{r1, op_sreg(SregKind::CtaId, Dim::X)},
                     ISt{Space::Global, UI(32), op_imm(0), r1}, IExit{}});
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};  // 2 blocks
  const ExploreResult r =
      explore(prg, kc, plain_machine(prg, kc, mem::MemSizes{8, 0, 0, 0, 1}));
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.all_schedules_terminate());
  EXPECT_FALSE(r.schedule_independent());
  EXPECT_EQ(r.final_ids.size(), 2u);
}

}  // namespace
}  // namespace cac::sched
