// The performance lint passes: every kernel of examples/buggy/perf/
// yields exactly its pinned findings with exact cost numbers, the
// clean control and the well-formed corpus kernels stay silent, and
// the static transaction/conflict verdicts agree with a concrete
// address-trace replay through the semantics on a one-warp launch.
#include "analysis/perf.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/costmodel.h"
#include "analysis/lint.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "sem/step.h"

namespace cac::analysis {
namespace {

std::string read_perf(const std::string& name) {
  const std::string path =
      std::string(CAC_SOURCE_DIR "/examples/buggy/perf/") + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

PerfReport perf_source(const std::string& text, const LaunchEnv& env = {}) {
  const ptx::LoweredModule mod = ptx::load_ptx(text);
  EXPECT_EQ(mod.kernels.size(), 1u);
  const ptx::Program& prg = mod.kernels.front();
  return analyze_perf(prg, mod.locs_for(prg), env);
}

// --- the seeded perf corpus, exact costs pinned ------------------------

TEST(PerfCorpus, StridedVecAdd) {
  const PerfReport r = perf_source(read_perf("strided_vecadd.ptx"));
  ASSERT_EQ(r.findings.size(), 3u);
  for (const PerfFinding& f : r.findings) {
    EXPECT_EQ(f.kind, PerfKind::UncoalescedGlobal);
    EXPECT_EQ(f.transactions_per_warp, 4u);
    EXPECT_EQ(f.ideal_transactions, 1u);
  }
  EXPECT_EQ(r.findings[0].loc.line, 39u);  // ld B
  EXPECT_EQ(r.findings[1].loc.line, 40u);  // ld A
  EXPECT_EQ(r.findings[2].loc.line, 45u);  // st C
  EXPECT_NE(r.findings[2].message.find("store"), std::string::npos);
}

TEST(PerfCorpus, TransposeColMajor) {
  const PerfReport r = perf_source(read_perf("transpose_colmajor.ptx"));
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, PerfKind::SharedBankConflict);
  EXPECT_EQ(r.findings[0].conflict_degree, 32u);
  EXPECT_EQ(r.findings[0].loc.line, 18u);
}

TEST(PerfCorpus, PitchPow2) {
  const PerfReport r = perf_source(read_perf("pitch_pow2.ptx"));
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, PerfKind::SharedBankConflict);
  EXPECT_EQ(r.findings[0].conflict_degree, 16u);
  EXPECT_EQ(r.findings[0].loc.line, 19u);
}

TEST(PerfCorpus, DivergentReduce) {
  const PerfReport r = perf_source(read_perf("divergent_reduce.ptx"));
  ASSERT_EQ(r.findings.size(), 1u);
  const PerfFinding& f = r.findings[0];
  EXPECT_EQ(f.kind, PerfKind::DivergentRegion);
  EXPECT_EQ(f.loc.line, 23u);  // the @%p1 bra
  EXPECT_EQ(f.divergent_insns, 6u);
  EXPECT_EQ(f.global_loads, 1u);
  EXPECT_NE(f.message.find("1 global load"), std::string::npos);
}

TEST(PerfCorpus, CoalescedCopyIsClean) {
  const PerfReport r = perf_source(read_perf("coalesced_copy.ptx"));
  EXPECT_TRUE(r.clean()) << r.findings.size() << " unexpected finding(s): "
                         << (r.findings.empty() ? ""
                                                : r.findings[0].message);
}

// The boundary guard (`gid < n`) is affine, hence monotone across the
// warp — the divergent branch it feeds must never be flagged.
TEST(PerfCorpus, BoundaryGuardNotFlagged) {
  for (const char* name : {"strided_vecadd.ptx", "coalesced_copy.ptx"}) {
    const PerfReport r = perf_source(read_perf(name));
    for (const PerfFinding& f : r.findings) {
      EXPECT_NE(f.kind, PerfKind::DivergentRegion) << name;
    }
  }
}

// --- existing well-formed kernels stay silent --------------------------

TEST(PerfClean, CoalescedCorpusKernels) {
  for (const auto& [text, kernel] :
       std::vector<std::pair<std::string, std::string>>{
           {programs::vector_add_ptx(), "add_vector"},
           {programs::saxpy_ptx(), "saxpy"},
           {programs::copy_v2_ptx(), "copy_v2"}}) {
    const ptx::LoweredModule mod = ptx::load_ptx(text);
    const ptx::Program prg = mod.kernel(kernel);
    const PerfReport r = analyze_perf(prg, mod.locs_for(prg));
    for (const PerfFinding& f : r.findings) {
      EXPECT_NE(f.kind, PerfKind::UncoalescedGlobal)
          << kernel << ": " << f.message;
    }
  }
}

// --- the cost model, directly ------------------------------------------

TEST(CostModel, IdealTransactions) {
  EXPECT_EQ(ideal_transactions(1), 1u);
  EXPECT_EQ(ideal_transactions(4), 1u);
  EXPECT_EQ(ideal_transactions(8), 2u);
}

TEST(CostModel, BroadcastIsConflictFree) {
  WarpOffsets off;  // every lane reads the same word
  EXPECT_EQ(shared_conflict_degree(off, 4), 1u);
}

TEST(CostModel, StrideOne64BitIsConflictFree) {
  // 8-byte accesses at stride 8 span two words per lane, but the
  // hardware issues them as two half-warp phases — no conflict.
  WarpOffsets off;
  for (unsigned l = 0; l < kWarpLanes; ++l) off.byte_off[l] = 8 * l;
  EXPECT_EQ(shared_conflict_degree(off, 8), 1u);
  EXPECT_EQ(global_transactions(off, 8), 2u);
}

TEST(CostModel, TopAddressIsUnknown) {
  EXPECT_FALSE(warp_offsets(AffineExpr::top()).has_value());
}

TEST(CostModel, OffAxisWarpIsUnknown) {
  // A known launch whose ntid.x is not a multiple of the warp size
  // breaks the x-major warp assumption: no verdict, not a wrong one.
  LaunchEnv env;
  env.known = true;
  env.ntid[0] = 20;
  const AffineExpr addr =
      AffineExpr::symbol(Sym{Sym::Kind::Tid, 0, 0}).scaled(4);
  EXPECT_FALSE(warp_offsets(addr, env).has_value());
  EXPECT_TRUE(warp_offsets(addr).has_value());
}

TEST(CostModel, ModuloAddressEvaluatesPerLane) {
  // tid % 8 scaled by 4: lanes cycle through two words repeatedly —
  // distinct words 8, all in banks 0..7, one word per bank.
  const AffineExpr tid = AffineExpr::symbol(Sym{Sym::Kind::Tid, 0, 0});
  const AffineExpr addr = tid.rem(8).scaled(4);
  const auto off = warp_offsets(addr);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->byte_off[0], 0);
  EXPECT_EQ(off->byte_off[7], 28);
  EXPECT_EQ(off->byte_off[8], 0);
  EXPECT_EQ(shared_conflict_degree(*off, 4), 1u);
}

// --- static verdicts vs a concrete address trace -----------------------

/// Replay one warp (block of 32, warp size 32) and collect, per
/// executed memory instruction, the set of lane accesses it issued.
void replay_accesses(const ptx::Program& prg, sem::Launch& launch,
                     const sem::KernelConfig& kc,
                     std::vector<std::vector<sem::StepEvents::Access>>& out) {
  sem::Machine m = launch.machine();
  sched::RoundRobinScheduler sched;
  sem::StepOptions step_opts;
  step_opts.log_accesses = true;
  sem::StepEvents events;
  for (std::uint64_t step = 0; step < 10000; ++step) {
    if (sem::terminated(prg, m.grid)) return;
    const auto eligible = sem::eligible_choices(prg, m.grid);
    ASSERT_FALSE(eligible.empty()) << "stuck during replay";
    const sem::Choice c = sched.pick(eligible, m);
    events.clear();
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, m, c, step_opts, &events);
    ASSERT_TRUE(sr.ok()) << sr.fault;
    if (!events.accesses.empty()) out.push_back(events.accesses);
  }
}

unsigned segments_touched(const std::vector<sem::StepEvents::Access>& warp) {
  std::set<std::uint64_t> segs;
  for (const auto& a : warp) {
    for (std::uint32_t b = 0; b < a.len; ++b) {
      segs.insert((a.addr + b) / kSegmentBytes);
    }
  }
  return static_cast<unsigned>(segs.size());
}

unsigned dynamic_conflict_degree(
    const std::vector<sem::StepEvents::Access>& warp) {
  std::map<std::uint64_t, std::set<std::uint64_t>> words_per_bank;
  for (const auto& a : warp) {
    const std::uint64_t word = a.addr / kBankBytes;
    words_per_bank[word % kSharedBanks].insert(word);
  }
  unsigned degree = 1;
  for (const auto& [bank, words] : words_per_bank) {
    degree = std::max<unsigned>(degree, words.size());
  }
  return degree;
}

TEST(PerfCrossCheck, StridedVecAddTransactionsMatchReplay) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_perf("strided_vecadd.ptx"));
  const ptx::Program& prg = mod.kernels.front();

  // Static verdict: 4 transactions per warp at every site.
  const PerfReport r = analyze_perf(prg, mod.locs_for(prg));
  ASSERT_EQ(r.findings.size(), 3u);

  // Concrete replay: one full warp, arrays at 128-byte-aligned bases.
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{2048, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("arr_B", 512).param("arr_C", 1024)
      .param("size", 32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    launch.global_u32(16 * i, i);
    launch.global_u32(512 + 16 * i, i);
  }
  std::vector<std::vector<sem::StepEvents::Access>> trace;
  replay_accesses(prg, launch, kc, trace);

  unsigned global_steps = 0;
  for (const auto& warp : trace) {
    if (warp.front().space != ptx::Space::Global) continue;
    ++global_steps;
    EXPECT_EQ(warp.size(), 32u);
    EXPECT_EQ(segments_touched(warp), 4u);
  }
  EXPECT_EQ(global_steps, 3u);  // two loads + one store
}

TEST(PerfCrossCheck, CoalescedCopyIsOneTransactionInReplay) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_perf("coalesced_copy.ptx"));
  const ptx::Program& prg = mod.kernels.front();
  ASSERT_TRUE(analyze_perf(prg, mod.locs_for(prg)).clean());

  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{512, 0, 0, 0, 1});
  launch.param("src", 0).param("dst", 256).param("size", 32);
  for (std::uint32_t i = 0; i < 32; ++i) launch.global_u32(4 * i, i);
  std::vector<std::vector<sem::StepEvents::Access>> trace;
  replay_accesses(prg, launch, kc, trace);

  unsigned global_steps = 0;
  for (const auto& warp : trace) {
    if (warp.front().space != ptx::Space::Global) continue;
    ++global_steps;
    EXPECT_EQ(segments_touched(warp), 1u);  // the ideal the model claims
  }
  EXPECT_EQ(global_steps, 2u);  // one load + one store
}

TEST(PerfCrossCheck, TransposeConflictDegreeMatchesReplay) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_perf("transpose_colmajor.ptx"));
  const ptx::Program& prg = mod.kernels.front();
  const PerfReport r = analyze_perf(prg, mod.locs_for(prg));
  ASSERT_EQ(r.findings.size(), 1u);

  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 4096, 0, 1});
  std::vector<std::vector<sem::StepEvents::Access>> trace;
  replay_accesses(prg, launch, kc, trace);

  unsigned shared_steps = 0;
  for (const auto& warp : trace) {
    if (warp.front().space != ptx::Space::Shared) continue;
    ++shared_steps;
    EXPECT_EQ(dynamic_conflict_degree(warp), r.findings[0].conflict_degree);
  }
  EXPECT_EQ(shared_steps, 1u);
}

// --- the lint integration ----------------------------------------------

TEST(PerfLint, FindingsFoldInAsWarnings) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_perf("strided_vecadd.ptx"));
  const ptx::Program& prg = mod.kernels.front();
  LintOptions opts;
  opts.shared_bytes = mod.shared_bytes;
  opts.perf = true;
  const LintReport r = lint_kernel(prg, mod.locs_for(prg), opts);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.errors(), 0u);  // warnings are exit-code-neutral
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.pass, Pass::UncoalescedGlobal);
    EXPECT_EQ(f.severity, Severity::Warning);
    ASSERT_EQ(f.cost.size(), 2u);
    EXPECT_EQ(f.cost[0].first, "transactions_per_warp");
    EXPECT_EQ(f.cost[0].second, 4u);
    EXPECT_EQ(f.cost[1].first, "ideal_transactions");
    EXPECT_EQ(f.cost[1].second, 1u);
  }
}

TEST(PerfLint, OffByDefault) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_perf("strided_vecadd.ptx"));
  const ptx::Program& prg = mod.kernels.front();
  LintOptions opts;
  opts.shared_bytes = mod.shared_bytes;
  const LintReport r = lint_kernel(prg, mod.locs_for(prg), opts);
  EXPECT_TRUE(r.clean());
}

}  // namespace
}  // namespace cac::analysis
