// The affine abstract domain and the address interpreter
// (analysis/affine.h), plus the pair classifier's launch-specialized
// verdicts on the vecadd corpus kernel.
#include "analysis/affine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "analysis/disjoint.h"
#include "analysis/lint.h"
#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::analysis {
namespace {

const Sym kTidX{Sym::Kind::Tid, 0, 0};
const Sym kCtaIdX{Sym::Kind::CtaId, 0, 0};
const Sym kNTidX{Sym::Kind::NTid, 0, 0};
const Sym kGidX{Sym::Kind::GidBase, 0, 0};

TEST(AffineExpr, ConstantFolding) {
  const AffineExpr e = AffineExpr::constant(3).add(AffineExpr::constant(4));
  ASSERT_TRUE(e.is_const());
  EXPECT_EQ(e.constant_term(), 7);
  EXPECT_EQ(
      AffineExpr::constant(6).mul(AffineExpr::constant(7)).constant_term(),
      42);
}

TEST(AffineExpr, SymbolArithmetic) {
  const AffineExpr tid = AffineExpr::symbol(kTidX);
  const AffineExpr e = tid.scaled(4).add(AffineExpr::constant(8));
  ASSERT_FALSE(e.is_top());
  EXPECT_EQ(e.constant_term(), 8);
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].sym, kTidX);
  EXPECT_EQ(e.terms()[0].coeff, 4);
  // 4·tid + 8 - 4·tid cancels back to the constant.
  const AffineExpr c = e.sub(tid.scaled(4));
  ASSERT_TRUE(c.is_const());
  EXPECT_EQ(c.constant_term(), 8);
}

TEST(AffineExpr, TopAbsorbs) {
  EXPECT_TRUE(AffineExpr::top().is_top());
  EXPECT_TRUE(AffineExpr::top().add(AffineExpr::constant(1)).is_top());
  // tid * tid is not affine.
  EXPECT_TRUE(
      AffineExpr::symbol(kTidX).mul(AffineExpr::symbol(kTidX)).is_top());
}

TEST(AffineExpr, OverflowGoesToTop) {
  const AffineExpr big =
      AffineExpr::constant(std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(big.add(AffineExpr::constant(1)).is_top());
  EXPECT_TRUE(big.mul(AffineExpr::constant(2)).is_top());
  EXPECT_TRUE(
      AffineExpr::symbol(kTidX).scaled(1ll << 62).scaled(4).is_top());
}

TEST(AffineExpr, GidBaseFusion) {
  // ctaid.x * ntid.x is the one non-linear product the domain keeps.
  const AffineExpr e =
      AffineExpr::symbol(kCtaIdX).mul(AffineExpr::symbol(kNTidX));
  ASSERT_FALSE(e.is_top());
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].sym, kGidX);
  EXPECT_EQ(e.terms()[0].coeff, 1);
  // Mismatched dims do not fuse.
  EXPECT_TRUE(AffineExpr::symbol(kCtaIdX)
                  .mul(AffineExpr::symbol(Sym{Sym::Kind::NTid, 1, 0}))
                  .is_top());
}

TEST(AffineSymRange, FollowsTheLaunch) {
  LaunchEnv env;
  env.known = true;
  env.ntid[0] = 8;
  env.nctaid[0] = 2;
  const auto tid = sym_range(kTidX, env);
  ASSERT_TRUE(tid.has_value());
  EXPECT_EQ(*tid, (std::pair<std::int64_t, std::int64_t>{0, 7}));
  const auto cta = sym_range(kCtaIdX, env);
  ASSERT_TRUE(cta.has_value());
  EXPECT_EQ(*cta, (std::pair<std::int64_t, std::int64_t>{0, 1}));
  EXPECT_FALSE(sym_range(kTidX, LaunchEnv{}).has_value());
}

// --- the interpreter on the vecadd corpus kernel -----------------------

ptx::Program vecadd() {
  return ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
}

TEST(AnalyzeAddresses, VecAddSitesAreAffine) {
  const ptx::Program prg = vecadd();
  const std::vector<AccessSite> sites = analyze_addresses(prg);
  ASSERT_EQ(sites.size(), 3u);  // ld A, ld B, st C
  for (const AccessSite& s : sites) {
    EXPECT_EQ(s.space, ptx::Space::Global);
    EXPECT_EQ(s.width, 4u);
    ASSERT_FALSE(s.addr.is_top()) << "pc " << s.pc;
    // addr = param + 4·gid = param + 4·(ctaid·ntid) + 4·tid.
    bool saw_tid = false, saw_gid = false, saw_param = false;
    for (const Term& t : s.addr.terms()) {
      if (t.sym.kind == Sym::Kind::Tid) {
        saw_tid = true;
        EXPECT_EQ(t.coeff, 4);
      } else if (t.sym.kind == Sym::Kind::GidBase) {
        saw_gid = true;
        EXPECT_EQ(t.coeff, 4);
      } else if (t.sym.kind == Sym::Kind::Param) {
        saw_param = true;
        EXPECT_EQ(t.coeff, 1);
      }
    }
    EXPECT_TRUE(saw_tid && saw_gid && saw_param);
  }
  EXPECT_FALSE(sites[0].write);
  EXPECT_FALSE(sites[1].write);
  EXPECT_TRUE(sites[2].write);
  EXPECT_LT(sites[0].pc, sites[1].pc);
  EXPECT_LT(sites[1].pc, sites[2].pc);
}

LaunchEnv vecadd_env(const ptx::Program& prg) {
  LaunchEnv env;
  env.known = true;
  env.ntid[0] = 8;
  env.nctaid[0] = 2;
  const programs::VecAddLayout L;
  for (const ptx::ParamSlot& slot : prg.params()) {
    if (slot.name == "arr_A") env.params[slot.offset] = L.a;
    if (slot.name == "arr_B") env.params[slot.offset] = L.b;
    if (slot.name == "arr_C") env.params[slot.offset] = L.c;
    if (slot.name == "size") env.params[slot.offset] = 16;
  }
  return env;
}

TEST(AnalyzeAddresses, KnownLaunchProvesVecAddIndependent) {
  // Under the concrete launch the three buffers are 0x100 apart and
  // every thread owns one 4-byte slot, so all three sites are
  // independent of everything — the POR oracle's whole point.
  const ptx::Program prg = vecadd();
  const std::vector<AccessSite> sites = analyze_addresses(prg);
  ASSERT_EQ(sites.size(), 3u);
  const std::vector<std::uint32_t> pcs =
      independent_access_pcs(prg, vecadd_env(prg));
  ASSERT_EQ(pcs.size(), 3u);
  EXPECT_EQ(pcs[0], sites[0].pc);
  EXPECT_EQ(pcs[1], sites[1].pc);
  EXPECT_EQ(pcs[2], sites[2].pc);
}

TEST(AnalyzeAddresses, UnknownLaunchProvesNothingForVecAdd) {
  // Without the launch, two distinct threads may share tid.x (a
  // multi-dim block), so the store's self-pair cannot be ruled out.
  const ptx::Program prg = vecadd();
  EXPECT_TRUE(independent_access_pcs(prg).empty());
}

TEST(ClassifyPair, ConstantWindows) {
  AccessSite a{0, ptx::Space::Shared, true, false, 4,
               AffineExpr::constant(0)};
  AccessSite b{1, ptx::Space::Shared, false, false, 4,
               AffineExpr::constant(4)};
  EXPECT_EQ(classify_pair(a, b), PairVerdict::Disjoint);
  b.addr = AffineExpr::constant(2);  // overlaps [0,4) with a write
  EXPECT_EQ(classify_pair(a, b), PairVerdict::ProvablyRacing);
  a.write = false;  // read/read overlap is not a race
  EXPECT_EQ(classify_pair(a, b), PairVerdict::MayConflict);
}

TEST(ClassifyPair, StrideWindowRule) {
  // addr = 8·tid vs 8·tid + 4: same varying part, offset 4, widths 4
  // fit the gcd-8 window -> disjoint for distinct threads.
  const AffineExpr stride8 = AffineExpr::symbol(kTidX).scaled(8);
  const AccessSite a{0, ptx::Space::Shared, true, false, 4, stride8};
  const AccessSite b{1, ptx::Space::Shared, true, false, 4,
                     stride8.add(AffineExpr::constant(4))};
  EXPECT_EQ(classify_pair(a, b), PairVerdict::Disjoint);
  // Width 8 no longer fits the residue window.
  const AccessSite wide{1, ptx::Space::Shared, true, false, 8,
                        stride8.add(AffineExpr::constant(4))};
  EXPECT_EQ(classify_pair(a, wide), PairVerdict::MayConflict);
}

TEST(ClassifyPair, TopIsMayConflict) {
  const AccessSite a{0, ptx::Space::Global, true, false, 4,
                     AffineExpr::top()};
  EXPECT_EQ(classify_pair(a, a), PairVerdict::MayConflict);
}

// --- the modulo component ----------------------------------------------

TEST(AffineMod, ConstantAndCanonicalization) {
  EXPECT_EQ(AffineExpr::constant(13).rem(8).constant_term(), 5);
  // (34·tid) mod 32 and (2·tid) mod 32 are the same function — the
  // canonicalized coefficients make them structurally equal.
  const AffineExpr tid = AffineExpr::symbol(kTidX);
  EXPECT_EQ(tid.scaled(34).rem(32), tid.scaled(2).rem(32));
  const AffineExpr e = tid.rem(2);
  ASSERT_TRUE(e.has_mod());
  EXPECT_EQ(e.modulus(), 2);
  EXPECT_EQ(e.mod_scale(), 1);
  ASSERT_EQ(e.mod_terms().size(), 1u);
  EXPECT_EQ(e.mod_terms()[0].sym, kTidX);
}

TEST(AffineMod, RequiresProvableNonnegativity) {
  const AffineExpr tid = AffineExpr::symbol(kTidX);
  EXPECT_TRUE(tid.provably_nonneg());
  // tid - 1 may be negative at tid = 0: PTX rem truncates toward
  // zero, so the mathematical-mod reading would be wrong.
  EXPECT_TRUE(tid.sub(AffineExpr::constant(1)).rem(4).is_top());
  // An unvalued parameter has unknown sign.
  const AffineExpr param = AffineExpr::symbol(Sym{Sym::Kind::Param, 0, 0});
  EXPECT_FALSE(param.provably_nonneg());
  EXPECT_TRUE(param.rem(4).is_top());
}

TEST(AffineMod, RemaskFoldsNestingDoesNot) {
  const AffineExpr tid = AffineExpr::symbol(kTidX);
  // (tid mod 32) mod 8 == tid mod 8 when 8 divides 32.
  EXPECT_EQ(tid.rem(32).rem(8), tid.rem(8));
  // A non-divisor re-mask would need nested mods: ⊤.
  EXPECT_TRUE(tid.rem(32).rem(5).is_top());
  // So would mod of a mixed affine+mod expression.
  EXPECT_TRUE(tid.rem(8).add(tid).rem(4).is_top());
}

TEST(AffineMod, ScaledAndAdded) {
  // sh[4·(tid mod 8) + 64] — the cyclic-buffer idiom stays exact.
  const AffineExpr tid = AffineExpr::symbol(kTidX);
  const AffineExpr e =
      tid.rem(8).scaled(4).add(AffineExpr::constant(64));
  ASSERT_TRUE(e.has_mod());
  EXPECT_EQ(e.mod_scale(), 4);
  EXPECT_EQ(e.constant_term(), 64);
  // The range needs no launch: the component lies in [0, 7]·4.
  const auto r = expr_range(e, LaunchEnv{});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::pair<std::int64_t, std::int64_t>{64, 92}));
}

TEST(AffineMod, MulWithModGoesToTop) {
  const AffineExpr m = AffineExpr::symbol(kTidX).rem(4);
  EXPECT_TRUE(m.mul(AffineExpr::symbol(kNTidX)).is_top());
}

// --- path-sensitive guards ---------------------------------------------

TEST(AffineGuards, GuardTightensRange) {
  const AffineExpr tid = AffineExpr::symbol(kTidX);
  // Fact: tid - 16 < 0, i.e. tid < 16 — bounds tid without a launch.
  const Guard g{tid.sub(AffineExpr::constant(16)), ptx::CmpOp::Lt};
  EXPECT_FALSE(expr_range(tid.scaled(4), LaunchEnv{}).has_value());
  const auto r = expr_range(tid.scaled(4), LaunchEnv{}, {g});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::pair<std::int64_t, std::int64_t>{0, 60}));
  // The negation bounds from below instead.
  const auto rn = expr_range(tid.scaled(4), LaunchEnv{}, {negate(g)});
  EXPECT_FALSE(rn.has_value());  // no upper bound
}

TEST(AffineGuards, NegateRoundTrips) {
  const Guard g{AffineExpr::symbol(kTidX), ptx::CmpOp::Lt};
  EXPECT_EQ(negate(negate(g)), g);
  EXPECT_EQ(negate(g).cmp, ptx::CmpOp::Ge);
  EXPECT_EQ(negate(Guard{g.expr, ptx::CmpOp::Eq}).cmp, ptx::CmpOp::Ne);
}

TEST(AffineGuards, BranchEdgesCarryFacts) {
  // vecadd: the guarded body holds `gid - size < 0`; the taken edge of
  // the @%p1 bra holds the Ge fact.
  const ptx::Program prg = vecadd();
  const ProgramFacts facts = analyze_program(prg);
  ASSERT_EQ(facts.sites.size(), 3u);
  for (const AccessSite& s : facts.sites) {
    ASSERT_EQ(s.guards.size(), 1u) << "pc " << s.pc;
    EXPECT_EQ(s.guards[0].cmp, ptx::CmpOp::Lt);
  }
  ASSERT_EQ(facts.taken_facts.size(), 1u);
  EXPECT_EQ(facts.taken_facts.begin()->second.cmp, ptx::CmpOp::Ge);
}

TEST(AffineGuards, GuardSuppressesSharedOverflow) {
  // st.shared at 4·tid under `if (tid < 8)`: without the guard a
  // 32-thread launch provably overflows the 32-byte layout; the guard
  // proves the access in bounds, so the lint stays quiet.
  const char* guarded = R"(
.version 6.0
.target sm_30
.address_size 64
.visible .entry guarded()
{
  .reg .pred %p<2>;
  .reg .u32 %r<5>;
  .shared .align 4 .b8 sh[32];
  mov.u32 %r1, %tid.x;
  setp.ge.u32 %p1, %r1, 8;
  @%p1 bra DONE;
  mov.u32 %r2, sh;
  shl.b32 %r3, %r1, 2;
  add.u32 %r4, %r2, %r3;
  st.shared.u32 [%r4], %r1;
DONE:
  ret;
}
)";
  const char* unguarded = R"(
.version 6.0
.target sm_30
.address_size 64
.visible .entry unguarded()
{
  .reg .u32 %r<5>;
  .shared .align 4 .b8 sh[32];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, sh;
  shl.b32 %r3, %r1, 2;
  add.u32 %r4, %r2, %r3;
  st.shared.u32 [%r4], %r1;
  ret;
}
)";
  LintOptions opts;
  opts.shared_bytes = 32;
  opts.check_races = false;
  opts.launch.known = true;
  opts.launch.ntid[0] = 32;

  const ptx::LoweredModule bad = ptx::load_ptx(unguarded);
  const LintReport rb =
      lint_kernel(bad.kernels.front(), {}, opts);
  ASSERT_EQ(rb.findings.size(), 1u);
  EXPECT_EQ(rb.findings[0].pass, Pass::SharedOverflow);

  const ptx::LoweredModule good = ptx::load_ptx(guarded);
  const LintReport rg =
      lint_kernel(good.kernels.front(), {}, opts);
  EXPECT_TRUE(rg.clean())
      << render_text(rg, "guarded.ptx", "guarded");
}

}  // namespace
}  // namespace cac::analysis
