// The lint passes: zero findings on every well-formed corpus kernel,
// and exactly the seeded defect (with its source location) on each
// file of examples/buggy/.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::analysis {
namespace {

std::string read_buggy(const std::string& name) {
  const std::string path =
      std::string(CAC_SOURCE_DIR "/examples/buggy/") + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> lint_source(const std::string& text,
                                 LintOptions opts = {}) {
  const ptx::LoweredModule mod = ptx::load_ptx(text);
  EXPECT_EQ(mod.kernels.size(), 1u);
  const ptx::Program& prg = mod.kernels.front();
  if (opts.shared_bytes == 0) opts.shared_bytes = mod.shared_bytes;
  return lint_kernel(prg, mod.locs_for(prg), opts).findings;
}

// --- every well-formed corpus kernel is clean --------------------------

void expect_clean(const std::string& text, const std::string& kernel) {
  const ptx::LoweredModule mod = ptx::load_ptx(text);
  const ptx::Program prg = mod.kernel(kernel);
  LintOptions opts;
  opts.shared_bytes = mod.shared_bytes;
  const LintReport r = lint_kernel(prg, mod.locs_for(prg), opts);
  EXPECT_TRUE(r.clean()) << kernel << ":\n"
                         << render_text(r, kernel + ".ptx", kernel);
}

TEST(LintClean, AllCorpusKernels) {
  expect_clean(programs::vector_add_ptx(), "add_vector");
  expect_clean(programs::xor_cipher_ptx(), "xor_cipher");
  expect_clean(programs::scan_signature_ptx(), "scan_signature");
  expect_clean(programs::reduce_shared_ptx(), "reduce");
  expect_clean(programs::atomic_sum_ptx(), "atomic_sum");
  expect_clean(programs::histogram_ptx(), "histogram");
  expect_clean(programs::saxpy_ptx(), "saxpy");
  expect_clean(programs::copy_v2_ptx(), "copy_v2");
  expect_clean(programs::warp_reduce_shfl_ptx(), "warp_reduce");
  expect_clean(programs::scan_prefix_ptx(), "scan_prefix");
}

// --- the seeded-defect corpus ------------------------------------------

TEST(LintBuggy, DivergentBarrier) {
  const auto f = lint_source(read_buggy("divergent_barrier.ptx"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].pass, Pass::BarrierDivergence);
  EXPECT_EQ(f[0].severity, Severity::Error);
  EXPECT_EQ(f[0].loc.line, 16u);
}

TEST(LintBuggy, UninitRegister) {
  const auto f = lint_source(read_buggy("uninit_register.ptx"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].pass, Pass::UninitRegister);
  EXPECT_EQ(f[0].loc.line, 17u);
  EXPECT_NE(f[0].message.find("never written"), std::string::npos)
      << f[0].message;
}

TEST(LintBuggy, SharedOverlap) {
  const auto f = lint_source(read_buggy("shared_overlap.ptx"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].pass, Pass::RaceCandidate);
  EXPECT_EQ(f[0].loc.line, 15u);
}

TEST(LintBuggy, SharedOverflow) {
  const auto f = lint_source(read_buggy("shared_overflow.ptx"));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].pass, Pass::SharedOverflow);
  EXPECT_EQ(f[0].loc.line, 18u);
}

TEST(LintBuggy, GlobalRace) {
  const auto f = lint_source(read_buggy("global_race.ptx"));
  ASSERT_EQ(f.size(), 3u);  // self-pair at each store + the cross pair
  for (const Finding& x : f) EXPECT_EQ(x.pass, Pass::RaceCandidate);
  EXPECT_EQ(f[0].loc.line, 18u);
  EXPECT_EQ(f[1].loc.line, 18u);
  EXPECT_EQ(f[2].loc.line, 20u);
}

TEST(LintBuggy, CorpusRaceStoreIsFlagged) {
  const auto f = lint_source(programs::race_store_ptx());
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f[0].pass, Pass::RaceCandidate);
}

TEST(LintOptions, RacePassCanBeDisabled) {
  LintOptions opts;
  opts.check_races = false;
  EXPECT_TRUE(lint_source(read_buggy("shared_overlap.ptx"), opts).empty());
}

// --- renderers ---------------------------------------------------------

TEST(LintRender, TextCarriesLocationAndPass) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_buggy("divergent_barrier.ptx"));
  const ptx::Program& prg = mod.kernels.front();
  const LintReport r = lint_kernel(prg, mod.locs_for(prg), {});
  const std::string text = render_text(r, "divergent_barrier.ptx", "k");
  EXPECT_NE(text.find("divergent_barrier.ptx:16:"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[barrier-divergence]"), std::string::npos) << text;
}

TEST(LintRender, JsonShape) {
  const ptx::LoweredModule mod = ptx::load_ptx(read_buggy("global_race.ptx"));
  const ptx::Program& prg = mod.kernels.front();
  const LintReport r = lint_kernel(prg, mod.locs_for(prg), {});
  const std::string js = render_json(r, "global_race.ptx", "global_race");
  EXPECT_NE(js.find("\"file\":\"global_race.ptx\""), std::string::npos)
      << js;
  EXPECT_NE(js.find("\"kernel\":\"global_race\""), std::string::npos);
  EXPECT_NE(js.find("\"pass\":\"race-candidate\""), std::string::npos);
  EXPECT_NE(js.find("\"line\":18"), std::string::npos);
  EXPECT_NE(js.find("\"severity\":\"error\""), std::string::npos);
}

TEST(LintRender, CleanReportSaysSo) {
  const ptx::LoweredModule mod = ptx::load_ptx(programs::vector_add_ptx());
  const ptx::Program prg = mod.kernel("add_vector");
  const LintReport r = lint_kernel(prg, mod.locs_for(prg), {});
  ASSERT_TRUE(r.clean());
  EXPECT_NE(render_text(r, "v.ptx", "add_vector").find("clean"),
            std::string::npos);
  EXPECT_NE(render_json(r, "v.ptx", "add_vector").find("\"findings\":[]"),
            std::string::npos);
}

}  // namespace
}  // namespace cac::analysis
