// The analysis-driven POR oracle (ExploreOptions::por_independent_pcs):
// verdicts with the oracle must be byte-identical to verdicts without
// it — serial, parallel, and distributed — while visiting fewer
// states, and the oracle list must survive checkpoint round-trips and
// be policy-checked on resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <vector>

#include "analysis/disjoint.h"
#include "dist/coordinator.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/checkpoint.h"
#include "sched/checkpoint_codec.h"
#include "sched/explore.h"
#include "sched/explore_parallel.h"
#include "sem/launch.h"
#include "support/binio.h"

namespace cac::analysis {
namespace {

using sched::ExploreOptions;
using sched::ExploreResult;

struct Outcome {
  bool exhaustive;
  std::size_t violation_kinds;  // bitmask of kinds seen
  std::set<std::uint64_t> final_memory_hashes;
  std::uint64_t states;
};

Outcome summarize(const ExploreResult& r) {
  Outcome o{r.exhaustive, 0, {}, r.states_visited};
  for (const sched::Violation& v : r.violations) {
    o.violation_kinds |= 1u << static_cast<unsigned>(v.kind);
  }
  for (const sem::Machine& m : r.finals()) {
    o.final_memory_hashes.insert(m.memory.hash());
  }
  return o;
}

void expect_same_verdict(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  EXPECT_EQ(a.violation_kinds, b.violation_kinds);
  EXPECT_EQ(a.final_memory_hashes, b.final_memory_hashes);
}

/// The por_test vecadd scenario: one block, two warps of four.
struct VecAddScenario {
  ptx::Program prg =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Machine init;
  LaunchEnv env;

  VecAddScenario() : init(make_init()) {
    env.known = true;
    env.ntid[0] = 8;
    const programs::VecAddLayout L;
    for (const ptx::ParamSlot& slot : prg.params()) {
      if (slot.name == "arr_A") env.params[slot.offset] = L.a;
      if (slot.name == "arr_B") env.params[slot.offset] = L.b;
      if (slot.name == "arr_C") env.params[slot.offset] = L.c;
      if (slot.name == "size") env.params[slot.offset] = 8;
    }
  }

  sem::Machine make_init() const {
    const programs::VecAddLayout L;
    sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
    launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
        .param("size", 8);
    for (std::uint32_t i = 0; i < 8; ++i) {
      launch.global_u32(L.a + 4 * i, i);
      launch.global_u32(L.b + 4 * i, i);
    }
    return launch.machine();
  }
};

ExploreOptions por_opts() {
  ExploreOptions o;
  o.stop_at_first_violation = false;
  o.partial_order_reduction = true;
  return o;
}

TEST(PorOracle, SerialVerdictIdenticalStatesFewer) {
  const VecAddScenario s;
  const std::vector<std::uint32_t> pcs =
      independent_access_pcs(s.prg, s.env);
  ASSERT_FALSE(pcs.empty());

  ExploreOptions por = por_opts();
  ExploreOptions oracle = por;
  oracle.por_independent_pcs = pcs;

  const Outcome a = summarize(sched::explore(s.prg, s.kc, s.init, por));
  const Outcome b = summarize(sched::explore(s.prg, s.kc, s.init, oracle));
  expect_same_verdict(a, b);
  // The oracle proves the ld/ld/st sites independent, so the explorer
  // stops branching at them: strictly fewer states than plain POR.
  EXPECT_LT(b.states, a.states);
}

TEST(PorOracle, SaxpyAlsoShrinks) {
  const ptx::Program prg =
      ptx::load_ptx(programs::saxpy_ptx()).kernel("saxpy");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{0x400, 0, 0, 0, 1});
  launch.param("arr_X", 0x100).param("arr_Y", 0x200).param("a", 3)
      .param("size", 8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    launch.global_u32(0x100 + 4 * i, i);
    launch.global_u32(0x200 + 4 * i, i);
  }
  LaunchEnv env;
  env.known = true;
  env.ntid[0] = 8;
  for (const ptx::ParamSlot& slot : prg.params()) {
    if (slot.name == "arr_X") env.params[slot.offset] = 0x100;
    if (slot.name == "arr_Y") env.params[slot.offset] = 0x200;
    if (slot.name == "size") env.params[slot.offset] = 8;
  }

  const std::vector<std::uint32_t> pcs = independent_access_pcs(prg, env);
  ASSERT_FALSE(pcs.empty());
  ExploreOptions por = por_opts();
  ExploreOptions oracle = por;
  oracle.por_independent_pcs = pcs;
  const sem::Machine init = launch.machine();
  const Outcome a = summarize(sched::explore(prg, kc, init, por));
  const Outcome b = summarize(sched::explore(prg, kc, init, oracle));
  expect_same_verdict(a, b);
  EXPECT_LT(b.states, a.states);
}

TEST(PorOracle, OracleNeverFlipsARacyVerdict) {
  // A program whose store self-pair is NOT independent: the oracle
  // (correctly empty) must leave both final states observable.
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  // Two single-thread warps of one block: out[0] keeps the last
  // writer's tid, so the schedule is observable.
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 1};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("out", 0);
  LaunchEnv env;
  env.known = true;
  env.ntid[0] = 2;
  for (const ptx::ParamSlot& slot : prg.params()) {
    if (slot.name == "out") env.params[slot.offset] = 0;
  }
  const std::vector<std::uint32_t> pcs = independent_access_pcs(prg, env);

  ExploreOptions oracle = por_opts();
  oracle.por_independent_pcs = pcs;
  const sem::Machine init = launch.machine();
  const Outcome full =
      summarize(sched::explore(prg, kc, init, ExploreOptions{}));
  const Outcome reduced = summarize(sched::explore(prg, kc, init, oracle));
  expect_same_verdict(full, reduced);
  EXPECT_GT(full.final_memory_hashes.size(), 1u);
}

TEST(PorOracle, ParallelEngineMatches) {
  const VecAddScenario s;
  ExploreOptions oracle = por_opts();
  oracle.por_independent_pcs = independent_access_pcs(s.prg, s.env);
  const Outcome serial =
      summarize(sched::explore(s.prg, s.kc, s.init, oracle));
  oracle.num_threads = 2;
  const Outcome parallel =
      summarize(sched::explore_parallel(s.prg, s.kc, s.init, oracle));
  expect_same_verdict(serial, parallel);
}

TEST(PorOracle, DistributedEngineMatches) {
  const VecAddScenario s;
  ExploreOptions oracle = por_opts();
  oracle.por_independent_pcs = independent_access_pcs(s.prg, s.env);
  const Outcome serial =
      summarize(sched::explore(s.prg, s.kc, s.init, oracle));
  dist::DistOptions dopts;
  dopts.n_workers = 2;
  const dist::DistResult d =
      dist::explore_distributed(s.prg, s.kc, s.init, oracle, dopts);
  const Outcome distributed = summarize(d.result);
  EXPECT_EQ(serial.exhaustive, distributed.exhaustive);
  EXPECT_EQ(serial.violation_kinds, distributed.violation_kinds);
  EXPECT_EQ(serial.final_memory_hashes, distributed.final_memory_hashes);
}

TEST(PorOracle, OptionsCodecRoundTripsTheOracleList) {
  ExploreOptions o = por_opts();
  o.por_independent_pcs = {2, 5, 11};
  support::BinWriter w;
  sched::codec::encode_options(w, o);
  support::BinReader r(w.buffer());
  const ExploreOptions d = sched::codec::decode_options(r);
  EXPECT_EQ(d.por_independent_pcs, o.por_independent_pcs);
  EXPECT_EQ(d.partial_order_reduction, o.partial_order_reduction);
}

TEST(PorOracle, ResumeRejectsAChangedOracle) {
  // A checkpoint written under one independence oracle must not be
  // resumable under another: the reduction is part of the verdict.
  const VecAddScenario s;
  const std::string path = testing::TempDir() + "cac_oracle_ck";
  ExploreOptions cut = por_opts();
  cut.por_independent_pcs = independent_access_pcs(s.prg, s.env);
  cut.stop_after_states = 8;
  cut.checkpoint_path = path;
  const ExploreResult partial = sched::explore(s.prg, s.kc, s.init, cut);
  ASSERT_FALSE(partial.exhaustive);

  const sched::Checkpoint ck = sched::Checkpoint::load(path);
  ExploreOptions resume = cut;
  resume.stop_after_states = 0;
  const ExploreResult done =
      sched::explore(s.prg, s.kc, s.init, resume, &ck);
  EXPECT_TRUE(done.exhaustive);

  ExploreOptions skewed = resume;
  skewed.por_independent_pcs.clear();
  EXPECT_THROW(sched::explore(s.prg, s.kc, s.init, skewed, &ck),
               sched::CheckpointError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cac::analysis
