// Static/dynamic agreement: every ProvablyRacing verdict the analyzer
// emits on the seeded corpus is confirmed by the dynamic detector
// (check/race.h) and visible to the explorer as schedule dependence;
// kernels the analyzer clears stay race-free dynamically.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/disjoint.h"
#include "check/race.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sem/launch.h"

namespace cac::analysis {
namespace {

std::string read_buggy(const std::string& name) {
  const std::string path =
      std::string(CAC_SOURCE_DIR "/examples/buggy/") + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

check::RaceReport detect(const ptx::Program& prg,
                         const sem::KernelConfig& kc, sem::Launch& launch) {
  sem::Machine m = launch.machine();
  sched::RoundRobinScheduler s;
  return check::detect_races(prg, kc, m, s);
}

TEST(CrossCheck, SharedOverlapRacesDynamically) {
  const ptx::LoweredModule mod =
      ptx::load_ptx(read_buggy("shared_overlap.ptx"));
  const ptx::Program& prg = mod.kernels.front();

  const RaceCandidateReport rep = analyze_races(prg);
  ASSERT_TRUE(rep.any_racing());
  for (const SitePair& p : rep.racing()) {
    EXPECT_EQ(p.a.space, ptx::Space::Shared);
  }

  // Two warps of two threads: the detector needs inter-warp conflicts.
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 64, 0, 1});
  const check::RaceReport r = detect(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  ASSERT_TRUE(r.racy()) << r.summary();
  EXPECT_EQ(r.races.front().space, ptx::Space::Shared);

  // The race is also a schedule dependence: warp order picks the
  // surviving store, so exploration sees more than one final memory.
  const sched::ExploreResult e =
      sched::explore(prg, kc, sem::Launch(prg, kc,
                                          mem::MemSizes{64, 0, 64, 0, 1})
                                  .machine());
  ASSERT_TRUE(e.exhaustive);
  EXPECT_FALSE(e.schedule_independent());
}

TEST(CrossCheck, GlobalRaceRacesAcrossBlocks) {
  const ptx::LoweredModule mod = ptx::load_ptx(read_buggy("global_race.ptx"));
  const ptx::Program& prg = mod.kernels.front();

  const RaceCandidateReport rep = analyze_races(prg);
  ASSERT_TRUE(rep.any_racing());
  for (const SitePair& p : rep.racing()) {
    EXPECT_EQ(p.a.space, ptx::Space::Global);
    EXPECT_TRUE(p.a.write || p.b.write);
  }

  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("out", 0);
  const check::RaceReport r = detect(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  ASSERT_TRUE(r.racy()) << r.summary();
  EXPECT_TRUE(r.races.front().cross_block);
}

TEST(CrossCheck, CorpusRaceStoreAgrees) {
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  EXPECT_TRUE(analyze_races(prg).any_racing());
}

TEST(CrossCheck, VecAddIsCleanBothWays) {
  const ptx::Program prg =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  EXPECT_FALSE(analyze_races(prg).any_racing());

  const programs::VecAddLayout L;
  const sem::KernelConfig kc{{2, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 16);
  for (std::uint32_t i = 0; i < 16; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  const check::RaceReport r = detect(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  EXPECT_FALSE(r.racy()) << r.summary();
}

TEST(CrossCheck, BarrieredReductionIsCleanBothWays) {
  // The barrier gate must keep reduce_shared's overlapping tree cells
  // out of the racing set, matching the dynamic verdict.
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  EXPECT_FALSE(analyze_races(prg).any_racing());

  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, i);
  const check::RaceReport r = detect(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  EXPECT_FALSE(r.racy()) << r.summary();
}

}  // namespace
}  // namespace cac::analysis
