// Property and directed tests for the equivalence checker's term
// normalizer (equiv/normalize.h).  The load-bearing property: a
// rewrite may change a term's shape but never its meaning — for every
// sampled valuation, the normal form evaluates to the same value as
// the original.
#include "equiv/normalize.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "support/bits.h"
#include "sym/term.h"

namespace cac::equiv {
namespace {

using sym::TermArena;
using sym::TermRef;

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// A random 32-bit term over three variables, depth-bounded.  Only
/// operations the normalizer actually rewrites are drawn frequently;
/// a few opaque ones (div by non-const, min) keep it honest about
/// terms it must leave alone.
TermRef random_term(TermArena& a, std::uint64_t& rng, int depth) {
  const std::vector<TermRef> leaves = {
      a.var("x", 32), a.var("y", 32), a.var("z", 32),
      a.konst(xorshift64(rng) & 0xff, 32)};
  if (depth <= 0) return leaves[xorshift64(rng) % leaves.size()];
  switch (xorshift64(rng) % 12) {
    case 0: return a.add(random_term(a, rng, depth - 1),
                         random_term(a, rng, depth - 1));
    case 1: return a.sub(random_term(a, rng, depth - 1),
                         random_term(a, rng, depth - 1));
    case 2: return a.mul(random_term(a, rng, depth - 1),
                         a.konst(xorshift64(rng) & 0xf, 32));
    case 3: return a.mul(random_term(a, rng, depth - 1),
                         random_term(a, rng, depth - 1));
    case 4: return a.band(random_term(a, rng, depth - 1),
                          random_term(a, rng, depth - 1));
    case 5: return a.bor(random_term(a, rng, depth - 1),
                         random_term(a, rng, depth - 1));
    case 6: return a.bxor(random_term(a, rng, depth - 1),
                          random_term(a, rng, depth - 1));
    case 7: return a.shl(random_term(a, rng, depth - 1),
                         a.konst(xorshift64(rng) % 40, 32));
    case 8: return a.neg(random_term(a, rng, depth - 1));
    case 9: return a.bnot(random_term(a, rng, depth - 1));
    case 10: return a.rem(random_term(a, rng, depth - 1),
                          a.konst(1ull << (xorshift64(rng) % 6), 32), false);
    case 11: return a.min(random_term(a, rng, depth - 1),
                          random_term(a, rng, depth - 1), false);
  }
  return leaves[0];
}

using Valuation = std::unordered_map<std::string, std::uint64_t>;

Valuation random_valuation(std::uint64_t& rng) {
  return {{"x", xorshift64(rng)},
          {"y", xorshift64(rng)},
          {"z", xorshift64(rng)}};
}

TEST(Normalize, PreservesEvaluationOnRandomTerms) {
  TermArena arena;
  Normalizer norm(arena);
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 300; ++i) {
    const TermRef t = random_term(arena, rng, 4);
    const TermRef n = norm.normalize(t);
    for (int k = 0; k < 8; ++k) {
      Valuation v = random_valuation(rng);
      ASSERT_EQ(arena.evaluate(t, v), arena.evaluate(n, v))
          << "term: " << arena.to_string(t)
          << "\nnormal: " << arena.to_string(n);
    }
  }
}

TEST(Normalize, IsIdempotent) {
  TermArena arena;
  Normalizer norm(arena);
  std::uint64_t rng = 0x123456789abcdefull;
  for (int i = 0; i < 200; ++i) {
    const TermRef t = random_term(arena, rng, 4);
    const TermRef n = norm.normalize(t);
    EXPECT_EQ(norm.normalize(n), n) << arena.to_string(t);
  }
}

TEST(Normalize, StrengthReductionAlignsMulAndShift) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  EXPECT_EQ(norm.normalize(arena.mul(x, arena.konst(8, 32))),
            norm.normalize(arena.shl(x, arena.konst(3, 32))));
  EXPECT_EQ(norm.normalize(arena.mul(x, arena.konst(2, 32))),
            norm.normalize(arena.add(x, x)));
}

TEST(Normalize, UnsignedRemAndDivByPowerOfTwoBecomeMaskAndShift) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  EXPECT_EQ(norm.normalize(arena.rem(x, arena.konst(16, 32), false)),
            norm.normalize(arena.band(x, arena.konst(15, 32))));
  EXPECT_EQ(norm.normalize(arena.div(x, arena.konst(8, 32), false)),
            norm.normalize(arena.lshr(x, arena.konst(3, 32))));
}

TEST(Normalize, AddChainsCollapseIntoLinearForm) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  const TermRef y = arena.var("y", 32);
  // ((x+y)+x)+y == 2x + 2y == (x+x) + (y+y)
  EXPECT_EQ(
      norm.normalize(arena.add(arena.add(arena.add(x, y), x), y)),
      norm.normalize(arena.add(arena.add(x, x), arena.add(y, y))));
  // x - y == x + (-1)*y
  EXPECT_EQ(norm.normalize(arena.sub(x, y)),
            norm.normalize(
                arena.add(x, arena.mul(y, arena.konst(0xffffffffull, 32)))));
}

TEST(Normalize, DistributesBoundedProducts) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  const TermRef y = arena.var("y", 32);
  // 2*(x+y) == 2x + 2y == (x+x) + (y+y)
  EXPECT_EQ(
      norm.normalize(arena.mul(arena.add(x, y), arena.konst(2, 32))),
      norm.normalize(arena.add(arena.add(x, x), arena.add(y, y))));
  // (x+1)*(y+1) == x*y + x + y + 1
  EXPECT_EQ(
      norm.normalize(
          arena.mul(arena.add(x, arena.konst(1, 32)),
                    arena.add(y, arena.konst(1, 32)))),
      norm.normalize(arena.add(
          arena.add(arena.mul(x, y), x), arena.add(y, arena.konst(1, 32)))));
}

TEST(Normalize, BitopFlatteningFindsComplementsAndDuplicates) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  const TermRef y = arena.var("y", 32);
  EXPECT_EQ(norm.normalize(arena.band(arena.band(x, y), arena.bnot(x))),
            arena.konst(0, 32));
  EXPECT_EQ(norm.normalize(arena.bor(arena.bor(x, y), arena.bnot(x))),
            arena.konst(0xffffffffull, 32));
  // x ^ y ^ x == y
  EXPECT_EQ(norm.normalize(arena.bxor(arena.bxor(x, y), x)),
            norm.normalize(y));
}

TEST(Normalize, ShiftBeyondWidthIsZeroLikeTheConcreteSemantics) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  // cac::shl (support/bits.h) zeroes a >=width shift; the linearizer
  // must agree.
  EXPECT_EQ(cac::shl(0xdeadbeefull, 40, 32), 0u);
  EXPECT_EQ(norm.normalize(arena.shl(x, arena.konst(40, 32))),
            arena.konst(0, 32));
}

TEST(Normalize, DisabledNormalizerIsIdentity) {
  TermArena arena;
  Normalizer off(arena, /*enabled=*/false);
  const TermRef x = arena.var("x", 32);
  const TermRef t = arena.mul(arena.add(x, x), arena.konst(6, 32));
  EXPECT_EQ(off.normalize(t), t);
  EXPECT_EQ(off.stats().rewrites, 0u);
}

TEST(Normalize, CountsRewrites) {
  TermArena arena;
  Normalizer norm(arena);
  const TermRef x = arena.var("x", 32);
  norm.normalize(arena.mul(arena.add(x, x), arena.konst(6, 32)));
  EXPECT_GT(norm.stats().rewrites, 0u);
  EXPECT_GT(norm.stats().terms, 0u);
}

}  // namespace
}  // namespace cac::equiv
