// Pins the examples/equiv/ corpus verdicts (examples/equiv/README.md):
// four pairs PROVED symbolically with zero counterexample trials, two
// pairs REFUTED with a replay-validated concrete witness, and the
// documented ablation behavior of --no-normalize / --no-cex.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "front/front.h"

namespace cac::front {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string corpus(const std::string& name) {
  return read_file(std::string(CAC_SOURCE_DIR) + "/examples/equiv/" + name);
}

/// The corpus launch pinned by examples/equiv/README.md.
EquivRequest pair_request(const std::string& a, const std::string& b) {
  EquivRequest req;
  req.file = a;
  req.source = corpus(a);
  req.file_b = b;
  req.source_b = corpus(b);
  req.launch.block = {4, 1, 1};
  req.launch.warp_size = 4;
  return req;
}

void expect_proved(const std::string& a, const std::string& b) {
  const Result r = run_equiv(pair_request(a, b));
  EXPECT_EQ(r.verdict, "equivalent") << a << " vs " << b << ": " << r.detail;
  EXPECT_EQ(r.exit_code, kExitProved);
  // Discharged symbolically: the counterexample machinery never ran.
  EXPECT_EQ(r.stats.cex_trials, 0u) << a << " vs " << b;
  EXPECT_FALSE(r.equiv_failure.present);
  EXPECT_FALSE(r.equiv_cex.present);
}

void expect_refuted(const std::string& a, const std::string& b) {
  const Result r = run_equiv(pair_request(a, b));
  EXPECT_EQ(r.verdict, "not-equivalent") << a << " vs " << b << ": "
                                         << r.detail;
  EXPECT_EQ(r.exit_code, kExitFinding);
  // A not-equivalent verdict is only ever issued with a concrete,
  // replay-validated witness (docs/equiv.md, soundness).
  ASSERT_TRUE(r.equiv_cex.present) << a << " vs " << b;
  EXPECT_TRUE(r.equiv_cex.replay_validated);
  EXPECT_NE(r.equiv_cex.value_a, r.equiv_cex.value_b);
  EXPECT_TRUE(r.equiv_failure.present);
}

TEST(EquivCorpus, VecaddUnroll2Proved) {
  expect_proved("vecadd_ref.ptx", "vecadd_unroll2.ptx");
}

TEST(EquivCorpus, VecaddUnroll4Proved) {
  expect_proved("vecadd_ref4.ptx", "vecadd_unroll4.ptx");
}

TEST(EquivCorpus, ScaleStrengthReductionProved) {
  expect_proved("scale_ref.ptx", "scale_strength.ptx");
}

TEST(EquivCorpus, SaxpyReorderedProved) {
  expect_proved("saxpy_ref.ptx", "saxpy_reordered.ptx");
}

TEST(EquivCorpus, GuardOffByOneRefuted) {
  expect_refuted("guard_ref.ptx", "guard_offbyone.ptx");
}

TEST(EquivCorpus, WrongAccumulationRefuted) {
  expect_refuted("mask_ref.ptx", "mask_wrongacc.ptx");
}

TEST(EquivCorpus, ProvedPairsNeedTheNormalizer) {
  // The first three PROVED pairs rely on the rewrite engine; without
  // it the checker degrades to inconclusive — never to not-equivalent,
  // because the kernels ARE equivalent and a refutation would be
  // unsound (no witness can exist).
  const std::pair<std::string, std::string> pairs[] = {
      {"vecadd_ref.ptx", "vecadd_unroll2.ptx"},
      {"vecadd_ref4.ptx", "vecadd_unroll4.ptx"},
      {"scale_ref.ptx", "scale_strength.ptx"}};
  for (const auto& [a, b] : pairs) {
    EquivRequest req = pair_request(a, b);
    req.normalize = false;
    req.counterexample = false;
    const Result r = run_equiv(req);
    EXPECT_EQ(r.verdict, "inconclusive") << a << " vs " << b;
    EXPECT_EQ(r.exit_code, kExitLimit);
    EXPECT_TRUE(r.limit_tripped);
    // The structured failure names the un-aligned obligation.
    EXPECT_TRUE(r.equiv_failure.present);
  }
}

TEST(EquivCorpus, SaxpyAlignsWithoutTheNormalizer) {
  // Commuted operands and inverted guard polarity canonicalize at the
  // term-arena level, so this pair proves even with --no-normalize.
  EquivRequest req = pair_request("saxpy_ref.ptx", "saxpy_reordered.ptx");
  req.normalize = false;
  const Result r = run_equiv(req);
  EXPECT_EQ(r.verdict, "equivalent") << r.detail;
  EXPECT_EQ(r.stats.rewrites, 0u);
}

TEST(EquivCorpus, RefutedPairsDegradeToInconclusiveWithoutCex) {
  const std::pair<std::string, std::string> pairs[] = {
      {"guard_ref.ptx", "guard_offbyone.ptx"},
      {"mask_ref.ptx", "mask_wrongacc.ptx"}};
  for (const auto& [a, b] : pairs) {
    EquivRequest req = pair_request(a, b);
    req.counterexample = false;
    const Result r = run_equiv(req);
    EXPECT_EQ(r.verdict, "inconclusive") << a << " vs " << b;
    EXPECT_EQ(r.exit_code, kExitLimit);
    EXPECT_FALSE(r.equiv_cex.present);
  }
}

TEST(EquivCorpus, NormalizerRewritesAreCounted) {
  const Result r =
      run_equiv(pair_request("vecadd_ref.ptx", "vecadd_unroll2.ptx"));
  EXPECT_GT(r.stats.rewrites, 0u);
  EXPECT_TRUE(r.stats.have_sym);
  EXPECT_GT(r.stats.obligations, 0u);
}

}  // namespace
}  // namespace cac::front
