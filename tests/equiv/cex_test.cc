// The counterexample machinery's contract (src/equiv/cex.h): every
// not-equivalent verdict carries a concrete input valuation whose
// divergence was read back from real explorer runs — and these tests
// re-derive the diverging values from the reported inputs by hand, so
// a replay that "validated" the wrong thing cannot pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "front/cache.h"
#include "front/front.h"

namespace cac::front {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string corpus(const std::string& name) {
  return read_file(std::string(CAC_SOURCE_DIR) + "/examples/equiv/" + name);
}

EquivRequest pair_request(const std::string& a, const std::string& b) {
  EquivRequest req;
  req.file = a;
  req.source = corpus(a);
  req.file_b = b;
  req.source_b = corpus(b);
  req.launch.block = {4, 1, 1};
  req.launch.warp_size = 4;
  return req;
}

/// Input cell `<region>[<byte offset>]` from the cex valuation; cells
/// absent from the valuation replayed as zero.
std::uint64_t input_or_zero(const EquivCex& cex, const std::string& name) {
  for (const auto& [n, v] : cex.inputs) {
    if (n == name) return v;
  }
  return 0;
}

std::uint32_t trunc32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v);
}

TEST(EquivCex, WrongAccumulationDivergenceMatchesTheKernelSemantics) {
  // mask_ref computes d[t] = (a[t]-b[t])+c[t]; mask_wrongacc computes
  // a[t]-(b[t]+c[t]).  Whatever valuation the search lands on, the
  // reported store values must equal those expressions evaluated on
  // the reported inputs — and they can only differ when c[t] != 0.
  const Result r =
      run_equiv(pair_request("mask_ref.ptx", "mask_wrongacc.ptx"));
  ASSERT_EQ(r.verdict, "not-equivalent") << r.detail;
  const EquivCex& cex = r.equiv_cex;
  ASSERT_TRUE(cex.present);
  EXPECT_TRUE(cex.replay_validated);
  EXPECT_EQ(cex.region, "d");
  const std::string off = std::to_string(cex.offset);
  const std::uint64_t a = input_or_zero(cex, "a[" + off + "]");
  const std::uint64_t b = input_or_zero(cex, "b[" + off + "]");
  const std::uint64_t c = input_or_zero(cex, "c[" + off + "]");
  EXPECT_NE(trunc32(c), 0u);
  EXPECT_EQ(cex.value_a, trunc32(a - b + c));
  EXPECT_EQ(cex.value_b, trunc32(a - b - c));
}

TEST(EquivCex, GuardOffByOneDivergesExactlyAtTheBoundaryThread) {
  // guard_ref writes c[t] = a[t]+1 for t < n; guard_offbyone for
  // t <= n.  The only cell that can diverge is c[n]: unwritten (0) on
  // the reference side, a[n]+1 on the broken side.
  const Result r =
      run_equiv(pair_request("guard_ref.ptx", "guard_offbyone.ptx"));
  ASSERT_EQ(r.verdict, "not-equivalent") << r.detail;
  const EquivCex& cex = r.equiv_cex;
  ASSERT_TRUE(cex.present);
  EXPECT_TRUE(cex.replay_validated);
  EXPECT_EQ(cex.region, "c");
  const std::uint64_t n = input_or_zero(cex, "n");
  EXPECT_EQ(cex.offset, 4 * n);
  EXPECT_EQ(cex.value_a, 0u);
  const std::uint64_t a_n =
      input_or_zero(cex, "a[" + std::to_string(cex.offset) + "]");
  EXPECT_EQ(cex.value_b, trunc32(a_n + 1));
}

TEST(EquivCex, SearchIsDeterministic) {
  const EquivRequest req =
      pair_request("mask_ref.ptx", "mask_wrongacc.ptx");
  const std::vector<Result> first = run(Request{req});
  const std::vector<Result> second = run(Request{req});
  EXPECT_EQ(to_json(first), to_json(second));
}

TEST(EquivCex, ExhaustedBudgetIsInconclusiveAndNeverCached) {
  // One trial covers only the all-zeros valuation, on which the mask
  // kernels agree — the search budget trips before a witness exists.
  // The verdict must degrade to inconclusive (refuting without a
  // witness would be unsound) and must be refused by the verdict
  // cache: a larger budget could resolve the same request differently.
  EquivRequest req = pair_request("mask_ref.ptx", "mask_wrongacc.ptx");
  req.cex_inputs = 1;
  const std::vector<Result> results = run(Request{req});
  ASSERT_EQ(results.size(), 1u);
  const Result& r = results.front();
  EXPECT_EQ(r.verdict, "inconclusive") << r.detail;
  EXPECT_EQ(r.exit_code, kExitLimit);
  EXPECT_FALSE(r.equiv_cex.present);
  EXPECT_TRUE(r.stats.cex_budget_tripped);
  EXPECT_FALSE(cacheable(results));

  // The full-budget refutation of the identical pair IS cacheable.
  const std::vector<Result> full =
      run(Request{pair_request("mask_ref.ptx", "mask_wrongacc.ptx")});
  EXPECT_TRUE(cacheable(full));
}

TEST(EquivCex, TrialCountIsReportedForRefutations) {
  const Result r =
      run_equiv(pair_request("guard_ref.ptx", "guard_offbyone.ptx"));
  EXPECT_GT(r.stats.cex_trials, 0u);
}

}  // namespace
}  // namespace cac::front
