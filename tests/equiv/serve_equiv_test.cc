// Equiv verdicts as first-class citizens of the verification service:
// cache-key discipline (which knobs are structural, which transient),
// and byte-identical cache-hot replay of equivalence verdicts through
// a real in-process server over AF_UNIX.
#include "front/serve.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "front/cache.h"

namespace cac::front {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string corpus(const std::string& name) {
  return read_file(std::string(CAC_SOURCE_DIR) + "/examples/equiv/" + name);
}

EquivRequest pair_request(const std::string& a, const std::string& b) {
  EquivRequest req;
  req.file = a;
  req.source = corpus(a);
  req.file_b = b;
  req.source_b = corpus(b);
  req.launch.block = {4, 1, 1};
  req.launch.warp_size = 4;
  return req;
}

struct TestServer {
  explicit TestServer(std::uint32_t workers = 2) {
    dir = std::filesystem::temp_directory_path() /
          ("cac_equiv_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    std::filesystem::create_directories(dir);
    ServeOptions opts;
    opts.unix_path = dir / "sock";
    opts.workers = workers;
    server = std::make_unique<Server>(std::move(opts));
    server->start();
  }

  ~TestServer() {
    server->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  Client connect() { return Client::connect(dir / "sock"); }

  std::filesystem::path dir;
  std::unique_ptr<Server> server;
  static inline int counter = 0;
};

TEST(EquivCacheKey, StructuralKnobsChangeTheKey) {
  const EquivRequest base =
      pair_request("guard_ref.ptx", "guard_offbyone.ptx");
  const CacheKey k = cache_key(Request{base});

  EquivRequest mode = base;
  mode.mode = "lowering";
  EXPECT_NE(cache_key(Request{mode}).hex(), k.hex());

  EquivRequest nonorm = base;
  nonorm.normalize = false;
  EXPECT_NE(cache_key(Request{nonorm}).hex(), k.hex());

  EquivRequest nocex = base;
  nocex.counterexample = false;
  EXPECT_NE(cache_key(Request{nocex}).hex(), k.hex());

  EquivRequest paths = base;
  paths.sym.max_paths = base.sym.max_paths + 1;
  EXPECT_NE(cache_key(Request{paths}).hex(), k.hex());
}

TEST(EquivCacheKey, TransientKnobsDoNot) {
  const EquivRequest base =
      pair_request("guard_ref.ptx", "guard_offbyone.ptx");
  const CacheKey k = cache_key(Request{base});

  // The search budget only decides how hard to look, never what is
  // true — a budget-exhausted inconclusive is already refused by
  // cacheable(), so two budgets may share one cache entry.
  EquivRequest budget = base;
  budget.cex_inputs = 7;
  EXPECT_EQ(cache_key(Request{budget}).hex(), k.hex());

  // Display names are cosmetic, like check/lint file names.
  EquivRequest renamed = base;
  renamed.file = "x.ptx";
  renamed.file_b = "y.ptx";
  EXPECT_EQ(cache_key(Request{renamed}).hex(), k.hex());
}

TEST(EquivCacheKey, StableAcrossSerializationAndWhitespace) {
  const EquivRequest base = pair_request("mask_ref.ptx", "mask_wrongacc.ptx");
  // Round-tripping through the wire form preserves the key.
  const Request back = request_from_json(to_json(Request{base}));
  EXPECT_EQ(cache_key(Request{base}).hex(), cache_key(back).hex());
  // Cosmetic source edits hit the same entry (canonical lowered form).
  EquivRequest cosmetic = base;
  cosmetic.source_b = "// comment\n" + cosmetic.source_b + "\n";
  EXPECT_EQ(cache_key(Request{cosmetic}).hex(),
            cache_key(Request{base}).hex());
  // Swapping the sides is a different question (A==B is symmetric but
  // the reports are side-labeled), so the key must differ.
  EquivRequest swapped = base;
  std::swap(swapped.source, swapped.source_b);
  std::swap(swapped.file, swapped.file_b);
  EXPECT_NE(cache_key(Request{swapped}).hex(),
            cache_key(Request{base}).hex());
}

TEST(ServeEquiv, ColdRunThenByteIdenticalCacheHit) {
  TestServer ts;
  Client client = ts.connect();
  const std::string payload =
      to_json(Request{pair_request("guard_ref.ptx", "guard_offbyone.ptx")});
  const Client::Reply cold = client.call(payload);
  ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
  EXPECT_FALSE(cold.doc.bool_or("cached", true));
  EXPECT_EQ(cold.doc.u64_or("exit_code", 99), 1u);  // refuted
  const Client::Reply warm = client.call(payload);
  ASSERT_EQ(warm.doc.str_or("status", ""), "ok");
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  const auto body = [](const std::string& raw) {
    const std::size_t at = raw.find("\"results\":");
    return raw.substr(at);
  };
  EXPECT_EQ(body(cold.raw), body(warm.raw));
  const ServeStats s = ts.server->stats();
  EXPECT_EQ(s.jobs_run, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
}

TEST(ServeEquiv, ProvedPairIsCachedToo) {
  TestServer ts;
  Client client = ts.connect();
  const std::string payload =
      to_json(Request{pair_request("scale_ref.ptx", "scale_strength.ptx")});
  const Client::Reply cold = client.call(payload);
  ASSERT_EQ(cold.doc.str_or("status", ""), "ok");
  EXPECT_EQ(cold.doc.u64_or("exit_code", 99), 0u);  // proved
  const Client::Reply warm = client.call(payload);
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  EXPECT_EQ(ts.server->stats().jobs_run, 1u);
}

TEST(ServeEquiv, BudgetExhaustedInconclusiveIsNotCached) {
  TestServer ts;
  Client client = ts.connect();
  EquivRequest req = pair_request("mask_ref.ptx", "mask_wrongacc.ptx");
  req.cex_inputs = 1;  // trips after the all-zeros trial
  const std::string payload = to_json(Request{req});
  const Client::Reply first = client.call(payload);
  ASSERT_EQ(first.doc.str_or("status", ""), "ok");
  EXPECT_EQ(first.doc.u64_or("exit_code", 99), 3u);  // inconclusive
  const Client::Reply second = client.call(payload);
  ASSERT_EQ(second.doc.str_or("status", ""), "ok");
  // Re-running is correct here: a bigger budget (same cache key!)
  // must not be answered from a budget-starved verdict.
  EXPECT_FALSE(second.doc.bool_or("cached", true));
  EXPECT_EQ(ts.server->stats().jobs_run, 2u);
  EXPECT_EQ(ts.server->stats().cache.hits, 0u);
}

TEST(ServeEquiv, CosmeticallyDifferentSourcesShareTheEntry) {
  TestServer ts;
  Client client = ts.connect();
  const EquivRequest a = pair_request("guard_ref.ptx", "guard_offbyone.ptx");
  EquivRequest b = a;
  b.source = "// cosmetic comment\n" + b.source + "\n";
  b.file = "renamed.ptx";
  b.cex_inputs = 512;  // transient — still the same entry
  client.call(to_json(Request{a}));
  const Client::Reply warm = client.call(to_json(Request{b}));
  EXPECT_TRUE(warm.doc.bool_or("cached", false));
  EXPECT_EQ(ts.server->stats().jobs_run, 1u);
}

}  // namespace
}  // namespace cac::front
