// The symbolic interpreter on the paper's vector sum and friends.
#include "sym/exec.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::sym {
namespace {

sem::KernelConfig kc8() { return {{1, 1, 1}, {8, 1, 1}, 8}; }

TEST(SymExec, VectorAddThreadHasGuardPartition) {
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ThreadSummary s = sym_execute_thread(prg, kc8(), 3, env);
  ASSERT_TRUE(s.all_ok());
  ASSERT_EQ(s.paths.size(), 2u);

  // The two path conditions are exactly {tid < size, !(tid < size)}.
  const TermRef size = arena.var("size", 32);
  const TermRef guard = arena.lt(arena.konst(3, 32), size, true);
  const TermRef not_guard = arena.lnot(guard);
  const bool direct = s.paths[0].cond == guard || s.paths[1].cond == guard;
  const bool negated =
      s.paths[0].cond == not_guard || s.paths[1].cond == not_guard;
  EXPECT_TRUE(direct) << arena.to_string(s.paths[0].cond) << " / "
                      << arena.to_string(s.paths[1].cond);
  EXPECT_TRUE(negated);
}

TEST(SymExec, VectorAddStoresSymbolicSum) {
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ThreadSummary s = sym_execute_thread(prg, kc8(), 2, env);
  ASSERT_TRUE(s.all_ok());

  const TermRef guard =
      arena.lt(arena.konst(2, 32), arena.var("size", 32), true);
  for (const SymPath& p : s.paths) {
    if (p.cond == guard) {
      ASSERT_EQ(p.writes.size(), 1u);
      EXPECT_EQ(p.writes[0].region, "arr_C");
      EXPECT_EQ(p.writes[0].offset, 8u);  // 4 * tid
      EXPECT_EQ(p.writes[0].bytes, 4u);
      // The stored term is A[8] + B[8] for *arbitrary* array contents.
      const TermRef expected =
          arena.add(arena.var("arr_A[8]", 32), arena.var("arr_B[8]", 32));
      EXPECT_EQ(p.writes[0].value, expected)
          << arena.to_string(p.writes[0].value);
    } else {
      EXPECT_TRUE(p.writes.empty());
    }
  }
}

TEST(SymExec, ConcreteSizeCollapsesToOnePath) {
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 8);  // guard becomes concrete for every tid < 8
  const ThreadSummary s = sym_execute_thread(prg, kc8(), 1, env);
  ASSERT_TRUE(s.all_ok());
  ASSERT_EQ(s.paths.size(), 1u);
  EXPECT_EQ(s.paths[0].writes.size(), 1u);
  EXPECT_EQ(s.paths[0].cond, arena.tru());
}

TEST(SymExec, OutOfRangeThreadStoresNothing) {
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 2);
  const ThreadSummary s = sym_execute_thread(prg, kc8(), 5, env);
  ASSERT_TRUE(s.all_ok());
  ASSERT_EQ(s.paths.size(), 1u);
  EXPECT_TRUE(s.paths[0].writes.empty());
}

TEST(SymExec, MechanicalLoweringYieldsSameTerms) {
  // cvta/Mov noise in the mechanical lowering must not change the
  // symbolic stores — same arena, same variables, same term refs.
  const ptx::Program mech =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  const ptx::Program hand = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, mech);
  for (std::uint32_t tid : {0u, 3u, 7u}) {
    const ThreadSummary a = sym_execute_thread(mech, kc8(), tid, env);
    const ThreadSummary b = sym_execute_thread(hand, kc8(), tid, env);
    ASSERT_EQ(a.paths.size(), b.paths.size());
    for (std::size_t i = 0; i < a.paths.size(); ++i) {
      EXPECT_EQ(a.paths[i].cond, b.paths[i].cond);
      EXPECT_EQ(a.paths[i].writes, b.paths[i].writes);
    }
  }
}

TEST(SymExec, ScanSignatureUnrollsConcreteLoop) {
  const ptx::Program prg = ptx::load_ptx(programs::scan_signature_ptx())
                               .kernel("scan_signature");
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "dlen", 8);
  env.bind(prg, "plen", 2);  // concrete trip count, symbolic data
  const ThreadSummary s = sym_execute_thread(prg, kc8(), 1, env);
  ASSERT_TRUE(s.all_ok());
  ASSERT_EQ(s.paths.size(), 1u);  // guard is concrete: 1 <= 8-2
  ASSERT_EQ(s.paths[0].writes.size(), 1u);
  const SymWrite& w = s.paths[0].writes[0];
  EXPECT_EQ(w.region, "out");
  EXPECT_EQ(w.offset, 1u);
  EXPECT_EQ(w.bytes, 1u);
  // match = ite(data[1]!=pat[0], 0, ite(data[2]!=pat[1], 0, 1))
  const TermRef d1 = arena.var("data[1]", 8);
  const TermRef d2 = arena.var("data[2]", 8);
  const TermRef p0 = arena.var("pattern[0]", 8);
  const TermRef p1 = arena.var("pattern[1]", 8);
  const TermRef inner = arena.ite(
      arena.ne(arena.zext(d2, 32), arena.zext(p1, 32)), arena.konst(0, 32),
      arena.ite(arena.ne(arena.zext(d1, 32), arena.zext(p0, 32)),
                arena.konst(0, 32), arena.konst(1, 32)));
  EXPECT_EQ(w.value, arena.trunc(inner, 8)) << arena.to_string(w.value);
}

TEST(SymExec, XorCipherSymbolicStore) {
  const ptx::Program prg =
      ptx::load_ptx(programs::xor_cipher_ptx()).kernel("xor_cipher");
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 4);
  const ThreadSummary s = sym_execute_thread(prg, {{1, 1, 1}, {4, 1, 1}, 4},
                                             0, env);
  ASSERT_TRUE(s.all_ok());
  ASSERT_EQ(s.paths.size(), 1u);
  ASSERT_EQ(s.paths[0].writes.size(), 1u);
  const TermRef expected =
      arena.bxor(arena.var("arr_A[0]", 32), arena.var("arr_B[0]", 32));
  EXPECT_EQ(s.paths[0].writes[0].value, expected);
}

TEST(SymExec, BarrierIsOutsideTheFragment) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ThreadSummary s = sym_execute_thread(prg, {{1, 1, 1}, {4, 1, 1}, 4},
                                             0, env);
  ASSERT_FALSE(s.paths.empty());
  EXPECT_FALSE(s.all_ok());
  bool mentions = false;
  for (const SymPath& p : s.paths) {
    if (p.failure.find("fragment") != std::string::npos) mentions = true;
  }
  EXPECT_TRUE(mentions);
}

TEST(SymExec, AtomicIsOutsideTheFragment) {
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 4);
  const ThreadSummary s = sym_execute_thread(prg, {{1, 1, 1}, {4, 1, 1}, 4},
                                             0, env);
  EXPECT_FALSE(s.all_ok());
}

TEST(SymExec, SymbolicLoopHitsStepBound) {
  // A loop whose trip count is symbolic cannot be unrolled.
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f(.param .u32 n) {
  .reg .pred %p<2>;
  .reg .u32 %r<3>;
  ld.param.u32 %r1, [n];
  mov.u32 %r2, 0;
L:
  setp.ge.u32 %p1, %r2, %r1;
  @%p1 bra DONE;
  add.u32 %r2, %r2, 1;
  bra L;
DONE:
  ret;
})").kernel("f");
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  SymExecOptions opts;
  opts.max_paths = 8;
  const ThreadSummary s =
      sym_execute_thread(prg, {{1, 1, 1}, {1, 1, 1}, 1}, 0, env, opts);
  EXPECT_FALSE(s.all_ok());
}

}  // namespace
}  // namespace cac::sym
