// Differential testing of the block-level symbolic engine: evaluate
// its output terms under random concrete inputs and compare with the
// trusted concrete kernel, across schedulers.
#include <gtest/gtest.h>

#include "common/random_program.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "sym/block_exec.h"

namespace cac::sym {
namespace {

class BlockDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockDifferentialTest, ReductionTermMatchesConcrete) {
  cac::testing::Rng rng(GetParam());
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};

  // Symbolic once.
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;
  const auto out = s.writes_to("out");
  ASSERT_EQ(out.size(), 1u);

  // Concrete runs with random inputs under different schedulers.
  std::unordered_map<std::string, std::uint64_t> assignment;
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next());
    launch.global_u32(4 * i, v);
    assignment["arr_A[" + std::to_string(4 * i) + "]"] = v;
  }
  const std::uint64_t predicted = arena.evaluate(out[0].value, assignment);

  for (int variant = 0; variant < 3; ++variant) {
    sem::Machine m = launch.machine();
    sched::FirstChoiceScheduler fc;
    sched::RoundRobinScheduler rr;
    sched::RandomScheduler rnd(GetParam() + 100);
    sched::Scheduler* scheds[] = {&fc, &rr, &rnd};
    ASSERT_TRUE(sched::run(prg, kc, m, *scheds[variant]).terminated());
    EXPECT_EQ(m.memory.load(mem::Space::Global, 64, 4), predicted)
        << "scheduler variant " << variant;
  }
}

TEST_P(BlockDifferentialTest, AtomicSumTermMatchesConcrete) {
  cac::testing::Rng rng(GetParam() * 7919);
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};

  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 8);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;
  const auto out = s.writes_to("out");
  ASSERT_EQ(out.size(), 1u);

  std::unordered_map<std::string, std::uint64_t> assignment;
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 64).param("size", 8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next());
    launch.global_u32(4 * i, v);
    assignment["arr_A[" + std::to_string(4 * i) + "]"] = v;
  }
  const auto init_out = static_cast<std::uint32_t>(rng.next());
  launch.global_u32(64, init_out);
  assignment["out[0]"] = init_out;

  const std::uint64_t predicted = arena.evaluate(out[0].value, assignment);
  sem::Machine m = launch.machine();
  sched::RandomScheduler sched(GetParam());
  ASSERT_TRUE(sched::run(prg, kc, m, sched).terminated());
  EXPECT_EQ(m.memory.load(mem::Space::Global, 64, 4), predicted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cac::sym
