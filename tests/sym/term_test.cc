#include "sym/term.h"

#include <gtest/gtest.h>

namespace cac::sym {
namespace {

TEST(Term, HashConsing) {
  TermArena a;
  EXPECT_EQ(a.konst(5, 32), a.konst(5, 32));
  EXPECT_NE(a.konst(5, 32), a.konst(5, 64));
  EXPECT_EQ(a.var("x", 32), a.var("x", 32));
  const TermRef x = a.var("x", 32);
  const TermRef y = a.var("y", 32);
  EXPECT_EQ(a.add(x, y), a.add(x, y));
}

TEST(Term, ConstantFolding) {
  TermArena a;
  EXPECT_EQ(a.const_value(a.add(a.konst(3, 32), a.konst(4, 32))), 7u);
  EXPECT_EQ(a.const_value(a.mul(a.konst(6, 8), a.konst(50, 8))), 44u);  // mod 256
  EXPECT_EQ(a.const_value(a.sub(a.konst(1, 32), a.konst(2, 32))),
            0xffffffffu);
  EXPECT_EQ(a.const_value(a.div(a.konst(7, 32), a.konst(0, 32), false)),
            0xffffffffu);  // the model's div-by-zero value
}

TEST(Term, AlgebraicIdentities) {
  TermArena a;
  const TermRef x = a.var("x", 32);
  EXPECT_EQ(a.add(x, a.konst(0, 32)), x);
  EXPECT_EQ(a.add(a.konst(0, 32), x), x);
  EXPECT_EQ(a.mul(x, a.konst(1, 32)), x);
  EXPECT_EQ(a.const_value(a.mul(x, a.konst(0, 32))), 0u);
  EXPECT_EQ(a.const_value(a.bxor(x, x)), 0u);
  EXPECT_EQ(a.band(x, x), x);
  EXPECT_EQ(a.bor(x, a.konst(0, 32)), x);
  EXPECT_EQ(a.band(x, a.konst(0xffffffff, 32)), x);
  EXPECT_EQ(a.const_value(a.sub(x, x)), 0u);
}

TEST(Term, CommutativeCanonicalization) {
  TermArena a;
  const TermRef x = a.var("x", 32);
  const TermRef y = a.var("y", 32);
  EXPECT_EQ(a.add(x, y), a.add(y, x));
  EXPECT_EQ(a.mul(x, y), a.mul(y, x));
  EXPECT_EQ(a.add(a.konst(5, 32), x), a.add(x, a.konst(5, 32)));
}

TEST(Term, LinearSumCollapses) {
  TermArena a;
  const TermRef x = a.var("x", 64);
  const TermRef t = a.add(a.add(x, a.konst(8, 64)), a.konst(4, 64));
  const LinearForm lf = a.linear_form(t);
  ASSERT_TRUE(lf.base.has_value());
  EXPECT_EQ(*lf.base, x);
  EXPECT_EQ(lf.offset, 12u);
  // x - 4 also normalizes into the linear form.
  const LinearForm lf2 = a.linear_form(a.sub(x, a.konst(4, 64)));
  ASSERT_TRUE(lf2.base.has_value());
  EXPECT_EQ(lf2.offset, 0xfffffffffffffffcull);
}

TEST(Term, DoubleNegations) {
  TermArena a;
  const TermRef x = a.var("x", 1);
  EXPECT_EQ(a.lnot(a.lnot(x)), x);
  const TermRef y = a.var("y", 32);
  EXPECT_EQ(a.bnot(a.bnot(y)), y);
}

TEST(Term, DecideEq) {
  TermArena a;
  const TermRef x = a.var("x", 64);
  const TermRef y = a.var("y", 64);
  using D = TermArena::Decision;
  EXPECT_EQ(a.decide_eq(x, x), D::Yes);
  EXPECT_EQ(a.decide_eq(a.konst(3, 64), a.konst(3, 64)), D::Yes);
  EXPECT_EQ(a.decide_eq(a.konst(3, 64), a.konst(4, 64)), D::No);
  EXPECT_EQ(a.decide_eq(a.add(x, a.konst(4, 64)), a.add(x, a.konst(4, 64))),
            D::Yes);
  EXPECT_EQ(a.decide_eq(a.add(x, a.konst(4, 64)), a.add(x, a.konst(8, 64))),
            D::No);
  EXPECT_EQ(a.decide_eq(x, y), D::Unknown);
  EXPECT_EQ(a.decide_eq(a.add(x, a.konst(4, 64)), y), D::Unknown);
}

TEST(Term, EqSimplification) {
  TermArena a;
  const TermRef x = a.var("x", 32);
  EXPECT_EQ(a.eq(x, x), a.tru());
  EXPECT_EQ(a.eq(a.add(x, a.konst(1, 32)), a.add(x, a.konst(2, 32))),
            a.fls());
}

TEST(Term, IteSimplification) {
  TermArena a;
  const TermRef x = a.var("x", 32);
  const TermRef y = a.var("y", 32);
  const TermRef c = a.var("c", 1);
  EXPECT_EQ(a.ite(a.tru(), x, y), x);
  EXPECT_EQ(a.ite(a.fls(), x, y), y);
  EXPECT_EQ(a.ite(c, x, x), x);
  EXPECT_EQ(a.ite(a.lnot(c), x, y), a.ite(c, y, x));
}

TEST(Term, WidthChanges) {
  TermArena a;
  EXPECT_EQ(a.const_value(a.sext(a.konst(0x80, 8), 32)), 0xffffff80u);
  EXPECT_EQ(a.const_value(a.zext(a.konst(0x80, 8), 32)), 0x80u);
  EXPECT_EQ(a.const_value(a.trunc(a.konst(0x1234, 32), 8)), 0x34u);
  const TermRef x = a.var("x", 32);
  EXPECT_EQ(a.zext(x, 32), x);                 // no-op
  EXPECT_EQ(a.trunc(a.zext(x, 64), 32), x);    // round trip
}

TEST(Term, WidthMismatchThrows) {
  TermArena a;
  EXPECT_THROW(a.add(a.konst(1, 32), a.konst(1, 64)), cac::KernelError);
  EXPECT_THROW(a.ite(a.var("c", 32), a.konst(0, 8), a.konst(0, 8)),
               cac::KernelError);
}

TEST(Term, Evaluate) {
  TermArena a;
  const TermRef x = a.var("x", 32);
  const TermRef y = a.var("y", 32);
  const TermRef t = a.add(a.mul(x, a.konst(3, 32)), y);
  EXPECT_EQ(a.evaluate(t, {{"x", 10}, {"y", 5}}), 35u);
  EXPECT_THROW((void)a.evaluate(t, {{"x", 10}}), cac::KernelError);
}

class TermPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TermPropertyTest, SimplifierPreservesSemantics) {
  // Build expressions two different ways and evaluate both under a
  // random assignment: smart constructors must be meaning-preserving.
  std::uint64_t seed = GetParam() * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  TermArena a;
  const TermRef x = a.var("x", 32);
  const TermRef y = a.var("y", 32);
  const std::unordered_map<std::string, std::uint64_t> env{
      {"x", next()}, {"y", next()}};

  const TermRef lhs =
      a.sub(a.add(a.add(x, a.konst(7, 32)), y), a.konst(7, 32));
  const TermRef rhs = a.add(x, y);
  EXPECT_EQ(a.evaluate(lhs, env), a.evaluate(rhs, env));

  const TermRef cmp = a.ge(x, y, true);
  const bool expect = static_cast<std::int32_t>(env.at("x")) >=
                      static_cast<std::int32_t>(env.at("y"));
  EXPECT_EQ(a.evaluate(cmp, env), expect ? 1u : 0u);

  const TermRef wide =
      a.mul(a.sext(x, 64), a.sext(y, 64));
  const auto sx = static_cast<std::int64_t>(
      static_cast<std::int32_t>(env.at("x")));
  const auto sy = static_cast<std::int64_t>(
      static_cast<std::int32_t>(env.at("y")));
  EXPECT_EQ(a.evaluate(wide, env),
            static_cast<std::uint64_t>(sx * sy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace cac::sym
