// Block-level symbolic execution: barriers, Shared memory and the
// symbolic valid-bit discipline.
#include "sym/block_exec.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::sym {
namespace {

TEST(BlockExec, ReductionSumProvedForArbitraryInputs) {
  // The flagship result this engine adds over the per-thread one: the
  // two-warp tree reduction's output is the exact addition tree over
  // arbitrary A — barriers, Shared traffic and divergence included.
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};  // 2 warps
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;
  EXPECT_EQ(s.barriers, 4u);  // initial + offsets 4,2,1

  // Expected: fold the same tree the kernel computes.
  std::vector<TermRef> v;
  for (unsigned i = 0; i < 8; ++i) {
    v.push_back(arena.var("arr_A[" + std::to_string(4 * i) + "]", 32));
  }
  for (unsigned offset = 4; offset; offset >>= 1) {
    for (unsigned i = 0; i < offset; ++i) {
      v[i] = arena.add(v[i + offset], v[i]);
    }
  }
  const auto out = s.writes_to("out");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, 0u);
  EXPECT_EQ(out[0].value, v[0]) << arena.to_string(out[0].value);
}

TEST(BlockExec, MissingBarrierIsRejectedSymbolically) {
  // The paper's valid-bit discipline, as a symbolic proof failure: a
  // Shared read of another warp's same-phase store aborts the run.
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  EXPECT_FALSE(s.ok);
  // With first-warp-runs-ahead sequencing the first violation is the
  // read of the second warp's never-committed cells.
  EXPECT_NE(s.failure.find("bar.sync"), std::string::npos) << s.failure;
}

TEST(BlockExec, SingleWarpReductionNeedsNoCrossWarpChecks) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};  // 1 warp
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;
  std::vector<TermRef> v;
  for (unsigned i = 0; i < 4; ++i) {
    v.push_back(arena.var("arr_A[" + std::to_string(4 * i) + "]", 32));
  }
  for (unsigned offset = 2; offset; offset >>= 1) {
    for (unsigned i = 0; i < offset; ++i) {
      v[i] = arena.add(v[i + offset], v[i]);
    }
  }
  const auto out = s.writes_to("out");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, v[0]);
}

TEST(BlockExec, VectorAddMatchesPerThreadEngine) {
  // With a concrete size the block engine and the per-thread engine
  // must produce identical write terms.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 4);
  const BlockSummary blk = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(blk.ok) << blk.failure;

  std::vector<SymWrite> per_thread;
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    const ThreadSummary t = sym_execute_thread(prg, kc, tid, env);
    ASSERT_TRUE(t.all_ok());
    ASSERT_EQ(t.paths.size(), 1u);
    for (const SymWrite& w : t.paths[0].writes) per_thread.push_back(w);
  }
  std::sort(per_thread.begin(), per_thread.end());
  EXPECT_EQ(blk.writes, per_thread);
}

TEST(BlockExec, SymbolicGuardIsOutsideTheFragment) {
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);  // size left symbolic
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.failure.find("symbolic branch predicate"), std::string::npos);
}

TEST(BlockExec, DivergenceWithConcretePredicatesWorks) {
  // size=2 of 4 threads: the warp splits at the guard and reconverges
  // at the Sync, all with concrete predicates.
  const ptx::Program prg = programs::vector_add_listing2();
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 2);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;
  const auto out = s.writes_to("arr_C");
  ASSERT_EQ(out.size(), 2u);  // only threads 0,1 store
  EXPECT_EQ(out[0].offset, 0u);
  EXPECT_EQ(out[1].offset, 4u);
}

TEST(BlockExec, BarrierDivergenceDetected) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.failure.find("stuck"), std::string::npos) << s.failure;
}

TEST(BlockExec, CommutativeAtomicSumProved) {
  // atom.add folds to the same value under every update order (AC),
  // so the engine's canonical order proves the sum for all inputs —
  // including an arbitrary initial value of the accumulator.
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};  // 2 warps
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "size", 8);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;

  TermRef acc = arena.var("out[0]", 32);
  for (unsigned i = 0; i < 8; ++i) {
    acc = arena.add(acc, arena.var("arr_A[" + std::to_string(4 * i) + "]",
                                   32));
  }
  const auto out = s.writes_to("out");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, acc) << arena.to_string(out[0].value);
}

TEST(BlockExec, NonCommutativeAtomicRejected) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f(.param .u64 out) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [out];
  mov.u32 %r1, %tid.x;
  atom.global.exch.u32 %r2, [%rd1], %r1;
  ret;
})").kernel("f");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.failure.find("non-commutative"), std::string::npos);
}

TEST(BlockExec, StoringFetchedOldValueRejected) {
  // The old value returned by atom.add is schedule-dependent; storing
  // it must poison the proof.
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f(.param .u64 out, .param .u64 log) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  ld.param.u64 %rd1, [out];
  ld.param.u64 %rd2, [log];
  mov.u32 %r1, %tid.x;
  atom.global.add.u32 %r2, [%rd1], %r1;
  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd2, %rd2, %rd3;
  st.global.u32 [%rd2], %r2;
  ret;
})").kernel("f");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.failure.find("fetched old value"), std::string::npos)
      << s.failure;
}

TEST(BlockExec, PlainStoreAfterBarrierStaysPlain) {
  // Regression: a plain store creating a fresh cell in a phase > 0
  // must not be misclassified as atomic (aggregate-init field order).
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f(.param .u64 out) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [out];
  bar.sync 0;
  mov.u32 %r1, 5;
  st.global.u32 [%rd1], %r1;
  ld.global.u32 %r2, [%rd1];
  ret;
})").kernel("f");
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  ASSERT_TRUE(s.ok) << s.failure;
  const auto out = s.writes_to("out");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, arena.konst(5, 32));
}

TEST(BlockExec, PlainAndAtomicAccessMixRejected) {
  const ptx::Program prg = ptx::load_ptx(R"(
.visible .entry f(.param .u64 out) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [out];
  mov.u32 %r1, 1;
  atom.global.add.u32 %r2, [%rd1], %r1;
  ld.global.u32 %r3, [%rd1];
  ret;
})").kernel("f");
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const BlockSummary s = sym_execute_block(prg, kc, 0, env);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.failure.find("atomically-updated"), std::string::npos);
}

}  // namespace
}  // namespace cac::sym
