// For-all-inputs theorems: the paper's §IV partial-correctness result
// (A + B = C) generalized to arbitrary inputs, plus translation
// equivalence between Listing 1 (mechanically lowered) and Listing 2.
#include "vcgen/prove.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::vcgen {
namespace {

using sym::SymEnv;
using sym::SymWrite;
using sym::TermArena;
using sym::TermRef;

sem::KernelConfig kc8() { return {{1, 1, 1}, {8, 1, 1}, 8}; }

GuardedWriteSpec vecadd_spec() {
  GuardedWriteSpec spec;
  spec.guard = [](TermArena& a, std::uint32_t tid) {
    return a.lt(a.konst(tid, 32), a.var("size", 32), true);
  };
  spec.writes = [](TermArena& a, std::uint32_t tid) {
    const std::string idx = std::to_string(4 * tid);
    return std::vector<SymWrite>{
        {"arr_C", 4ull * tid, 4,
         a.add(a.var("arr_A[" + idx + "]", 32),
               a.var("arr_B[" + idx + "]", 32))}};
  };
  return spec;
}

TEST(Prove, VectorAddPartialCorrectnessForAllInputs) {
  // The paper's A+B=C theorem with µ universally quantified: proved
  // here for arbitrary array contents AND arbitrary size.
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ProofResult r = prove_guarded_writes(prg, kc8(), env, vecadd_spec());
  EXPECT_TRUE(r.proved) << r.detail;
  EXPECT_EQ(r.threads, 8u);
  EXPECT_EQ(r.paths, 16u);        // {guard, !guard} per thread
  EXPECT_GE(r.obligations, 16u);
}

TEST(Prove, VectorAddMechanicalLoweringToo) {
  const ptx::Program prg =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ProofResult r = prove_guarded_writes(prg, kc8(), env, vecadd_spec());
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(Prove, WrongSpecIsRejected) {
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  GuardedWriteSpec spec = vecadd_spec();
  spec.writes = [](TermArena& a, std::uint32_t tid) {
    const std::string idx = std::to_string(4 * tid);
    return std::vector<SymWrite>{
        {"arr_C", 4ull * tid, 4,
         a.sub(a.var("arr_A[" + idx + "]", 32),      // wrong: A - B
               a.var("arr_B[" + idx + "]", 32))}};
  };
  const ProofResult r = prove_guarded_writes(prg, kc8(), env, spec);
  EXPECT_FALSE(r.proved);
  EXPECT_NE(r.detail.find("stores"), std::string::npos);
}

TEST(Prove, WrongGuardIsRejected) {
  const ptx::Program prg = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  GuardedWriteSpec spec = vecadd_spec();
  spec.guard = [](TermArena& a, std::uint32_t tid) {
    return a.le(a.konst(tid, 32), a.var("size", 32), true);  // <= not <
  };
  const ProofResult r = prove_guarded_writes(prg, kc8(), env, spec);
  EXPECT_FALSE(r.proved);
}

TEST(Prove, XorCipherCorrectness) {
  const ptx::Program prg =
      ptx::load_ptx(programs::xor_cipher_ptx()).kernel("xor_cipher");
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  GuardedWriteSpec spec;
  spec.guard = [](TermArena& a, std::uint32_t tid) {
    return a.lt(a.konst(tid, 32), a.var("size", 32), false);  // unsigned
  };
  spec.writes = [](TermArena& a, std::uint32_t tid) {
    const std::string idx = std::to_string(4 * tid);
    return std::vector<SymWrite>{
        {"arr_C", 4ull * tid, 4,
         a.bxor(a.var("arr_A[" + idx + "]", 32),
                a.var("arr_B[" + idx + "]", 32))}};
  };
  const ProofResult r = prove_guarded_writes(prg, kc8(), env, spec);
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(Prove, ScanSignatureWithConcreteLengths) {
  const ptx::Program prg = ptx::load_ptx(programs::scan_signature_ptx())
                               .kernel("scan_signature");
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, prg);
  env.bind(prg, "dlen", 8);
  env.bind(prg, "plen", 2);
  GuardedWriteSpec spec;
  spec.guard = nullptr;  // guard concretizes; one path per thread
  spec.writes = [](TermArena& a, std::uint32_t tid) -> std::vector<SymWrite> {
    if (tid > 6) return {};  // i > dlen - plen: no store
    TermRef m = a.konst(1, 32);
    for (unsigned j = 0; j < 2; ++j) {
      const TermRef d = a.var("data[" + std::to_string(tid + j) + "]", 8);
      const TermRef p = a.var("pattern[" + std::to_string(j) + "]", 8);
      m = a.ite(a.ne(a.zext(d, 32), a.zext(p, 32)), a.konst(0, 32), m);
    }
    return {{"out", tid, 1, a.trunc(m, 8)}};
  };
  const ProofResult r = prove_guarded_writes(prg, kc8(), env, spec);
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(Prove, Listing1EquivalentToListing2) {
  // Machine-checked: the mechanical lowering of the paper's Listing 1
  // and its hand translation (Listing 2) perform identical stores
  // under identical conditions for every input.
  const ptx::Program mech =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  const ptx::Program hand = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, mech);
  const ProofResult r = prove_equivalent(mech, hand, kc8(), env);
  EXPECT_TRUE(r.proved) << r.detail;
  EXPECT_EQ(r.threads, 8u);
}

TEST(Prove, DifferentKernelsAreNotEquivalent) {
  const ptx::Program add = programs::vector_add_listing2();
  const ptx::Program xr =
      ptx::load_ptx(programs::xor_cipher_ptx()).kernel("xor_cipher");
  TermArena arena;
  SymEnv env = SymEnv::symbolic(arena, add);
  const ProofResult r = prove_equivalent(add, xr, kc8(), env);
  EXPECT_FALSE(r.proved);
}

TEST(Prove, EquivalenceIsInsensitiveToRegisterAllocation) {
  // Same computation, different register numbering and operand order.
  const ptx::Program variant = ptx::load_ptx(R"(
.visible .entry add_vector(
  .param .u64 arr_A, .param .u64 arr_B, .param .u64 arr_C, .param .u32 size
) {
  .reg .pred %p<2>;
  .reg .u32 %r<20>;
  .reg .u64 %rd<20>;
  ld.param.u64 %rd11, [arr_A];
  ld.param.u64 %rd12, [arr_B];
  ld.param.u64 %rd13, [arr_C];
  ld.param.u32 %r12, [size];
  mov.u32 %r13, %ntid.x;
  mov.u32 %r14, %ctaid.x;
  mov.u32 %r15, %tid.x;
  mad.lo.s32 %r11, %r14, %r13, %r15;
  setp.ge.s32 %p1, %r11, %r12;
  @%p1 bra OUT;
  mul.wide.s32 %rd15, %r11, 4;
  add.s64 %rd16, %rd11, %rd15;
  add.s64 %rd18, %rd12, %rd15;
  ld.global.u32 %r16, [%rd16];
  ld.global.u32 %r17, [%rd18];
  add.s32 %r18, %r16, %r17;
  add.s64 %rd19, %rd13, %rd15;
  st.global.u32 [%rd19], %r18;
OUT:
  ret;
})").kernel("add_vector");
  const ptx::Program hand = programs::vector_add_listing2();
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, hand);
  const ProofResult r = prove_equivalent(variant, hand, kc8(), env);
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(Prove, BlockWritesProveTheReduction) {
  // The barrier/Shared-memory theorem the per-thread engine cannot
  // state: out[0] is the exact addition tree over arbitrary A.
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ProofResult r = prove_block_writes(
      prg, kc, env, [](TermArena& a) {
        std::vector<TermRef> v;
        for (unsigned i = 0; i < 8; ++i) {
          v.push_back(a.var("arr_A[" + std::to_string(4 * i) + "]", 32));
        }
        for (unsigned offset = 4; offset; offset >>= 1) {
          for (unsigned i = 0; i < offset; ++i) {
            v[i] = a.add(v[i + offset], v[i]);
          }
        }
        return std::vector<SymWrite>{{"out", 0, 4, v[0]}};
      });
  EXPECT_TRUE(r.proved) << r.detail;
}

TEST(Prove, BlockWritesRejectWrongTree) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  const ProofResult r = prove_block_writes(
      prg, kc, env, [](TermArena& a) {
        // Wrong: claims the sum of only the first two elements.
        return std::vector<SymWrite>{
            {"out", 0, 4,
             a.add(a.var("arr_A[0]", 32), a.var("arr_A[4]", 32))}};
      });
  EXPECT_FALSE(r.proved);
  EXPECT_NE(r.detail.find("!= expected"), std::string::npos);
}

TEST(Prove, BarrierKernelReportsUnsupportedCleanly) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  TermArena arena;
  const SymEnv env = SymEnv::symbolic(arena, prg);
  GuardedWriteSpec spec;
  spec.guard = nullptr;
  spec.writes = [](TermArena&, std::uint32_t) {
    return std::vector<SymWrite>{};
  };
  const ProofResult r =
      prove_guarded_writes(prg, {{1, 1, 1}, {4, 1, 1}, 4}, env, spec);
  EXPECT_FALSE(r.proved);
  EXPECT_NE(r.detail.find("failed"), std::string::npos);
}

}  // namespace
}  // namespace cac::vcgen
