#include "support/bits.h"

#include <gtest/gtest.h>

namespace cac {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(1), 0x1u);
  EXPECT_EQ(low_mask(8), 0xffu);
  EXPECT_EQ(low_mask(16), 0xffffu);
  EXPECT_EQ(low_mask(32), 0xffffffffu);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(Bits, TruncateClearsHighBits) {
  EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
  EXPECT_EQ(truncate(0x100000000ull, 32), 0u);
  EXPECT_EQ(truncate(~0ull, 64), ~0ull);
}

TEST(Bits, ToSignedInterpretsTwosComplement) {
  EXPECT_EQ(to_signed(0xff, 8), -1);
  EXPECT_EQ(to_signed(0x80, 8), -128);
  EXPECT_EQ(to_signed(0x7f, 8), 127);
  EXPECT_EQ(to_signed(0xffffffff, 32), -1);
  EXPECT_EQ(to_signed(0x80000000, 32), INT32_MIN);
  EXPECT_EQ(to_signed(~0ull, 64), -1);
}

TEST(Bits, ToSignedIgnoresHighGarbage) {
  // Canonicalization: only the low w bits matter.
  EXPECT_EQ(to_signed(0xabcd00ff, 8), -1);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8, 32), 0xffffffffu);
  EXPECT_EQ(sign_extend(0x7f, 8, 32), 0x7fu);
  EXPECT_EQ(sign_extend(0x8000, 16, 64), 0xffffffffffff8000ull);
  EXPECT_EQ(sign_extend(0x1234, 16, 16), 0x1234u);
}

TEST(Bits, Shifts) {
  EXPECT_EQ(shl(1, 31, 32), 0x80000000u);
  EXPECT_EQ(shl(1, 32, 32), 0u);  // over-shift clamps to zero
  EXPECT_EQ(lshr(0x80000000u, 31, 32), 1u);
  EXPECT_EQ(lshr(0x80000000u, 32, 32), 0u);
  EXPECT_EQ(ashr(0x80000000u, 31, 32), 0xffffffffu);  // sign fills
  EXPECT_EQ(ashr(0x80000000u, 99, 32), 0xffffffffu);  // clamps to w-1
  EXPECT_EQ(ashr(0x40000000u, 30, 32), 1u);
}

class BitsWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitsWidthTest, TruncateIsIdempotent) {
  const unsigned w = GetParam();
  for (std::uint64_t v : {0ull, 1ull, 0xffull, 0xdeadbeefcafebabeull, ~0ull}) {
    EXPECT_EQ(truncate(truncate(v, w), w), truncate(v, w));
  }
}

TEST_P(BitsWidthTest, SignRoundTrip) {
  const unsigned w = GetParam();
  for (std::uint64_t v : {0ull, 1ull, 0x7full, 0x80ull, 0xffffull, ~0ull}) {
    const std::int64_t s = to_signed(v, w);
    EXPECT_EQ(truncate(static_cast<std::uint64_t>(s), w), truncate(v, w));
  }
}

TEST_P(BitsWidthTest, AshrOfNonNegativeEqualsLshr) {
  const unsigned w = GetParam();
  const std::uint64_t v = truncate(0x1234567890abcdefull, w) >> 1;  // MSB=0
  for (unsigned amount : {0u, 1u, 3u, w - 1}) {
    EXPECT_EQ(ashr(v, amount, w), lshr(v, amount, w));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitsWidthTest,
                         ::testing::Values(8u, 16u, 32u, 64u));

}  // namespace
}  // namespace cac
