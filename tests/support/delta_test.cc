// support::delta: the byte-delta codec underneath the tiered state
// store's warm tier.
//
//  * delta::make()/delta::apply() round-trip arbitrary base/target pairs, including
//    empty strings, identical strings, and disjoint strings;
//  * a randomized sweep over register-step-shaped edits (small changed
//    middle, common prefix/suffix) round-trips and actually compresses;
//  * delta::apply() rejects malformed op streams (truncation, bad op tags,
//    out-of-range copies, oversized literals) with support::BinError
//    rather than reading out of bounds or allocating absurdly.
#include "support/delta.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "support/binio.h"

namespace cac::support::delta {
namespace {

TEST(DeltaTest, RoundTripsEdgeCases) {
  const std::string cases[] = {
      "", "a", "abc", std::string(1000, 'x'),
      "the quick brown fox jumps over the lazy dog"};
  for (const auto& base : cases) {
    for (const auto& target : cases) {
      const std::string d = delta::make(base, target);
      EXPECT_EQ(delta::apply(base, d), target)
          << "base=" << base.size() << "B target=" << target.size() << "B";
    }
  }
}

TEST(DeltaTest, IdenticalInputIsTiny) {
  const std::string s(4096, 'k');
  const std::string d = delta::make(s, s);
  EXPECT_EQ(delta::apply(s, d), s);
  // One copy op: far smaller than re-encoding the payload.
  EXPECT_LT(d.size(), 64u);
}

TEST(DeltaTest, RandomizedStepShapedEditsRoundTripAndCompress) {
  std::mt19937_64 rng(0xdec0de);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 200; ++iter) {
    std::uniform_int_distribution<std::size_t> len_d(256, 2048);
    std::string base(len_d(rng), '\0');
    for (auto& c : base) c = static_cast<char>(byte(rng));

    // A semantic step mutates a handful of nearby bytes (one warp's
    // registers and pc are contiguous in the canonical encoding) and
    // leaves the bulk alone — emulate that clustered edit shape.  The
    // codec is prefix/suffix based, so locality is what makes a delta
    // pay.
    std::string target = base;
    std::uniform_int_distribution<std::size_t> win_d(
        0, target.size() - 33);
    const std::size_t win = win_d(rng);
    std::uniform_int_distribution<std::size_t> pos_d(win, win + 32);
    std::uniform_int_distribution<int> edits_d(1, 12);
    const int edits = edits_d(rng);
    for (int e = 0; e < edits; ++e)
      target[pos_d(rng)] = static_cast<char>(byte(rng));

    const std::string d = delta::make(base, target);
    ASSERT_EQ(delta::apply(base, d), target) << "iter " << iter;
    // Sparse edits must beat storing the target outright (the store
    // only keeps deltas that pay, but the codec should make them pay
    // for this shape).
    EXPECT_LT(d.size(), target.size()) << "iter " << iter;
  }
}

TEST(DeltaTest, RandomizedUnrelatedInputsRoundTrip) {
  std::mt19937_64 rng(0xfeed);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len_d(0, 512);
  for (int iter = 0; iter < 100; ++iter) {
    std::string base(len_d(rng), '\0');
    std::string target(len_d(rng), '\0');
    for (auto& c : base) c = static_cast<char>(byte(rng));
    for (auto& c : target) c = static_cast<char>(byte(rng));
    const std::string d = delta::make(base, target);
    EXPECT_EQ(delta::apply(base, d), target) << "iter " << iter;
  }
}

TEST(DeltaTest, ApplyRejectsTruncatedStream) {
  const std::string base = "hello world, this is the base";
  const std::string d = delta::make(base, "hello there, this is the base");
  for (std::size_t cut = 0; cut < d.size(); ++cut) {
    const std::string_view trunc(d.data(), cut);
    EXPECT_THROW(delta::apply(base, trunc), BinError) << "cut at " << cut;
  }
}

TEST(DeltaTest, ApplyRejectsBadOpTag) {
  BinWriter w;
  w.u32(1);
  w.u8(7);  // only 0 (copy) and 1 (literal) exist
  w.u32(0);
  w.u32(1);
  EXPECT_THROW(delta::apply("base", w.take()), BinError);
}

TEST(DeltaTest, ApplyRejectsCopyOutsideBase) {
  BinWriter w;
  w.u32(1);
  w.u8(0);   // copy
  w.u32(2);  // offset 2...
  w.u32(8);  // ...+8 runs past a 4-byte base
  EXPECT_THROW(delta::apply("base", w.take()), BinError);

  BinWriter w2;
  w2.u32(1);
  w2.u8(0);
  w2.u32(0xffffffffu);  // offset overflow
  w2.u32(0xffffffffu);
  EXPECT_THROW(delta::apply("base", w2.take()), BinError);
}

TEST(DeltaTest, ApplyRejectsOversizedLiteral) {
  BinWriter w;
  w.u32(1);
  w.u8(1);           // literal...
  w.u32(1u << 30);   // ...claiming 1 GiB with 3 bytes behind it
  w.bytes("abc", 3);
  EXPECT_THROW(delta::apply("base", w.take()), BinError);
}

}  // namespace
}  // namespace cac::support::delta
