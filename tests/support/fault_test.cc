// The deterministic fault-injection seam (support/fault.h) and the
// hardened file-I/O wrapper it gates (support/io.h).
//
// The contract under test (docs/robustness.md):
//
//  * plans parse exactly per the documented syntax and reject typos
//    loudly (a malformed plan must never silently run un-faulted);
//  * nth/every/count fire on deterministic call ordinals, p= fires on
//    a seeded RNG — the same plan replays the same faults every run;
//  * path globs select sites, and a cleared seam is inert;
//  * write_file_atomic never leaves a torn or half-renamed file behind
//    an injected open/write/rename failure — the old contents survive.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "support/fault.h"
#include "support/io.h"

namespace cac::support {
namespace {

// ---------------------------------------------------------------------
// Plan parsing

TEST(FaultPlan, ParsesDocumentedSyntax) {
  const FaultPlan p = FaultPlan::parse(
      "seed=42; op=write, path=*.ckpt, nth=3, err=ENOSPC;"
      "op=send,every=5,err=EPIPE;op=recv,delay=50");
  EXPECT_EQ(p.seed, 42u);
  ASSERT_EQ(p.rules.size(), 3u);

  EXPECT_EQ(p.rules[0].op, "write");
  EXPECT_EQ(p.rules[0].path, "*.ckpt");
  EXPECT_EQ(p.rules[0].nth, 3u);
  EXPECT_EQ(p.rules[0].err, ENOSPC);
  EXPECT_EQ(p.rules[0].max_fires, 1u);  // nth defaults to one-shot

  EXPECT_EQ(p.rules[1].op, "send");
  EXPECT_EQ(p.rules[1].every, 5u);
  EXPECT_EQ(p.rules[1].err, EPIPE);
  EXPECT_EQ(p.rules[1].max_fires, 0u);  // unlimited

  EXPECT_EQ(p.rules[2].op, "recv");
  EXPECT_EQ(p.rules[2].delay_ms, 50u);
  EXPECT_EQ(p.rules[2].err, 0);  // pure latency
}

TEST(FaultPlan, NumericErrnoAndDefaults) {
  const FaultPlan p = FaultPlan::parse("op=open,err=28");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].err, 28);
  EXPECT_EQ(p.rules[0].path, "*");
  const FaultPlan q = FaultPlan::parse("op=write,nth=1");
  EXPECT_EQ(q.rules[0].err, EIO);  // default errno
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("op=write,nht=3,err=EIO"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("op=write,err=ENOSUCHERR"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("op=write,nth=0,err=EIO"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("op=write,every=0,err=EIO"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("op=write,p=1.5,err=EIO"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("op=write,nth=2,every=3,err=EIO"),
               FaultPlanError);
}

// ---------------------------------------------------------------------
// Deterministic firing

TEST(FaultCheck, NthFiresExactlyOnce) {
  ScopedFaultPlan plan("op=write,nth=3,err=ENOSPC");
  std::vector<int> got;
  for (int i = 0; i < 6; ++i) got.push_back(fault_check("write", "x.spill"));
  EXPECT_EQ(got, (std::vector<int>{0, 0, ENOSPC, 0, 0, 0}));
  EXPECT_EQ(fault_injections(), 1u);
}

TEST(FaultCheck, EveryFiresPeriodically) {
  ScopedFaultPlan plan("op=send,every=3,err=EPIPE");
  std::vector<int> got;
  for (int i = 0; i < 9; ++i) got.push_back(fault_check("send"));
  EXPECT_EQ(got, (std::vector<int>{0, 0, EPIPE, 0, 0, EPIPE, 0, 0, EPIPE}));
}

TEST(FaultCheck, CountCapsFires) {
  ScopedFaultPlan plan("op=send,every=2,count=2,err=EPIPE");
  int fires = 0;
  for (int i = 0; i < 20; ++i) fires += fault_check("send") != 0;
  EXPECT_EQ(fires, 2);
}

TEST(FaultCheck, ProbabilisticFiringIsSeededAndDeterministic) {
  auto run = [](std::uint64_t seed) {
    FaultPlan p = FaultPlan::parse("op=recv,p=0.5,err=EIO");
    p.seed = seed;
    ScopedFaultPlan plan(std::move(p));
    std::vector<int> got;
    for (int i = 0; i < 64; ++i) got.push_back(fault_check("recv"));
    return got;
  };
  const std::vector<int> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);  // same seed, same schedule
  EXPECT_NE(a, c);  // different seed, different schedule
  int fires = 0;
  for (const int e : a) fires += e != 0;
  EXPECT_GT(fires, 8);   // p=0.5 over 64 draws: nowhere near 0...
  EXPECT_LT(fires, 56);  // ...nor 64
}

TEST(FaultCheck, PathGlobSelectsSites) {
  ScopedFaultPlan plan("op=write,path=*.spill,every=1,err=ENOSPC");
  EXPECT_EQ(fault_check("write", "/tmp/run/seg0.spill"), ENOSPC);
  EXPECT_EQ(fault_check("write", "/tmp/run/state.ckpt"), 0);
  EXPECT_EQ(fault_check("rename", "/tmp/run/seg0.spill"), 0);  // op gate
}

TEST(FaultCheck, WildcardOpMatchesEverything) {
  ScopedFaultPlan plan("op=*,every=1,err=EIO");
  EXPECT_EQ(fault_check("write", "a"), EIO);
  EXPECT_EQ(fault_check("send"), EIO);
  EXPECT_EQ(fault_check("anything-at-all"), EIO);
}

TEST(FaultCheck, FirstErroringRuleWins) {
  ScopedFaultPlan plan("op=write,every=1,err=ENOSPC;op=*,every=1,err=EIO");
  EXPECT_EQ(fault_check("write", "x"), ENOSPC);
  EXPECT_EQ(fault_check("open", "x"), EIO);
}

TEST(FaultCheck, ClearedSeamIsInert) {
  {
    ScopedFaultPlan plan("op=*,every=1,err=EIO");
    EXPECT_TRUE(fault_active());
    EXPECT_NE(fault_check("write", "x"), 0);
  }
  EXPECT_FALSE(fault_active());
  EXPECT_EQ(fault_check("write", "x"), 0);
  EXPECT_EQ(fault_injections(), 0u);  // counters reset with the plan
}

// ---------------------------------------------------------------------
// The hardened file-I/O wrapper under injection

std::string tmp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(IoFault, AtomicWriteSurvivesInjectedWriteFailure) {
  const std::string path = tmp_path("survives.json");
  write_file_atomic(path, "original");
  {
    ScopedFaultPlan plan("op=write,path=*survives.json,nth=1,err=ENOSPC");
    EXPECT_FALSE(try_write_file_atomic(path, "torn"));
  }
  // The failed write never replaced (or tore) the committed contents,
  // and no .tmp litter survives to confuse a directory scan.
  EXPECT_EQ(read_file(path), "original");
  EXPECT_EQ(read_file_or_empty(path + ".tmp"), "");
}

TEST(IoFault, AtomicWriteSurvivesInjectedRenameFailure) {
  const std::string path = tmp_path("norename.json");
  write_file_atomic(path, "original");
  {
    ScopedFaultPlan plan("op=rename,path=*norename.json,nth=1,err=EIO");
    try {
      write_file_atomic(path, "unpublished");
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.error_code(), EIO);
    }
  }
  EXPECT_EQ(read_file(path), "original");
  // ...and the seam off again, the same write goes through.
  write_file_atomic(path, "updated");
  EXPECT_EQ(read_file(path), "updated");
}

TEST(IoFault, InjectedReadFailureDegradesToEmpty) {
  const std::string path = tmp_path("readable.json");
  write_file_atomic(path, "payload");
  ScopedFaultPlan plan("op=open,path=*readable.json,every=1,err=EIO");
  EXPECT_EQ(read_file_or_empty(path), "");
  EXPECT_THROW(read_file(path), IoError);
}

}  // namespace
}  // namespace cac::support
