#include "support/hash.h"

#include <gtest/gtest.h>

namespace cac {
namespace {

TEST(Hash, Fnv1aIsDeterministic) {
  using std::string_view_literals::operator""sv;
  EXPECT_EQ(fnv1a("hello"sv), fnv1a("hello"sv));
  EXPECT_NE(fnv1a("hello"sv), fnv1a("hellp"sv));
  EXPECT_NE(fnv1a(""sv), fnv1a(""sv, 0x12345));
}

TEST(Hash, EmptyInputYieldsSeed) {
  EXPECT_EQ(fnv1a(nullptr, 0, 42), 42u);
}

TEST(Hash, HasherIsOrderSensitive) {
  Hasher a, b;
  a.mix(1).mix(2);
  b.mix(2).mix(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(Hash, HasherDistinguishesSplitBoundaries) {
  // mix(1), mix(2) must differ from mix over the concatenated bytes.
  Hasher a, b;
  a.mix(0x0102);
  b.mix(0x01).mix(0x02);
  EXPECT_NE(a.value(), b.value());
}

TEST(Hash, MixBytesMatchesContent) {
  const char x[] = "abcdef";
  Hasher a, b;
  a.mix_bytes(x, 6);
  b.mix_bytes(x, 6);
  EXPECT_EQ(a.value(), b.value());
  Hasher c;
  c.mix_bytes("abcdeg", 6);
  EXPECT_NE(a.value(), c.value());
}

TEST(Hash, MixWordsContentSensitive) {
  // mix_words chunks by 8 bytes; equal content hashes equal, any byte
  // difference — including in a ragged tail — changes the value.
  const char x[] = "0123456789abcdef0123";  // 20 bytes: 2 words + tail 4
  Hasher a, b;
  a.mix_words(x, 20);
  b.mix_words(x, 20);
  EXPECT_EQ(a.value(), b.value());
  char y[21];
  for (int i = 0; i < 20; ++i) {
    __builtin_memcpy(y, x, 20);
    y[i] ^= 1;
    Hasher c;
    c.mix_words(y, 20);
    EXPECT_NE(a.value(), c.value()) << "byte " << i;
  }
  Hasher shorter;
  shorter.mix_words(x, 19);
  EXPECT_NE(a.value(), shorter.value());
}

TEST(Hash, HashCacheMemoizesUntilInvalidated) {
  HashCache cache;
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 42ull;
  };
  EXPECT_EQ(cache.get_or(compute), 42u);
  EXPECT_EQ(cache.get_or(compute), 42u);
  EXPECT_EQ(computes, 1);
  cache.invalidate();
  EXPECT_EQ(cache.get_or(compute), 42u);
  EXPECT_EQ(computes, 2);
}

}  // namespace
}  // namespace cac
