#include "support/strings.h"

#include <gtest/gtest.h>

namespace cac {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("ld.global.u32", "ld."));
  EXPECT_FALSE(starts_with("ld", "ld."));
  EXPECT_TRUE(ends_with("ld.global.u32", ".u32"));
  EXPECT_FALSE(ends_with("u32", ".u32"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

}  // namespace
}  // namespace cac
