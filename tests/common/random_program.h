// Shared test helper: deterministic random PTX-model programs for
// property/differential testing.
#pragma once

#include <cstdint>
#include <vector>

#include "ptx/program.h"

namespace cac::testing {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed * 0x9e3779b97f4a7c15ull + 1) {}
  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
  bool chance(std::uint32_t percent) { return below(100) < percent; }

 private:
  std::uint64_t s_;
};

struct RandomProgramOptions {
  unsigned n_instrs = 16;
  bool allow_loads = true;      // absolute Global loads (disjoint u32/u8
                                // ranges, symbolic-fragment friendly)
  bool allow_stores = false;    // per-thread disjoint u32 stores
  bool allow_branch = true;     // one guarded forward branch
  std::uint32_t store_stride = 4;  // thread i stores at i*stride
};

/// Build a random register-computation program over six u32 and two
/// u64 registers.  With `allow_stores`, each thread may store r-values
/// to Global[tid*stride] (disjoint across threads).  Programs always
/// end with Exit and contain no Sync (use load_ptx on emit_ptx(...) to
/// get mechanical Sync insertion).
ptx::Program random_program(Rng& rng, const RandomProgramOptions& opts = {});

}  // namespace cac::testing
