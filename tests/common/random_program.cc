#include "common/random_program.h"

namespace cac::testing {

using namespace cac::ptx;

Program random_program(Rng& rng, const RandomProgramOptions& opts) {
  std::vector<Instr> code;
  const auto r32 = [](std::uint16_t i) {
    return Reg{TypeClass::UI, 32, i};
  };
  const Reg rd1{TypeClass::UI, 64, 1}, rd2{TypeClass::UI, 64, 2};
  const Reg addr_reg = r32(7);  // reserved: 128 + tid*stride, never a dst
  const Pred p1{1};

  code.push_back(IMov{r32(1), op_sreg(SregKind::Tid, Dim::X)});
  for (std::uint16_t i = 2; i <= 6; ++i) {
    code.push_back(IMov{r32(i), op_imm(static_cast<std::int64_t>(
                                     rng.next() & 0xffff))});
  }
  code.push_back(IMov{rd1, op_imm(static_cast<std::int64_t>(rng.next()))});
  code.push_back(IMov{rd2, op_imm(17)});
  if (opts.allow_stores) {
    code.push_back(ITop{TerOp::MadLo, UI(32), addr_reg, op_reg(r32(1)),
                        op_imm(opts.store_stride), op_imm(128)});
  }

  auto operand32 = [&]() -> Operand {
    if (rng.chance(25)) {
      return op_imm(static_cast<std::int64_t>(rng.next() & 0xff));
    }
    return op_reg(r32(static_cast<std::uint16_t>(1 + rng.below(6))));
  };

  auto random_alu = [&]() -> Instr {
    const Reg dst = r32(static_cast<std::uint16_t>(1 + rng.below(6)));
    const DType t = rng.chance(50) ? UI(32) : SI(32);
    switch (rng.below(10)) {
      case 0: return IBop{BinOp::Add, t, dst, operand32(), operand32()};
      case 1: return IBop{BinOp::Sub, t, dst, operand32(), operand32()};
      case 2: return IBop{BinOp::Mul, t, dst, operand32(), operand32()};
      case 3: return IBop{BinOp::And, t, dst, operand32(), operand32()};
      case 4: return IBop{BinOp::Xor, t, dst, operand32(), operand32()};
      case 5:
        return IBop{rng.chance(50) ? BinOp::Min : BinOp::Max, t, dst,
                    operand32(), operand32()};
      case 6:
        return IBop{rng.chance(50) ? BinOp::Div : BinOp::Rem, t, dst,
                    operand32(), operand32()};
      case 7:
        return IBop{rng.chance(50) ? BinOp::Shl : BinOp::Shr, t, dst,
                    operand32(), op_imm(rng.below(35))};
      case 8:
        return ITop{TerOp::MadLo, t, dst, operand32(), operand32(),
                    operand32()};
      default: {
        static constexpr UnOp kUnops[] = {UnOp::Not, UnOp::Neg, UnOp::Abs,
                                          UnOp::Popc, UnOp::Clz, UnOp::Brev};
        return IUop{kUnops[rng.below(6)], t, dst, operand32()};
      }
    }
  };

  for (unsigned i = 0; i < opts.n_instrs; ++i) {
    const std::uint32_t kind = rng.below(12);
    if (kind == 0 && opts.allow_loads) {
      switch (rng.below(3)) {
        case 0:
          code.push_back(ILd{Space::Global, UI(32),
                             r32(static_cast<std::uint16_t>(1 + rng.below(6))),
                             op_imm(4 * rng.below(8))});
          break;
        case 1:
          code.push_back(ILd{Space::Global, UI(8),
                             r32(static_cast<std::uint16_t>(1 + rng.below(6))),
                             op_imm(32 + rng.below(32))});
          break;
        default:
          code.push_back(ILd{Space::Global, SI(8),
                             r32(static_cast<std::uint16_t>(1 + rng.below(6))),
                             op_imm(32 + rng.below(32))});
      }
      continue;
    }
    if (kind == 1) {
      code.push_back(IBop{rng.chance(50) ? BinOp::Add : BinOp::Xor, UI(64),
                          rng.chance(50) ? rd1 : rd2, op_reg(rd1),
                          op_reg(rd2)});
      continue;
    }
    if (kind == 2) {
      if (rng.chance(50)) {
        code.push_back(IBop{BinOp::MulWide,
                            rng.chance(50) ? SI(32) : UI(32), rd1,
                            operand32(), operand32()});
      } else {
        code.push_back(IUop{UnOp::Cvt, rng.chance(50) ? SI(32) : UI(32),
                            rd2, operand32()});
      }
      continue;
    }
    if (kind == 3) {
      const CmpOp cmp = static_cast<CmpOp>(rng.below(6));
      const DType t = rng.chance(50) ? UI(32) : SI(32);
      code.push_back(ISetp{cmp, t, p1, operand32(), operand32()});
      code.push_back(ISelp{UI(32),
                           r32(static_cast<std::uint16_t>(1 + rng.below(6))),
                           operand32(), operand32(), p1});
      continue;
    }
    if (kind == 4 && opts.allow_stores) {
      code.push_back(ISt{Space::Global, UI(32), op_reg(addr_reg),
                         r32(static_cast<std::uint16_t>(1 + rng.below(6)))});
      continue;
    }
    code.push_back(random_alu());
  }

  if (opts.allow_branch && rng.chance(60)) {
    const DType t = rng.chance(50) ? UI(32) : SI(32);
    code.push_back(ISetp{static_cast<CmpOp>(rng.below(6)), t, p1,
                         operand32(), operand32()});
    std::vector<Instr> tail;
    for (unsigned i = 0, n = 1 + rng.below(4); i < n; ++i) {
      tail.push_back(random_alu());
    }
    code.push_back(IPBra{p1, rng.chance(50),
                         static_cast<std::uint32_t>(code.size() + 1 +
                                                    tail.size())});
    for (auto& i : tail) code.push_back(std::move(i));
  }
  code.push_back(IExit{});
  return Program("fuzz", std::move(code));
}

}  // namespace cac::testing
