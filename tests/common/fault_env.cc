// Every test binary honors CAC_FAULT_PLAN (support/fault.h), the same
// way the cacval binary does: CI's chaos job re-runs the instrumented
// suites with a benign plan armed, so every injection/recovery path
// executes under the sanitizers.  With the variable unset this is a
// no-op; a malformed plan fails the whole binary loudly rather than
// silently running un-faulted.
//
// This file is compiled directly into each test executable (not into
// a static library, where an otherwise-unreferenced initializer would
// be dropped at link time).
#include "support/fault.h"

namespace {
[[maybe_unused]] const bool g_fault_env_armed = [] {
  cac::support::fault_init_from_env();
  return true;
}();
}  // namespace
