// Extended ISA coverage: abs/popc/clz/brev and vectorized ld/st.
#include <gtest/gtest.h>

#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "sem/step.h"

namespace cac::ptx {
namespace {

const Reg r1{TypeClass::UI, 32, 1}, r2{TypeClass::UI, 32, 2};

sem::KernelConfig kc1() { return {{1, 1, 1}, {1, 1, 1}, 1}; }

std::uint64_t run_unop(UnOp op, const DType& t, std::int64_t input) {
  const Program prg("u", {IMov{r1, op_imm(input)},
                          IUop{op, t, r2, op_reg(r1)}, IExit{}});
  sem::Warp w = sem::make_warp(0, 1);
  mem::Memory mu;
  sem::step_warp(prg, kc1(), 0, w, mu);
  sem::step_warp(prg, kc1(), 0, w, mu);
  return w.threads()[0].rho.read(r2);
}

TEST(IsaExt, Abs) {
  EXPECT_EQ(run_unop(UnOp::Abs, SI(32), -5), 5u);
  EXPECT_EQ(run_unop(UnOp::Abs, SI(32), 5), 5u);
  EXPECT_EQ(run_unop(UnOp::Abs, SI(32), 0), 0u);
  // abs(INT_MIN) wraps to INT_MIN, as on hardware.
  EXPECT_EQ(run_unop(UnOp::Abs, SI(32), INT32_MIN), 0x80000000u);
}

TEST(IsaExt, Popc) {
  EXPECT_EQ(run_unop(UnOp::Popc, BD(32), 0), 0u);
  EXPECT_EQ(run_unop(UnOp::Popc, BD(32), 0xff), 8u);
  EXPECT_EQ(run_unop(UnOp::Popc, BD(32), -1), 32u);
}

TEST(IsaExt, Clz) {
  EXPECT_EQ(run_unop(UnOp::Clz, BD(32), 0), 32u);
  EXPECT_EQ(run_unop(UnOp::Clz, BD(32), 1), 31u);
  EXPECT_EQ(run_unop(UnOp::Clz, BD(32), -1), 0u);
  EXPECT_EQ(run_unop(UnOp::Clz, BD(32), 0x00010000), 15u);
}

TEST(IsaExt, Brev) {
  EXPECT_EQ(run_unop(UnOp::Brev, BD(32), 1), 0x80000000u);
  EXPECT_EQ(run_unop(UnOp::Brev, BD(32), 0x80000000), 1u);
  EXPECT_EQ(run_unop(UnOp::Brev, BD(32), 0xf0f0f0f0), 0x0f0f0f0fu);
}

TEST(IsaExt, UnopsParseFromPtx) {
  const Program prg = load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<5>;
  mov.u32 %r1, 12;
  abs.s32 %r2, %r1;
  popc.b32 %r3, %r1;
  clz.b32 %r4, %r1;
  brev.b32 %r1, %r1;
  ret;
})").kernel("f");
  EXPECT_EQ(prg.size(), 6u);
  EXPECT_TRUE(std::holds_alternative<IUop>(prg.fetch(1)));
  EXPECT_EQ(std::get<IUop>(prg.fetch(2)).op, UnOp::Popc);
  EXPECT_EQ(std::get<IUop>(prg.fetch(3)).op, UnOp::Clz);
  EXPECT_EQ(std::get<IUop>(prg.fetch(4)).op, UnOp::Brev);
}

TEST(IsaExt, VectorLoadLowersToScalarLoads) {
  const Program prg = load_ptx(R"(
.visible .entry f(.param .u64 p) {
  .reg .u32 %r<5>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [p];
  ld.global.v2.u32 {%r1, %r2}, [%rd1];
  ld.global.v4.u32 {%r1, %r2, %r3, %r4}, [%rd1+16];
  ret;
})").kernel("f");
  // 1 param load + 2 + 4 scalar loads + ret.
  ASSERT_EQ(prg.size(), 8u);
  const auto& l0 = std::get<ILd>(prg.fetch(1));
  const auto& l1 = std::get<ILd>(prg.fetch(2));
  EXPECT_TRUE(std::holds_alternative<Reg>(l0.addr));
  const auto& ri = std::get<RegImm>(l1.addr);
  EXPECT_EQ(ri.offset, 4);
  const auto& v4_last = std::get<ILd>(prg.fetch(6));
  EXPECT_EQ(std::get<RegImm>(v4_last.addr).offset, 16 + 12);
}

TEST(IsaExt, VectorStoreRoundTripsThroughMemory) {
  const Program prg = load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<5>;
  mov.u32 %r1, 11;
  mov.u32 %r2, 22;
  st.global.v2.u32 [8], {%r1, %r2};
  ld.global.v2.u32 {%r3, %r4}, [8];
  ret;
})").kernel("f");
  const sem::KernelConfig kc{{1, 1, 1}, {1, 1, 1}, 1};
  sem::Launch launch(prg, kc, mem::MemSizes{32, 0, 0, 0, 1});
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  ASSERT_TRUE(sched::run(prg, kc, m, s).terminated());
  EXPECT_EQ(m.memory.load(mem::Space::Global, 8, 4), 11u);
  EXPECT_EQ(m.memory.load(mem::Space::Global, 12, 4), 22u);
  sem::ThreadVec ts;
  m.grid.blocks[0].warps[0].collect_threads(ts);
  EXPECT_EQ(ts[0].rho.read({TypeClass::UI, 32, 3}), 11u);
  EXPECT_EQ(ts[0].rho.read({TypeClass::UI, 32, 4}), 22u);
}

TEST(IsaExt, VectorArityMismatchRejected) {
  EXPECT_THROW(load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<5>;
  .reg .u64 %rd<2>;
  ld.global.v2.u32 {%r1, %r2, %r3}, [%rd1];
  ret;
})"),
               cac::PtxError);
  EXPECT_THROW(load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<5>;
  .reg .u64 %rd<2>;
  ld.global.u32 {%r1, %r2}, [%rd1];
  ret;
})"),
               cac::PtxError);
}

}  // namespace
}  // namespace cac::ptx
