#include "ptx/cfg.h"

#include <gtest/gtest.h>

namespace cac::ptx {
namespace {

const Reg r1{TypeClass::UI, 32, 1};
const Pred p1{1};

std::vector<Instr> diamond() {
  // 0: setp-ish placeholder   1: pbra ->4   2: then   3: bra 5
  // 4: else                   5: join       6: exit
  return {
      IMov{r1, op_imm(0)},                       // 0
      IPBra{p1, false, 4},                       // 1
      IBop{BinOp::Add, UI(32), r1, op_reg(r1), op_imm(1)},  // 2
      IBra{5},                                   // 3
      IBop{BinOp::Add, UI(32), r1, op_reg(r1), op_imm(2)},  // 4
      IMov{r1, op_imm(9)},                       // 5
      IExit{},                                   // 6
  };
}

TEST(Cfg, DiamondBlocks) {
  const Cfg cfg(diamond());
  // Leaders: 0, 2 (after pbra), 4 (target & after bra), 5.
  ASSERT_EQ(cfg.blocks().size(), 4u);
  EXPECT_EQ(cfg.block_of(0), 0u);
  EXPECT_EQ(cfg.block_of(1), 0u);
  EXPECT_EQ(cfg.block_of(2), 1u);
  EXPECT_EQ(cfg.block_of(4), 2u);
  EXPECT_EQ(cfg.block_of(6), 3u);
}

TEST(Cfg, DiamondSuccessors) {
  const Cfg cfg(diamond());
  const auto& b = cfg.blocks();
  // Entry branches to both arms.
  ASSERT_EQ(b[0].succs.size(), 2u);
  // Both arms flow into the join, which exits.
  EXPECT_EQ(b[1].succs, std::vector<std::uint32_t>{3u});
  EXPECT_EQ(b[2].succs, std::vector<std::uint32_t>{3u});
  EXPECT_EQ(b[3].succs, std::vector<std::uint32_t>{cfg.exit_id()});
}

TEST(Cfg, DiamondPostdominators) {
  const Cfg cfg(diamond());
  const auto ipd = cfg.ipostdom();
  // The join block (id 3) immediately post-dominates everything.
  EXPECT_EQ(ipd[0], 3u);
  EXPECT_EQ(ipd[1], 3u);
  EXPECT_EQ(ipd[2], 3u);
  EXPECT_EQ(ipd[3], cfg.exit_id());
}

TEST(Cfg, LoopPostdominators) {
  // 0: head  1: pbra exit->4   2: body   3: bra 0   4: exit
  const std::vector<Instr> loop = {
      IMov{r1, op_imm(0)},   // 0
      IPBra{p1, false, 4},   // 1
      IBop{BinOp::Add, UI(32), r1, op_reg(r1), op_imm(1)},  // 2
      IBra{0},               // 3
      IExit{},               // 4
  };
  const Cfg cfg(loop);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const auto ipd = cfg.ipostdom();
  // Exit block post-dominates the head; the body's ipostdom is the head.
  EXPECT_EQ(ipd[0], 2u);
  EXPECT_EQ(ipd[1], 0u);
  EXPECT_EQ(ipd[2], cfg.exit_id());
}

TEST(Cfg, BranchJoinOnlyAtExit) {
  // Divergent paths that never rejoin before ret.
  const std::vector<Instr> code = {
      IPBra{p1, false, 3},  // 0
      IMov{r1, op_imm(1)},  // 1
      IExit{},              // 2
      IMov{r1, op_imm(2)},  // 3
      IExit{},              // 4
  };
  const Cfg cfg(code);
  const auto ipd = cfg.ipostdom();
  EXPECT_EQ(ipd[cfg.block_of(0)], cfg.exit_id());
}

TEST(Cfg, InfiniteLoopMapsToExit) {
  const std::vector<Instr> code = {
      IMov{r1, op_imm(0)},  // 0
      IBra{1},              // 1: self-loop, never reaches exit
  };
  const Cfg cfg(code);
  const auto ipd = cfg.ipostdom();
  EXPECT_EQ(ipd[cfg.block_of(1)], cfg.exit_id());
}

TEST(Cfg, EmptyProgramThrows) {
  EXPECT_THROW(Cfg(std::vector<Instr>{}), cac::KernelError);
}

TEST(Cfg, FallThroughPastEndThrows) {
  EXPECT_THROW(Cfg({IMov{r1, op_imm(0)}}), cac::KernelError);
}

}  // namespace
}  // namespace cac::ptx
