#include "ptx/lexer.h"

#include <gtest/gtest.h>

namespace cac::ptx {
namespace {

TEST(Lexer, BasicTokens) {
  const auto toks = lex(".reg .u32 %r<9>;");
  ASSERT_EQ(toks.size(), 8u);  // incl. ';' and End
  EXPECT_TRUE(toks[0].is_directive("reg"));
  EXPECT_TRUE(toks[1].is_directive("u32"));
  EXPECT_EQ(toks[2].kind, TokKind::RegRef);
  EXPECT_EQ(toks[2].text, "r");
  EXPECT_TRUE(toks[3].is_punct('<'));
  EXPECT_EQ(toks[4].kind, TokKind::Int);
  EXPECT_EQ(toks[4].value, 9);
  EXPECT_TRUE(toks[5].is_punct('>'));
}

TEST(Lexer, SpecialRegisterWithDimension) {
  const auto toks = lex("mov.u32 %r3, %ntid.x;");
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].text, "mov");
  EXPECT_TRUE(toks[1].is_directive("u32"));
  EXPECT_EQ(toks[2].text, "r3");
  EXPECT_EQ(toks[4].kind, TokKind::RegRef);
  EXPECT_EQ(toks[4].text, "ntid.x");
}

TEST(Lexer, GuardAndBrackets) {
  const auto toks = lex("@%p1 bra BB0_2;");
  EXPECT_TRUE(toks[0].is_punct('@'));
  EXPECT_EQ(toks[1].text, "p1");
  EXPECT_EQ(toks[2].text, "bra");
  EXPECT_EQ(toks[3].text, "BB0_2");
}

TEST(Lexer, MemoryOperandWithOffset) {
  const auto toks = lex("ld.global.u32 %r6, [%rd8+4];");
  EXPECT_TRUE(toks[5].is_punct('['));
  EXPECT_EQ(toks[6].text, "rd8");
  EXPECT_TRUE(toks[7].is_punct('+'));
  EXPECT_EQ(toks[8].value, 4);
  EXPECT_TRUE(toks[9].is_punct(']'));
}

TEST(Lexer, HexAndSuffixedLiterals) {
  const auto toks = lex("0x1F 42U 0");
  EXPECT_EQ(toks[0].value, 0x1f);
  EXPECT_EQ(toks[1].value, 42);
  EXPECT_EQ(toks[2].value, 0);
}

TEST(Lexer, CommentsAreStripped) {
  const auto toks = lex("ret; // trailing\n/* block\ncomment */ exit;");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "ret");
  EXPECT_EQ(toks[2].text, "exit");
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = lex("a;\nb;\n  c;");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[2].loc.line, 2u);
  EXPECT_EQ(toks[4].loc.line, 3u);
  EXPECT_EQ(toks[4].loc.column, 3u);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(lex("`"), cac::PtxError);
  EXPECT_THROW(lex("/* unterminated"), cac::PtxError);
  EXPECT_THROW(lex("% 1"), cac::PtxError);
  EXPECT_THROW(lex("0xzz"), cac::PtxError);
}

TEST(Lexer, StringLiteralBecomesIdent) {
  const auto toks = lex("\"file.cu\"");
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].text, "file.cu");
}

TEST(Lexer, EmptyInput) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::End);
}

}  // namespace
}  // namespace cac::ptx
