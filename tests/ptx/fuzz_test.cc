// Robustness fuzzing of the PTX front end: random byte mutations of
// valid corpus sources must either lower successfully or raise
// PtxError/KernelError — never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include "common/random_program.h"
#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::ptx {
namespace {

class FrontEndFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontEndFuzzTest, MutatedSourcesNeverCrash) {
  cac::testing::Rng rng(GetParam());
  const std::string sources[] = {
      programs::vector_add_ptx(),    programs::reduce_shared_ptx(),
      programs::scan_signature_ptx(), programs::atomic_sum_ptx(),
  };
  for (const std::string& original : sources) {
    for (int round = 0; round < 24; ++round) {
      std::string src = original;
      // 1-4 random byte edits: overwrite, delete, or insert.
      const int edits = 1 + static_cast<int>(rng.below(4));
      for (int e = 0; e < edits; ++e) {
        const std::size_t pos = rng.below(static_cast<std::uint32_t>(
            src.size()));
        static constexpr char kChars[] =
            "abcxyz0189%.;,[]{}()@!<>+- _\t\n\"";
        const char c = kChars[rng.below(sizeof kChars - 1)];
        switch (rng.below(3)) {
          case 0: src[pos] = c; break;
          case 1: src.erase(pos, 1); break;
          default: src.insert(pos, 1, c); break;
        }
      }
      try {
        const LoweredModule m = load_ptx(src);
        // If it still lowers, programs must be structurally valid.
        for (const Program& k : m.kernels) {
          for (const ProgramIssue& issue : validate(k)) {
            (void)issue;  // structural issues are acceptable outputs
          }
        }
      } catch (const cac::PtxError&) {
        // expected for most mutations
      } catch (const cac::KernelError&) {
        // e.g. CFG of a mutilated program
      }
    }
  }
}

TEST_P(FrontEndFuzzTest, RandomTokenSoupNeverCrashes) {
  cac::testing::Rng rng(GetParam() * 977 + 5);
  static const char* kTokens[] = {
      ".visible", ".entry",  ".reg",  ".u32",  ".u64", ".pred", ".param",
      "%r1",      "%rd2",    "%p1",   "%tid.x", "add.u32", "ld.global.u32",
      "bra",      "ret",     "L1:",   "L1",    "{",    "}",     "(",
      ")",        "[",       "]",     ",",     ";",    "@",     "0",
      "42",       "0x1f",    "name",  "<",     ">",    "!",
  };
  for (int round = 0; round < 50; ++round) {
    std::string src;
    const int len = 5 + static_cast<int>(rng.below(60));
    for (int i = 0; i < len; ++i) {
      src += kTokens[rng.below(std::size(kTokens))];
      src += ' ';
    }
    try {
      (void)load_ptx(src);
    } catch (const cac::PtxError&) {
    } catch (const cac::KernelError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontEndFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cac::ptx
