#include "ptx/lower.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"

namespace cac::ptx {
namespace {

TEST(Lower, VectorAddShape) {
  const LoweredModule m = load_ptx(cac::programs::vector_add_ptx());
  ASSERT_EQ(m.kernels.size(), 1u);
  const Program& p = m.kernel("add_vector");
  // 22 instructions of Listing 1 plus one inserted Sync.
  EXPECT_EQ(p.size(), 23u);
  EXPECT_TRUE(validate(p).empty());
}

TEST(Lower, VectorAddParams) {
  const Program& p =
      load_ptx(cac::programs::vector_add_ptx()).kernel("add_vector");
  EXPECT_EQ(p.param("arr_A").offset, 0u);
  EXPECT_EQ(p.param("arr_B").offset, 8u);
  EXPECT_EQ(p.param("arr_C").offset, 16u);
  EXPECT_EQ(p.param("size").offset, 24u);
  EXPECT_EQ(p.param("size").type, UI(32));
  EXPECT_EQ(p.param_bytes(), 28u);
}

TEST(Lower, VectorAddSyncPlacement) {
  // The mechanical lowering must place Sync at the branch join, right
  // before the final Exit — where the paper put it by hand (index 18
  // of Listing 2; here shifted by the three retained cvta Movs).
  const Program& p =
      load_ptx(cac::programs::vector_add_ptx()).kernel("add_vector");
  ASSERT_GE(p.size(), 2u);
  EXPECT_TRUE(is_sync(p.fetch(static_cast<std::uint32_t>(p.size() - 2))));
  EXPECT_TRUE(is_exit(p.fetch(static_cast<std::uint32_t>(p.size() - 1))));
  // The guarded branch targets the Sync.
  const auto* pb = std::get_if<IPBra>(&p.fetch(9));
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pb->target, p.size() - 2);
}

TEST(Lower, VectorAddInstructionKinds) {
  const Program& p =
      load_ptx(cac::programs::vector_add_ptx()).kernel("add_vector");
  // ld.param -> Param-space loads.
  const auto* ld0 = std::get_if<ILd>(&p.fetch(0));
  ASSERT_NE(ld0, nullptr);
  EXPECT_EQ(ld0->space, Space::Param);
  EXPECT_EQ(ld0->type, UI(64));
  // mov.u32 %r3, %ntid.x
  const auto* mv = std::get_if<IMov>(&p.fetch(4));
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->src, op_sreg(SregKind::NTid, Dim::X));
  // mad.lo.s32
  const auto* mad = std::get_if<ITop>(&p.fetch(7));
  ASSERT_NE(mad, nullptr);
  EXPECT_EQ(mad->op, TerOp::MadLo);
  EXPECT_EQ(mad->type, SI(32));
  // setp.ge.s32
  const auto* sp = std::get_if<ISetp>(&p.fetch(8));
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->cmp, CmpOp::Ge);
  // cvta.to.global becomes a Mov.
  EXPECT_TRUE(std::holds_alternative<IMov>(p.fetch(10)));
  // mul.wide.s32
  const auto* mw = std::get_if<IBop>(&p.fetch(11));
  ASSERT_NE(mw, nullptr);
  EXPECT_EQ(mw->op, BinOp::MulWide);
}

TEST(Lower, SharedSymbolsGetOffsets) {
  const LoweredModule m = load_ptx(cac::programs::reduce_shared_ptx());
  ASSERT_TRUE(m.shared_offsets.count("sh"));
  EXPECT_EQ(m.shared_offsets.at("sh"), 0u);
  EXPECT_EQ(m.shared_bytes, 256u);
}

TEST(Lower, UniformBranchGetsNoSync) {
  // scan_signature's loop branch is on a warp-uniform predicate; the
  // only Syncs come from the tid-dependent bounds guard.
  const Program& p =
      load_ptx(cac::programs::scan_signature_ptx()).kernel("scan_signature");
  std::size_t syncs = 0;
  for (const auto& i : p.code()) {
    if (is_sync(i)) ++syncs;
  }
  EXPECT_EQ(syncs, 1u);
}

TEST(Lower, ReduceHasSyncBeforeEachBarrier) {
  // The `tid < offset` guard must reconverge before the loop barrier.
  const Program& p =
      load_ptx(cac::programs::reduce_shared_ptx()).kernel("reduce");
  for (std::uint32_t pc = 0; pc < p.size(); ++pc) {
    if (!std::holds_alternative<IPBra>(p.fetch(pc))) continue;
    const auto& pb = std::get<IPBra>(p.fetch(pc));
    // Every divergent branch target that is a barrier-adjacent join
    // must land on a Sync or a plain instruction — never directly on a
    // Bar from a divergent state.
    EXPECT_FALSE(is_bar(p.fetch(pb.target)))
        << "pbra at " << pc << " targets a barrier directly";
  }
}

TEST(Lower, SyncInsertionCanBeDisabled) {
  LowerOptions opts;
  opts.insert_syncs = false;
  const Program& p = load_ptx(cac::programs::vector_add_ptx(), opts)
                         .kernel("add_vector");
  EXPECT_EQ(p.size(), 22u);
  for (const auto& i : p.code()) EXPECT_FALSE(is_sync(i));
}

TEST(Lower, NegatedGuardLowered) {
  const LoweredModule m = load_ptx(R"(
.visible .entry f() {
  .reg .pred %p<2>;
  .reg .u32 %r<3>;
  mov.u32 %r1, %tid.x;
  setp.eq.u32 %p1, %r1, 0;
  @!%p1 bra L;
  add.u32 %r2, %r1, 1;
L: ret;
})");
  const Program& p = m.kernel("f");
  bool found = false;
  for (const auto& i : p.code()) {
    if (const auto* pb = std::get_if<IPBra>(&i)) {
      EXPECT_TRUE(pb->negated);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lower, GuardOnNonBranchRejected) {
  // The model predicates branches only (paper §III-3).
  EXPECT_THROW(load_ptx(R"(
.visible .entry f() {
  .reg .pred %p<2>;
  .reg .u32 %r<3>;
  @%p1 add.u32 %r1, %r2, 1;
  ret;
})"),
               cac::PtxError);
}

TEST(Lower, UndeclaredRegisterRejected) {
  EXPECT_THROW(load_ptx(R"(
.visible .entry f() {
  mov.u32 %r1, 0;
  ret;
})"),
               cac::PtxError);
}

TEST(Lower, UndefinedLabelRejected) {
  EXPECT_THROW(load_ptx(R"(
.visible .entry f() {
  bra NOWHERE;
  ret;
})"),
               cac::PtxError);
}

TEST(Lower, UnsupportedOpcodeRejected) {
  EXPECT_THROW(load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<3>;
  bfind.u32 %r1, %r2;
  ret;
})"),
               cac::PtxError);
}

TEST(Lower, CvtRecordsSourceType) {
  const Program& p = load_ptx(R"(
.visible .entry f() {
  .reg .u32 %r<2>;
  .reg .u64 %rd<2>;
  cvt.u64.u32 %rd1, %r1;
  ret;
})").kernel("f");
  const auto* cv = std::get_if<IUop>(&p.fetch(0));
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->op, UnOp::Cvt);
  EXPECT_EQ(cv->type, UI(32));   // source interpretation
  EXPECT_EQ(cv->dst.width, 64);  // destination width from the register
}

TEST(Lower, AtomicLowered) {
  const Program& p = load_ptx(cac::programs::atomic_sum_ptx())
                         .kernel("atomic_sum");
  bool found = false;
  for (const auto& i : p.code()) {
    if (const auto* a = std::get_if<IAtom>(&i)) {
      EXPECT_EQ(a->op, AtomOp::Add);
      EXPECT_EQ(a->space, Space::Global);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lower, AllCorpusKernelsAreWellFormed) {
  for (auto src :
       {&cac::programs::vector_add_ptx, &cac::programs::xor_cipher_ptx,
        &cac::programs::scan_signature_ptx, &cac::programs::reduce_shared_ptx,
        &cac::programs::atomic_sum_ptx,
        &cac::programs::reduce_shared_nobar_ptx,
        &cac::programs::barrier_divergence_ptx,
        &cac::programs::race_store_ptx}) {
    const LoweredModule m = load_ptx((*src)());
    for (const Program& k : m.kernels) {
      EXPECT_TRUE(validate(k).empty()) << k.name();
    }
  }
}

}  // namespace
}  // namespace cac::ptx
