#include "ptx/dtype.h"

#include <gtest/gtest.h>

namespace cac::ptx {
namespace {

TEST(DType, SuffixParsing) {
  EXPECT_EQ(dtype_from_suffix("u32"), UI(32));
  EXPECT_EQ(dtype_from_suffix("s64"), SI(64));
  EXPECT_EQ(dtype_from_suffix("b8"), BD(8));
  EXPECT_EQ(dtype_from_suffix("u16"), UI(16));
}

TEST(DType, SuffixErrors) {
  EXPECT_THROW(dtype_from_suffix("f32"), cac::PtxError);   // floats: future work
  EXPECT_THROW(dtype_from_suffix("u24"), cac::PtxError);   // bad width
  EXPECT_THROW(dtype_from_suffix("u"), cac::PtxError);
  EXPECT_THROW(dtype_from_suffix(""), cac::PtxError);
}

TEST(DType, Signedness) {
  EXPECT_TRUE(SI(32).is_signed());
  EXPECT_FALSE(UI(32).is_signed());
  EXPECT_FALSE(BD(32).is_signed());
}

TEST(DType, Bytes) {
  EXPECT_EQ(UI(8).bytes(), 1u);
  EXPECT_EQ(UI(64).bytes(), 8u);
}

TEST(DType, ToString) {
  EXPECT_EQ(to_string(UI(32)), "UI 32");
  EXPECT_EQ(to_string(SI(64)), "SI 64");
  EXPECT_EQ(to_string(Space::Shared), "Shared");
}

}  // namespace
}  // namespace cac::ptx
