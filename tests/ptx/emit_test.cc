// Round-trip tests: emit(prg) parsed and lowered reproduces prg.
#include "ptx/emit.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"

namespace cac::ptx {
namespace {

/// Round trip with sync insertion disabled: the emitted text contains
/// the original Syncs explicitly, so lowering must not add more.
Program round_trip(const Program& prg) {
  LowerOptions opts;
  opts.insert_syncs = false;
  return load_ptx(emit_ptx(prg), opts).kernel(prg.name());
}

TEST(Emit, Listing2RoundTripsExactly) {
  const Program prg = programs::vector_add_listing2();
  const Program back = round_trip(prg);
  EXPECT_EQ(back, prg) << emit_ptx(prg);
}

TEST(Emit, CorpusKernelsRoundTrip) {
  for (auto src :
       {&programs::vector_add_ptx, &programs::xor_cipher_ptx,
        &programs::scan_signature_ptx, &programs::reduce_shared_ptx,
        &programs::atomic_sum_ptx, &programs::race_store_ptx,
        &programs::barrier_divergence_ptx}) {
    const LoweredModule m = load_ptx((*src)());
    for (const Program& k : m.kernels) {
      // Shared-symbol addresses lower to absolute Shared offsets, so
      // the round trip is on the already-lowered program.
      EXPECT_EQ(round_trip(k), k) << k.name() << "\n" << emit_ptx(k);
    }
  }
}

TEST(Emit, HandBuiltProgramsRoundTrip) {
  EXPECT_EQ(round_trip(programs::divergent_exit_program()),
            programs::divergent_exit_program());
  EXPECT_EQ(round_trip(programs::straightline_program(5)),
            programs::straightline_program(5));
}

TEST(Emit, DroppingSyncsIsRestoredByInsertion) {
  // emit without Syncs + lower with mechanical insertion == original,
  // for kernels whose Syncs came from the insertion pass itself.
  const Program prg =
      load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  EmitOptions opts;
  opts.emit_syncs = false;
  const Program back = load_ptx(emit_ptx(prg, opts)).kernel(prg.name());
  EXPECT_EQ(back, prg);
}

TEST(Emit, DeclaresAllRegisterClasses) {
  const Reg s32{TypeClass::SI, 32, 2};
  const Reg u8{TypeClass::UI, 8, 1};
  const Program prg("mix",
                    {IMov{s32, op_imm(-1)},
                     IMov{u8, op_imm(7)},
                     IExit{}});
  const std::string text = emit_ptx(prg);
  EXPECT_NE(text.find(".reg .s32 %s<3>;"), std::string::npos) << text;
  EXPECT_NE(text.find(".reg .u8 %rb<2>;"), std::string::npos) << text;
  EXPECT_EQ(round_trip(prg), prg);
}

TEST(Emit, ParamSlotsAreNamedInLoads) {
  const Program prg = programs::vector_add_listing2();
  const std::string text = emit_ptx(prg);
  EXPECT_NE(text.find("ld.param.u64 %rd1, [arr_A];"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ld.param.u32 %r2, [size];"), std::string::npos);
}

TEST(Emit, LabelsAtBranchTargets) {
  const Program prg = programs::vector_add_listing2();
  const std::string text = emit_ptx(prg);
  EXPECT_NE(text.find("@%p1 bra L18;"), std::string::npos) << text;
  EXPECT_NE(text.find("L18:"), std::string::npos);
}

TEST(Emit, AbsoluteAddressesParseBack) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Program prg("abs",
                    {ILd{Space::Global, UI(32), r1, op_imm(64)},
                     ISt{Space::Shared, UI(32), op_imm(8), r1},
                     IExit{}});
  EXPECT_EQ(round_trip(prg), prg);
}

}  // namespace
}  // namespace cac::ptx
