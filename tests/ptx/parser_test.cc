#include "ptx/parser.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"

namespace cac::ptx {
namespace {

TEST(Parser, VectorAddModuleShape) {
  const AstModule m = parse_module(cac::programs::vector_add_ptx());
  EXPECT_EQ(m.version, "6.0");
  EXPECT_EQ(m.target, "sm_30");
  EXPECT_EQ(m.address_size, 64u);
  ASSERT_EQ(m.kernels.size(), 1u);

  const AstKernel& k = m.kernels[0];
  EXPECT_EQ(k.name, "add_vector");
  EXPECT_TRUE(k.visible);
  ASSERT_EQ(k.params.size(), 4u);
  EXPECT_EQ(k.params[0].name, "arr_A");
  EXPECT_EQ(k.params[0].type_suffix, "u64");
  EXPECT_EQ(k.params[3].name, "size");
  EXPECT_EQ(k.params[3].type_suffix, "u32");
}

TEST(Parser, VectorAddBodyStatements) {
  const AstModule m = parse_module(cac::programs::vector_add_ptx());
  const AstKernel& k = m.kernels[0];

  std::size_t reg_decls = 0, labels = 0, instrs = 0;
  for (const auto& s : k.body) {
    if (std::holds_alternative<AstRegDecl>(s)) ++reg_decls;
    if (std::holds_alternative<AstLabel>(s)) ++labels;
    if (std::holds_alternative<AstInstr>(s)) ++instrs;
  }
  EXPECT_EQ(reg_decls, 3u);  // .pred, .u32, .u64
  EXPECT_EQ(labels, 1u);     // BB0_2
  EXPECT_EQ(instrs, 22u);    // the 22 instructions of Listing 1
}

TEST(Parser, GuardIsCaptured) {
  const AstModule m = parse_module(cac::programs::vector_add_ptx());
  const AstKernel& k = m.kernels[0];
  bool found = false;
  for (const auto& s : k.body) {
    if (const auto* i = std::get_if<AstInstr>(&s)) {
      if (i->guard) {
        found = true;
        EXPECT_EQ(i->guard->pred, "p1");
        EXPECT_FALSE(i->guard->negated);
        EXPECT_EQ(i->opcode, "bra");
        ASSERT_EQ(i->ops.size(), 1u);
        EXPECT_EQ(i->ops[0].kind, AstOperand::Kind::Sym);
        EXPECT_EQ(i->ops[0].symbol, "BB0_2");
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(Parser, RegDeclCounts) {
  const AstModule m = parse_module(cac::programs::vector_add_ptx());
  const AstKernel& k = m.kernels[0];
  for (const auto& s : k.body) {
    if (const auto* d = std::get_if<AstRegDecl>(&s)) {
      if (d->prefix == "p") {
        EXPECT_EQ(d->count, 2u);
      }
      if (d->prefix == "r") {
        EXPECT_EQ(d->count, 9u);
      }
      if (d->prefix == "rd") {
        EXPECT_EQ(d->count, 11u);
      }
    }
  }
}

TEST(Parser, NegatedGuard) {
  const AstModule m = parse_module(R"(
.visible .entry f() {
  .reg .pred %p<2>;
  @!%p1 bra L;
L: ret;
})");
  const auto* i = std::get_if<AstInstr>(&m.kernels[0].body[1]);
  ASSERT_NE(i, nullptr);
  ASSERT_TRUE(i->guard.has_value());
  EXPECT_TRUE(i->guard->negated);
}

TEST(Parser, SharedDeclInsideKernel) {
  const AstModule m = parse_module(R"(
.visible .entry f() {
  .shared .align 4 .b8 buf[128];
  ret;
})");
  ASSERT_EQ(m.shared.size(), 1u);
  EXPECT_EQ(m.shared[0].name, "buf");
  EXPECT_EQ(m.shared[0].bytes, 128u);
  EXPECT_EQ(m.shared[0].align, 4u);
}

TEST(Parser, SharedDeclElementWidthScales) {
  const AstModule m = parse_module(".shared .u32 words[16];");
  ASSERT_EQ(m.shared.size(), 1u);
  EXPECT_EQ(m.shared[0].bytes, 64u);  // 16 * 4
}

TEST(Parser, NegativeImmediate) {
  const AstModule m = parse_module(R"(
.visible .entry f() {
  .reg .u32 %r<3>;
  add.u32 %r1, %r2, -5;
  ret;
})");
  const auto* i = std::get_if<AstInstr>(&m.kernels[0].body[1]);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(i->ops[2].imm, -5);
}

TEST(Parser, DebugDirectivesAreSkipped) {
  const AstModule m = parse_module(R"(
.version 6.0
.file 1 "kernel.cu"
.visible .entry f() {
  .loc 1 3 0
  ret;
})");
  ASSERT_EQ(m.kernels.size(), 1u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_module(".visible .entry f() { ret; "), cac::PtxError);
  EXPECT_THROW(parse_module(".entry f() { bogus ,,; }"), cac::PtxError);
  EXPECT_THROW(parse_module(".entry f(.param x) { ret; }"), cac::PtxError);
  EXPECT_THROW(parse_module("garbage"), cac::PtxError);
}

TEST(Parser, MultipleKernels) {
  const AstModule m = parse_module(R"(
.visible .entry a() { ret; }
.visible .entry b() { ret; }
)");
  ASSERT_EQ(m.kernels.size(), 2u);
  EXPECT_EQ(m.kernels[0].name, "a");
  EXPECT_EQ(m.kernels[1].name, "b");
}

}  // namespace
}  // namespace cac::ptx
