#include "ptx/operand.h"

#include <gtest/gtest.h>

namespace cac::ptx {
namespace {

TEST(Reg, KeyDistinguishesClassWidthIndex) {
  const Reg a{TypeClass::UI, 32, 5};
  const Reg b{TypeClass::UI, 64, 5};   // %r5 vs %rd5
  const Reg c{TypeClass::SI, 32, 5};
  const Reg d{TypeClass::UI, 32, 6};
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_NE(a.key(), d.key());
  EXPECT_EQ(a.key(), (Reg{TypeClass::UI, 32, 5}).key());
}

TEST(Operand, VariantKinds) {
  const Operand r = op_reg({TypeClass::UI, 32, 1});
  const Operand s = op_sreg(SregKind::Tid, Dim::X);
  const Operand i = op_imm(-4);
  const Operand ri = op_regimm({TypeClass::UI, 64, 2}, 8);
  EXPECT_TRUE(std::holds_alternative<Reg>(r));
  EXPECT_TRUE(std::holds_alternative<Sreg>(s));
  EXPECT_TRUE(std::holds_alternative<Imm>(i));
  EXPECT_TRUE(std::holds_alternative<RegImm>(ri));
}

TEST(Operand, ToString) {
  EXPECT_EQ(to_string(Reg{TypeClass::UI, 32, 7}), "%r7");
  EXPECT_EQ(to_string(Reg{TypeClass::UI, 64, 3}), "%rd3");
  EXPECT_EQ(to_string(Sreg{SregKind::NTid, Dim::X}), "%ntid.x");
  EXPECT_EQ(to_string(Sreg{SregKind::CtaId, Dim::Z}), "%ctaid.z");
  EXPECT_EQ(to_string(op_imm(42)), "42");
  EXPECT_EQ(to_string(op_regimm({TypeClass::UI, 64, 4}, -8)), "[%rd4-8]");
}

TEST(Operand, Equality) {
  EXPECT_EQ(op_imm(1), op_imm(1));
  EXPECT_NE(op_imm(1), op_imm(2));
  EXPECT_NE(op_imm(1), op_reg({TypeClass::UI, 32, 1}));
}

}  // namespace
}  // namespace cac::ptx
