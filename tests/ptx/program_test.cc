#include "ptx/program.h"

#include <gtest/gtest.h>

namespace cac::ptx {
namespace {

Program tiny() {
  const Reg r1{TypeClass::UI, 32, 1};
  return Program("tiny",
                 {IMov{r1, op_imm(1)}, IBra{0}, IExit{}},
                 {{"p0", UI(64), 0}, {"p1", UI(32), 8}});
}

TEST(Program, FetchInRange) {
  const Program p = tiny();
  EXPECT_TRUE(std::holds_alternative<IMov>(p.fetch(0)));
  EXPECT_TRUE(std::holds_alternative<IExit>(p.fetch(2)));
}

TEST(Program, FetchOutOfRangeThrows) {
  EXPECT_THROW((void)tiny().fetch(3), cac::KernelError);
}

TEST(Program, ParamLookup) {
  const Program p = tiny();
  EXPECT_EQ(p.param("p1").offset, 8u);
  EXPECT_EQ(p.param_bytes(), 12u);
  EXPECT_THROW((void)p.param("nope"), cac::PtxError);
}

TEST(ProgramValidate, AcceptsWellFormed) {
  EXPECT_TRUE(validate(tiny()).empty());
}

TEST(ProgramValidate, RejectsEmpty) {
  const Program p("empty", {});
  const auto issues = validate(p);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("empty"), std::string::npos);
}

TEST(ProgramValidate, RejectsOutOfRangeTarget) {
  const Program p("bad", {IBra{5}, IExit{}});
  const auto issues = validate(p);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].pc, 0u);
}

TEST(ProgramValidate, RejectsFallThroughEnd) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Program p("bad", {IMov{r1, op_imm(0)}});
  EXPECT_EQ(validate(p).size(), 1u);
}

TEST(ProgramValidate, PBraTargetChecked) {
  const Program p("bad", {IPBra{Pred{1}, false, 9}, IExit{}});
  EXPECT_EQ(validate(p).size(), 1u);
}

TEST(Program, Histogram) {
  const auto h = histogram(tiny());
  EXPECT_EQ(h.total(), 3u);
}

TEST(Program, ToStringMentionsEveryInstruction) {
  const std::string s = to_string(tiny());
  EXPECT_NE(s.find("mov"), std::string::npos);
  EXPECT_NE(s.find("bra"), std::string::npos);
  EXPECT_NE(s.find("exit"), std::string::npos);
  EXPECT_NE(s.find(".param"), std::string::npos);
}

}  // namespace
}  // namespace cac::ptx
