// Trace replay: untrusted tools' claims re-validated by the kernel.
#include "check/trace.h"

#include <gtest/gtest.h>

#include "check/model.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

TEST(TraceReplay, SchedulerRunReplaysExactly) {
  const ptx::Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(L.a + 4 * i, i + 1);
    launch.global_u32(L.b + 4 * i, i + 2);
  }
  const sem::Machine initial = launch.machine();

  sem::Machine run_final = initial;
  sched::RandomScheduler s(31337);
  const sched::RunResult rr = sched::run(prg, kc, run_final, s);
  ASSERT_TRUE(rr.terminated());

  const ReplayResult rep = replay(prg, kc, initial, rr.trace);
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_TRUE(rep.final_terminated);
  EXPECT_EQ(rep.final, run_final);
  EXPECT_EQ(rep.steps_replayed, rr.steps);
}

TEST(TraceReplay, StuckCounterexampleReplaysToStuckState) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine initial =
      sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const Verdict v = prove_termination(prg, kc, initial);
  ASSERT_EQ(v.kind, Verdict::Kind::Refuted);
  ASSERT_FALSE(v.counterexample.empty());

  // Independent validation of the model checker's counterexample.
  const ReplayResult rep = replay(prg, kc, initial, v.counterexample);
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_TRUE(rep.final_stuck);
  EXPECT_FALSE(rep.final_terminated);
}

TEST(TraceReplay, FaultCounterexampleReplaysToFault) {
  const ptx::Program prg(
      "oob", {ptx::ILd{ptx::Space::Global, ptx::UI(32),
                       {ptx::TypeClass::UI, 32, 1}, ptx::op_imm(100)},
              ptx::IExit{}});
  const sem::KernelConfig kc{{1, 1, 1}, {1, 1, 1}, 1};
  const sem::Machine initial =
      sem::Launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1}).machine();
  const Verdict v = prove_termination(prg, kc, initial);
  ASSERT_EQ(v.kind, Verdict::Kind::Refuted);
  const ReplayResult rep = replay(prg, kc, initial, v.counterexample);
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_TRUE(rep.faulted);
  EXPECT_NE(rep.fault.find("out-of-bounds"), std::string::npos);
}

TEST(TraceReplay, TamperedTraceIsRejected) {
  const ptx::Program prg = programs::straightline_program(3);
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // warps 0 and 1
  const sem::Machine initial =
      sem::Launch(prg, kc, mem::MemSizes{}).machine();

  sem::Machine run_final = initial;
  sched::FirstChoiceScheduler s;
  const sched::RunResult rr = sched::run(prg, kc, run_final, s);
  ASSERT_TRUE(rr.terminated());

  // Corrupt the trace: reference a warp that does not exist.
  auto bad = rr.trace;
  bad[2].warp = 99;
  const ReplayResult rep = replay(prg, kc, initial, bad);
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.error.find("not applicable"), std::string::npos);
}

TEST(TraceReplay, TraceContinuingPastExitIsRejected) {
  const ptx::Program prg = programs::straightline_program(1);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine initial =
      sem::Launch(prg, kc, mem::MemSizes{}).machine();
  sem::Machine run_final = initial;
  sched::FirstChoiceScheduler s;
  const sched::RunResult rr = sched::run(prg, kc, run_final, s);
  ASSERT_TRUE(rr.terminated());
  auto bad = rr.trace;
  bad.push_back(bad.back());  // one step too many
  const ReplayResult rep = replay(prg, kc, initial, bad);
  EXPECT_FALSE(rep.valid);
}

TEST(TraceReplay, EmptyTraceIsValid) {
  const ptx::Program prg = programs::straightline_program(1);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine initial =
      sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const ReplayResult rep = replay(prg, kc, initial, {});
  EXPECT_TRUE(rep.valid);
  EXPECT_FALSE(rep.final_terminated);
  EXPECT_EQ(rep.final, initial);
}

TEST(TraceReplay, EventsAreReproduced) {
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.param("out", 0);
  const sem::Machine initial = launch.machine();
  sem::Machine run_final = initial;
  sched::FirstChoiceScheduler s;
  const sched::RunResult rr = sched::run(prg, kc, run_final, s);
  ASSERT_TRUE(rr.terminated());
  const ReplayResult rep = replay(prg, kc, initial, rr.trace);
  EXPECT_TRUE(rep.valid);
  EXPECT_EQ(rep.events.store_conflicts.size(),
            rr.events.store_conflicts.size());
  EXPECT_FALSE(rep.events.store_conflicts.empty());
}

}  // namespace
}  // namespace cac::check
