#include "check/validate.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

using programs::VecAddLayout;

ValidationReport validate_vecadd(std::uint32_t size) {
  const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", size);
  Spec post;
  for (std::uint32_t i = 0; i < size; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
    post.mem_u32(mem::Space::Global, L.c + 4 * i, 2 * i);
  }
  ValidateOptions opts;
  opts.model.explore.partial_order_reduction = true;
  return validate(prg, kc, launch.machine(), post, opts);
}

TEST(Validate, VectorAddPassesEverything) {
  const ValidationReport r = validate_vecadd(4);
  EXPECT_TRUE(r.model.proved()) << r.model.detail;
  EXPECT_FALSE(r.races.racy());
  EXPECT_TRUE(r.transparency.holds) << r.transparency.detail;
  EXPECT_TRUE(r.lane_order.independent);
  EXPECT_TRUE(r.all_passed());
  const std::string t = r.text();
  EXPECT_NE(t.find("VERDICT: validated"), std::string::npos) << t;
  EXPECT_NE(t.find("[PASS] model-check"), std::string::npos);
  EXPECT_NE(t.find("grid steps"), std::string::npos);  // profile section
}

TEST(Validate, BuggyReductionFailsWithDetails) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  const ValidationReport r =
      validate(prg, kc, launch.machine(), Spec{}, {});
  EXPECT_FALSE(r.all_passed());
  EXPECT_TRUE(r.races.racy());
  EXPECT_FALSE(r.transparency.holds);
  const std::string t = r.text();
  EXPECT_NE(t.find("VERDICT: NOT validated"), std::string::npos) << t;
  EXPECT_NE(t.find("[FAIL]"), std::string::npos);
}

TEST(Validate, ChecksCanBeDisabled) {
  ValidateOptions opts;
  opts.check_transparency = false;
  opts.check_lane_order = false;
  opts.check_races = false;
  opts.collect_profile = false;
  const ptx::Program prg = programs::straightline_program(3);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const ValidationReport r = validate(prg, kc, m, Spec{}, opts);
  EXPECT_TRUE(r.all_passed());
  const std::string t = r.text();
  EXPECT_EQ(t.find("scheduler-transparency"), std::string::npos);
  EXPECT_EQ(t.find("grid steps"), std::string::npos);
}

TEST(Validate, DeadlockReportedByModelCheck) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  ValidateOptions opts;
  opts.check_lane_order = false;  // would also fail; isolate the model
  const ValidationReport r = validate(prg, kc, m, Spec{}, opts);
  EXPECT_FALSE(r.all_passed());
  EXPECT_EQ(r.model.kind, Verdict::Kind::Refuted);
  EXPECT_NE(r.model.detail.find("stuck"), std::string::npos);
}

}  // namespace
}  // namespace cac::check
