// The model checker on the paper's own example and on the broken
// kernels: finite-configuration proofs of total correctness.
#include "check/model.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

using programs::VecAddLayout;

struct VecAddSetup {
  sem::KernelConfig kc;
  sem::Machine machine;
  Spec correctness;
};

/// A small exhaustively-checkable vector-add instance: `nthreads`
/// threads in warps of `warp_size`.
VecAddSetup vecadd_setup(const ptx::Program& prg, std::uint32_t nthreads,
                         std::uint32_t size, std::uint32_t warp_size,
                         std::uint32_t nblocks = 1) {
  const VecAddLayout L;
  VecAddSetup s{{{nblocks, 1, 1}, {nthreads, 1, 1}, warp_size}, {}, {}};
  sem::Launch launch(prg, s.kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", size);
  for (std::uint32_t i = 0; i < nthreads * nblocks; ++i) {
    launch.global_u32(L.a + 4 * i, 2 * i + 3);
    launch.global_u32(L.b + 4 * i, 5 * i + 1);
  }
  s.machine = launch.machine();
  for (std::uint32_t i = 0; i < size; ++i) {
    s.correctness.mem_u32(mem::Space::Global, L.c + 4 * i, 7 * i + 4);
  }
  return s;
}

TEST(ModelCheck, VectorAddTotalCorrectnessAllSchedules) {
  // Two warps: the scheduler can interleave them arbitrarily; the
  // checker proves A+B=C on every schedule (total correctness, §IV).
  const ptx::Program prg = programs::vector_add_listing2();
  VecAddSetup s = vecadd_setup(prg, 4, 4, 2);
  const Verdict v = prove_total(prg, s.kc, s.machine, s.correctness);
  EXPECT_TRUE(v.proved()) << v.detail;
  EXPECT_GT(v.exploration.states_visited, 19u);
}

TEST(ModelCheck, VectorAddExactStepBound) {
  // Single warp: the paper's n_apply 19 — every schedule takes exactly
  // 19 grid steps.
  const ptx::Program prg = programs::vector_add_listing2();
  VecAddSetup s = vecadd_setup(prg, 4, 4, 4);
  ModelCheckOptions opts;
  opts.expect_exact_steps = 19;
  const Verdict v = prove_total(prg, s.kc, s.machine, s.correctness, opts);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ModelCheck, VectorAddTwoWarpStepBoundIs38) {
  // With two independent warps every interleaving is 2x19 steps.
  const ptx::Program prg = programs::vector_add_listing2();
  VecAddSetup s = vecadd_setup(prg, 4, 4, 2);
  ModelCheckOptions opts;
  opts.expect_exact_steps = 38;
  opts.require_schedule_independence = true;
  const Verdict v = prove_total(prg, s.kc, s.machine, s.correctness, opts);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ModelCheck, VectorAddDivergentWarpStillProves) {
  const ptx::Program prg = programs::vector_add_listing2();
  VecAddSetup s = vecadd_setup(prg, 4, 2, 4);  // size 2 < 4 threads
  const Verdict v = prove_total(prg, s.kc, s.machine, s.correctness);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ModelCheck, MechanicallyLoweredVectorAddProves) {
  const ptx::Program prg =
      ptx::load_ptx(programs::vector_add_ptx()).kernel("add_vector");
  VecAddSetup s = vecadd_setup(prg, 4, 4, 2);
  ModelCheckOptions opts;
  opts.expect_exact_steps = 44;  // 2 x (19 + 3 cvta movs)
  opts.require_schedule_independence = true;
  const Verdict v = prove_total(prg, s.kc, s.machine, s.correctness, opts);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ModelCheck, WrongPostconditionIsRefuted) {
  const ptx::Program prg = programs::vector_add_listing2();
  VecAddSetup s = vecadd_setup(prg, 4, 4, 4);
  Spec wrong;
  wrong.mem_u32(mem::Space::Global, VecAddLayout{}.c, 12345);
  const Verdict v = prove_total(prg, s.kc, s.machine, wrong);
  EXPECT_EQ(v.kind, Verdict::Kind::Refuted);
  EXPECT_NE(v.detail.find("postcondition"), std::string::npos);
}

TEST(ModelCheck, BarrierDivergenceRefutedWithCounterexample) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const Verdict v = prove_termination(prg, kc, m);
  EXPECT_EQ(v.kind, Verdict::Kind::Refuted);
  EXPECT_NE(v.detail.find("stuck"), std::string::npos);
  EXPECT_FALSE(v.counterexample.empty());
}

TEST(ModelCheck, MissingBarrierBreaksScheduleIndependence) {
  // The nobar reduction terminates on every schedule but different
  // schedules give different sums — exactly what
  // require_schedule_independence catches.
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // 2 warps
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  ModelCheckOptions opts;
  opts.require_schedule_independence = true;
  const Verdict v = prove_total(prg, kc, launch.machine(), Spec{}, opts);
  EXPECT_EQ(v.kind, Verdict::Kind::Refuted) << v.detail;
  EXPECT_NE(v.detail.find("schedule-dependent"), std::string::npos);
}

TEST(ModelCheck, BarrierRestoresScheduleIndependence) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  std::uint32_t sum = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(4 * i, i + 1);
    sum += i + 1;
  }
  Spec post;
  post.mem_u32(mem::Space::Global, 32, sum);
  ModelCheckOptions opts;
  opts.require_schedule_independence = true;
  const Verdict v = prove_total(prg, kc, launch.machine(), post, opts);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ModelCheck, AtomicSumProvesOverAllSchedules) {
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{2, 1, 1}, {2, 1, 1}, 2};  // 2 blocks
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32).param("size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, i + 1);
  launch.global_u32(32, 0);
  Spec post;
  post.mem_u32(mem::Space::Global, 32, 10);
  post.mem_valid(mem::Space::Global, 32, 4);  // atomics commit valid
  // Note: schedule *independence* does not hold — each thread's
  // register holding the fetched old value is order-dependent — but
  // the memory postcondition is proved on every schedule.
  const Verdict v = prove_total(prg, kc, launch.machine(), post);
  EXPECT_TRUE(v.proved()) << v.detail;
}

TEST(ModelCheck, LimitsYieldUnknown) {
  const ptx::Program prg = programs::straightline_program(50);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  ModelCheckOptions opts;
  opts.explore.max_depth = 5;
  const Verdict v = prove_termination(prg, kc, m, opts);
  EXPECT_EQ(v.kind, Verdict::Kind::Unknown);
}

TEST(ModelCheck, InfiniteLoopRefutedAsCycle) {
  const ptx::Program prg("spin", {ptx::IBra{0}});
  const sem::KernelConfig kc{{1, 1, 1}, {1, 1, 1}, 1};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const Verdict v = prove_termination(prg, kc, m);
  EXPECT_EQ(v.kind, Verdict::Kind::Refuted);
  EXPECT_NE(v.detail.find("cycle"), std::string::npos);
}

}  // namespace
}  // namespace cac::check
