// Warp-internal lane-order independence — the semantic counterpart of
// nd_map_eq (paper §IV, "Non-deterministic Execution").
#include "check/lane_order.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

TEST(LaneOrder, VectorAddIsLaneOrderIndependent) {
  const ptx::Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(L.a + 4 * i, i + 1);
    launch.global_u32(L.b + 4 * i, 2 * i);
  }
  const LaneOrderResult r =
      check_lane_order_independence(prg, kc, launch.machine());
  EXPECT_TRUE(r.independent) << r.detail;
  EXPECT_EQ(r.orders_tried, 24u);  // 4! lane orders, all checked
  EXPECT_FALSE(r.had_store_conflicts);
}

TEST(LaneOrder, IntraWarpRaceIsCaught) {
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  const sem::KernelConfig kc{{1, 1, 1}, {3, 1, 1}, 3};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.param("out", 0);
  const LaneOrderResult r =
      check_lane_order_independence(prg, kc, launch.machine());
  EXPECT_FALSE(r.independent);
  EXPECT_NE(r.detail.find("race"), std::string::npos);
}

TEST(LaneOrder, RegisterOnlyProgramsAreAlwaysIndependent) {
  // Register updates are thread-local: this is the mechanical content
  // of the nd_map theorem — no lane order can matter.
  const ptx::Program prg = programs::straightline_program(6);
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  const LaneOrderResult r = check_lane_order_independence(
      prg, kc, sem::Launch(prg, kc, mem::MemSizes{}).machine());
  EXPECT_TRUE(r.independent) << r.detail;
}

TEST(LaneOrder, DisjointStoresAreIndependent) {
  const ptx::Program prg = programs::vector_add_listing2();
  const programs::VecAddLayout L;
  // Divergent case: only half the lanes store — still disjoint.
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", 2);
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(L.a + 4 * i, 5);
    launch.global_u32(L.b + 4 * i, 6);
  }
  const LaneOrderResult r =
      check_lane_order_independence(prg, kc, launch.machine());
  EXPECT_TRUE(r.independent) << r.detail;
  EXPECT_FALSE(r.had_store_conflicts);
}

TEST(LaneOrder, OrderCapIsRespected) {
  const ptx::Program prg = programs::straightline_program(2);
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  const LaneOrderResult r = check_lane_order_independence(
      prg, kc, sem::Launch(prg, kc, mem::MemSizes{}).machine(), 5);
  EXPECT_TRUE(r.independent);
  EXPECT_EQ(r.orders_tried, 5u);
}

}  // namespace
}  // namespace cac::check
