#include "check/spec.h"

#include <gtest/gtest.h>

namespace cac::check {
namespace {

sem::Machine machine16() {
  sem::Machine m;
  m.memory = mem::Memory(mem::MemSizes{16, 0, 0, 0, 1});
  return m;
}

TEST(Spec, EmptySpecHolds) {
  EXPECT_TRUE(Spec{}.eval(machine16()).empty());
}

TEST(Spec, MemU32) {
  sem::Machine m = machine16();
  m.memory.init_u32(mem::Space::Global, 4, 99);
  Spec s;
  s.mem_u32(mem::Space::Global, 4, 99);
  EXPECT_TRUE(s.eval(m).empty());
  Spec bad;
  bad.mem_u32(mem::Space::Global, 4, 100);
  const auto failures = bad.eval(m);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].description.find("Global[4"), std::string::npos);
}

TEST(Spec, OutOfBoundsClauseFails) {
  Spec s;
  s.mem_u32(mem::Space::Global, 14, 0);  // 14+4 > 16
  EXPECT_EQ(s.eval(machine16()).size(), 1u);
}

TEST(Spec, MemValidTracksValidBits) {
  sem::Machine m = machine16();
  m.memory.store(mem::Space::Global, 0, 4, 5, false);
  Spec s;
  s.mem_valid(mem::Space::Global, 0, 4);
  EXPECT_EQ(s.eval(m).size(), 1u);
  m.memory.store(mem::Space::Global, 0, 4, 5, true);
  EXPECT_TRUE(s.eval(m).empty());
}

TEST(Spec, ClausesAccumulate) {
  sem::Machine m = machine16();
  m.memory.init_u32(mem::Space::Global, 0, 1);
  Spec s;
  s.mem_u32(mem::Space::Global, 0, 1)
      .mem_u32(mem::Space::Global, 0, 2)
      .mem_u8(mem::Space::Global, 0, 3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.eval(m).size(), 2u);
}

TEST(Spec, CustomPredicate) {
  Spec s;
  s.require("grid is empty",
            [](const sem::Machine& m) { return m.grid.blocks.empty(); });
  EXPECT_TRUE(s.eval(machine16()).empty());
}

}  // namespace
}  // namespace cac::check
