// Listings 5 & 6: nth_ri, the nd_map relation, and the nd_map_eq
// theorem checked exhaustively and property-style.
#include "check/ndmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace cac::check {
namespace {

const std::function<int(const int&)> kDouble = [](const int& x) {
  return 2 * x;
};

TEST(NthRi, RemovesAtPosition) {
  const std::vector<int> l{10, 20, 30};
  const auto r = nth_ri(1, l);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 20);
  EXPECT_EQ(r->second, (std::vector<int>{10, 30}));
}

TEST(NthRi, HeadAndTail) {
  const std::vector<int> l{1, 2};
  EXPECT_EQ(nth_ri(0, l)->first, 1);
  EXPECT_EQ(nth_ri(1, l)->first, 2);
  EXPECT_FALSE(nth_ri(2, l).has_value());
  EXPECT_FALSE(nth_ri(0, std::vector<int>{}).has_value());
}

TEST(NthRi, RelationalForm) {
  const std::vector<int> l{5, 6, 7};
  EXPECT_TRUE(nth_ri_related(2, l, 7, {5, 6}));
  EXPECT_FALSE(nth_ri_related(2, l, 6, {5, 6}));
  EXPECT_FALSE(nth_ri_related(2, l, 7, {6, 5}));
}

TEST(NdMapRelation, EmptyLists) {
  EXPECT_TRUE(nd_map_related(kDouble, {}, {}));
  EXPECT_FALSE(nd_map_related(kDouble, {}, {0}));
  EXPECT_FALSE(nd_map_related(kDouble, {1}, {}));
}

TEST(NdMapRelation, HoldsExactlyForMap) {
  const std::vector<int> l{3, 1, 4, 1};
  EXPECT_TRUE(nd_map_related(kDouble, l, {6, 2, 8, 2}));
  EXPECT_FALSE(nd_map_related(kDouble, l, {2, 6, 8, 2}));  // permuted
  EXPECT_FALSE(nd_map_related(kDouble, l, {6, 2, 8, 3}));  // wrong value
}

TEST(NdMapTheorem, HoldsForSmallSizes) {
  // The Listing-6 theorem, checked over every removal order.
  std::uint64_t expected_fact = 1;
  for (std::size_t n = 0; n <= 6; ++n) {
    std::vector<int> l(n);
    std::iota(l.begin(), l.end(), 1);
    const NdMapEqResult r = check_nd_map_eq(kDouble, l);
    EXPECT_TRUE(r.holds) << "n=" << n;
    EXPECT_EQ(r.derivations, expected_fact) << "n=" << n;  // n! orders
    expected_fact *= (n + 1);
  }
}

TEST(NdMapTheorem, HoldsForNonInjectiveFunctions) {
  const std::function<int(const int&)> collapse = [](const int&) {
    return 7;
  };
  const NdMapEqResult r = check_nd_map_eq(collapse, {1, 2, 3, 4, 5});
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.derivations, 120u);
}

TEST(NdMapTheorem, ReverseDirectionMapImpliesNdMap) {
  // map -> nd_map: the head-order derivation always exists.
  const std::vector<int> l{9, 8, 7};
  std::vector<int> mapped;
  for (int x : l) mapped.push_back(kDouble(x));
  EXPECT_TRUE(nd_map_related(kDouble, l, mapped));
}

class NdMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NdMapPropertyTest, RandomListsSatisfyTheorem) {
  std::uint64_t seed = GetParam();
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  std::vector<int> l(3 + next() % 4);
  for (int& x : l) x = static_cast<int>(next() % 100);
  const std::function<int(const int&)> f = [](const int& x) {
    return x * x - 3;
  };
  const NdMapEqResult r = check_nd_map_eq(f, l);
  EXPECT_TRUE(r.holds);

  // And the relation rejects any output differing from map f l.
  std::vector<int> mapped;
  for (int x : l) mapped.push_back(f(x));
  std::vector<int> wrong = mapped;
  wrong[next() % wrong.size()] += 1;
  EXPECT_FALSE(nd_map_related(f, l, wrong));
  std::vector<int> shuffled = mapped;
  std::reverse(shuffled.begin(), shuffled.end());
  if (shuffled != mapped) {
    EXPECT_FALSE(nd_map_related(f, l, shuffled));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdMapPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace cac::check
