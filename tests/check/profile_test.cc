#include "check/profile.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

using programs::VecAddLayout;

TEST(Profile, VectorAddCounts) {
  const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  const Profile p = profile_run(prg, kc, m, s);

  EXPECT_TRUE(p.run.status == sched::RunResult::Status::Terminated);
  EXPECT_EQ(p.grid_steps, 19u);              // the Listing-3 bound
  EXPECT_EQ(p.divergence_events, 0u);        // size == #threads: uniform
  EXPECT_EQ(p.sync_steps, 1u);
  EXPECT_EQ(p.load_lanes, 32u * 2);  // 2 global lds (Param/Const not logged)
  EXPECT_EQ(p.store_lanes, 32u);
  EXPECT_EQ(p.atomic_lanes, 0u);
  EXPECT_EQ(p.invalid_reads, 0u);
  EXPECT_EQ(p.uninit_reads, 0u);
  EXPECT_EQ(p.max_leaf_count, 1u);
}

TEST(Profile, DivergentVectorAdd) {
  const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {32, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 16);  // half the warp diverges
  for (std::uint32_t i = 0; i < 32; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  const Profile p = profile_run(prg, kc, m, s);
  EXPECT_EQ(p.grid_steps, 19u);
  EXPECT_EQ(p.divergence_events, 1u);
  EXPECT_EQ(p.max_leaf_count, 2u);
  EXPECT_EQ(p.max_tree_depth, 2u);
  EXPECT_EQ(p.store_lanes, 16u);  // only the in-range half stores
}

TEST(Profile, ReductionBarriersAndTraffic) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, 1);
  sem::Machine m = launch.machine();
  sched::RoundRobinScheduler s;
  const Profile p = profile_run(prg, kc, m, s);
  EXPECT_TRUE(p.run.status == sched::RunResult::Status::Terminated);
  // ntid=8: initial barrier + one per offset in {4,2,1}.
  EXPECT_EQ(p.barrier_lifts, 4u);
  EXPECT_GT(p.shared_bytes, 0u);
  EXPECT_GT(p.global_bytes, 0u);
  EXPECT_EQ(p.invalid_reads, 0u);
}

TEST(Profile, BuggyKernelShowsDiagnostics) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, 1);
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler s;
  const Profile p = profile_run(prg, kc, m, s);
  EXPECT_EQ(p.barrier_lifts, 0u);
  EXPECT_GT(p.invalid_reads, 0u);
}

TEST(Profile, TableMentionsEverySection) {
  const ptx::Program prg = programs::straightline_program(3);
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  sched::FirstChoiceScheduler s;
  const Profile p = profile_run(prg, kc, m, s);
  const std::string t = p.table();
  for (const char* needle :
       {"grid steps", "instruction mix", "bop:3", "mov:2", "lanes",
        "diagnostics"}) {
    EXPECT_NE(t.find(needle), std::string::npos) << needle << "\n" << t;
  }
}

TEST(Profile, StuckRunReported) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  sched::FirstChoiceScheduler s;
  const Profile p = profile_run(prg, kc, m, s);
  EXPECT_TRUE(p.run.status == sched::RunResult::Status::Stuck);
  EXPECT_EQ(p.divergence_events, 1u);
}

}  // namespace
}  // namespace cac::check
