// The scheduler-transparency theorem checker (paper's headline result).
#include "check/transparency.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

using programs::VecAddLayout;

TEST(Transparency, HoldsForVectorAdd) {
  const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // 2 warps
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c).param(
      "size", 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, 10 * i);
  }
  const TransparencyResult r =
      check_scheduler_transparency(prg, kc, launch.machine());
  EXPECT_TRUE(r.holds) << r.detail;
  EXPECT_EQ(r.det_steps, 38u);
  EXPECT_GT(r.schedules_states, r.det_steps);  // real nondeterminism
}

TEST(Transparency, HoldsForBarrierReduction) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, 2 * i + 1);
  const TransparencyResult r =
      check_scheduler_transparency(prg, kc, launch.machine());
  EXPECT_TRUE(r.holds) << r.detail;
}

TEST(Transparency, FailsWithoutBarrier) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 32);
  for (std::uint32_t i = 0; i < 4; ++i) launch.global_u32(4 * i, 2 * i + 1);
  const TransparencyResult r =
      check_scheduler_transparency(prg, kc, launch.machine());
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.detail.find("schedule-dependent"), std::string::npos);
}

TEST(Transparency, ReportsDeadlockFromDeterministicRun) {
  const ptx::Program prg = ptx::load_ptx(programs::barrier_divergence_ptx())
                               .kernel("barrier_divergence");
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const TransparencyResult r = check_scheduler_transparency(prg, kc, m);
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.detail.find("did not terminate"), std::string::npos);
}

TEST(Transparency, SingleWarpIsTriviallyTransparent) {
  const ptx::Program prg = programs::straightline_program(5);
  const sem::KernelConfig kc{{1, 1, 1}, {2, 1, 1}, 2};
  const sem::Machine m = sem::Launch(prg, kc, mem::MemSizes{}).machine();
  const TransparencyResult r = check_scheduler_transparency(prg, kc, m);
  EXPECT_TRUE(r.holds) << r.detail;
  EXPECT_EQ(r.det_steps, 7u);
}

}  // namespace
}  // namespace cac::check
