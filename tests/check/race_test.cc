// The dynamic race detector against the corpus's known-good and
// known-racy kernels.
#include "check/race.h"

#include <gtest/gtest.h>

#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sem/launch.h"

namespace cac::check {
namespace {

using programs::VecAddLayout;

RaceReport run_detector(const ptx::Program& prg, const sem::KernelConfig& kc,
                        sem::Launch& launch) {
  sem::Machine m = launch.machine();
  sched::RoundRobinScheduler s;
  return detect_races(prg, kc, m, s);
}

TEST(RaceDetector, VectorAddIsRaceFree) {
  const ptx::Program prg = programs::vector_add_listing2();
  const VecAddLayout L;
  const sem::KernelConfig kc{{2, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{L.global_bytes, 0, 0, 0, 1});
  launch.param("arr_A", L.a).param("arr_B", L.b).param("arr_C", L.c)
      .param("size", 16);
  for (std::uint32_t i = 0; i < 16; ++i) {
    launch.global_u32(L.a + 4 * i, i);
    launch.global_u32(L.b + 4 * i, i);
  }
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  EXPECT_FALSE(r.racy()) << r.summary();
  EXPECT_GT(r.accesses_logged, 0u);
}

TEST(RaceDetector, BarrierReductionIsRaceFree) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};  // two warps
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, i);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  EXPECT_FALSE(r.racy()) << r.summary();
}

TEST(RaceDetector, MissingBarrierIsRacy) {
  const ptx::Program prg =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{128, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 64);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, i);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_TRUE(r.racy());
  // The races are inter-warp on the Shared tree cells.
  EXPECT_EQ(r.races.front().space, ptx::Space::Shared);
  EXPECT_FALSE(r.races.front().cross_block);
}

TEST(RaceDetector, AtomicsDoNotRace) {
  const ptx::Program prg =
      ptx::load_ptx(programs::atomic_sum_ptx()).kernel("atomic_sum");
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 4};  // cross-block atomics
  sem::Launch launch(prg, kc, mem::MemSizes{64, 0, 0, 0, 1});
  launch.param("arr_A", 0).param("out", 32).param("size", 8);
  for (std::uint32_t i = 0; i < 8; ++i) launch.global_u32(4 * i, 1);
  launch.global_u32(32, 0);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_TRUE(r.run.terminated());
  EXPECT_FALSE(r.racy()) << r.summary();
}

TEST(RaceDetector, CrossBlockPlainStoresRace) {
  // Both blocks store to Global[0] with plain stores.
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  const sem::KernelConfig kc{{2, 1, 1}, {1, 1, 1}, 1};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.param("out", 0);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_TRUE(r.racy());
  EXPECT_TRUE(r.races.front().cross_block);
  EXPECT_TRUE(r.races.front().write_write);
}

TEST(RaceDetector, SameWarpLanesAreNotFlagged) {
  // All 4 lanes of ONE warp store to the same address: that is a
  // same-instruction lane conflict (store_conflicts), not an
  // inter-warp race.
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 4};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.param("out", 0);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_FALSE(r.racy()) << r.summary();
}

TEST(RaceDetector, TwoWarpsSameBlockRace) {
  // Two warps of the same block store to the same Global address with
  // no barrier: intra-block inter-warp race.
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};  // 2 warps
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.param("out", 0);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_TRUE(r.racy());
  EXPECT_FALSE(r.races.front().cross_block);
}

TEST(RaceDetector, ReadOnlySharingIsFine) {
  // Every thread reads Global[0]; nobody writes.
  const ptx::Reg r1{ptx::TypeClass::UI, 32, 1};
  const ptx::Program prg(
      "readers",
      {ptx::ILd{ptx::Space::Global, ptx::UI(32), r1, ptx::op_imm(0)},
       ptx::IExit{}});
  const sem::KernelConfig kc{{2, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.global_u32(0, 99);
  const RaceReport r = run_detector(prg, kc, launch);
  EXPECT_FALSE(r.racy());
  EXPECT_EQ(r.bytes_touched, 4u);
  EXPECT_EQ(r.accesses_logged, 8u);
}

TEST(RaceDetector, SummaryMentionsLocation) {
  const ptx::Program prg =
      ptx::load_ptx(programs::race_store_ptx()).kernel("race_store");
  const sem::KernelConfig kc{{1, 1, 1}, {4, 1, 1}, 2};
  sem::Launch launch(prg, kc, mem::MemSizes{16, 0, 0, 0, 1});
  launch.param("out", 0);
  const RaceReport r = run_detector(prg, kc, launch);
  ASSERT_TRUE(r.racy());
  EXPECT_NE(r.summary().find("Global[0]"), std::string::npos);
}

}  // namespace
}  // namespace cac::check
