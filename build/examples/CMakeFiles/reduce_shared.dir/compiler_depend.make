# Empty compiler generated dependencies file for reduce_shared.
# This may be replaced when dependencies are built.
