file(REMOVE_RECURSE
  "CMakeFiles/reduce_shared.dir/reduce_shared.cpp.o"
  "CMakeFiles/reduce_shared.dir/reduce_shared.cpp.o.d"
  "reduce_shared"
  "reduce_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
