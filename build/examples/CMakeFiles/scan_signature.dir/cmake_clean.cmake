file(REMOVE_RECURSE
  "CMakeFiles/scan_signature.dir/scan_signature.cpp.o"
  "CMakeFiles/scan_signature.dir/scan_signature.cpp.o.d"
  "scan_signature"
  "scan_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
