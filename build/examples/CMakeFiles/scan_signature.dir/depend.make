# Empty dependencies file for scan_signature.
# This may be replaced when dependencies are built.
