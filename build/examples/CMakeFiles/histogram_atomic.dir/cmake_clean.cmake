file(REMOVE_RECURSE
  "CMakeFiles/histogram_atomic.dir/histogram_atomic.cpp.o"
  "CMakeFiles/histogram_atomic.dir/histogram_atomic.cpp.o.d"
  "histogram_atomic"
  "histogram_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
