# Empty dependencies file for histogram_atomic.
# This may be replaced when dependencies are built.
