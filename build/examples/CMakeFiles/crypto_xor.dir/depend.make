# Empty dependencies file for crypto_xor.
# This may be replaced when dependencies are built.
