file(REMOVE_RECURSE
  "CMakeFiles/crypto_xor.dir/crypto_xor.cpp.o"
  "CMakeFiles/crypto_xor.dir/crypto_xor.cpp.o.d"
  "crypto_xor"
  "crypto_xor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_xor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
