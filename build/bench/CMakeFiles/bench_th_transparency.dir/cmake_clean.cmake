file(REMOVE_RECURSE
  "CMakeFiles/bench_th_transparency.dir/bench_th_transparency.cpp.o"
  "CMakeFiles/bench_th_transparency.dir/bench_th_transparency.cpp.o.d"
  "bench_th_transparency"
  "bench_th_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_th_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
