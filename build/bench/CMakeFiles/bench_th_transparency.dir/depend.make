# Empty dependencies file for bench_th_transparency.
# This may be replaced when dependencies are built.
