# Empty compiler generated dependencies file for bench_fig1_warp_step.
# This may be replaced when dependencies are built.
