file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_warp_step.dir/bench_fig1_warp_step.cpp.o"
  "CMakeFiles/bench_fig1_warp_step.dir/bench_fig1_warp_step.cpp.o.d"
  "bench_fig1_warp_step"
  "bench_fig1_warp_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_warp_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
