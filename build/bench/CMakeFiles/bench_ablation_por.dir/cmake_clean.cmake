file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_por.dir/bench_ablation_por.cpp.o"
  "CMakeFiles/bench_ablation_por.dir/bench_ablation_por.cpp.o.d"
  "bench_ablation_por"
  "bench_ablation_por.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_por.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
