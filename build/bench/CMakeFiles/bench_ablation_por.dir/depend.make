# Empty dependencies file for bench_ablation_por.
# This may be replaced when dependencies are built.
