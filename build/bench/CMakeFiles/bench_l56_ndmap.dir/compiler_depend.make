# Empty compiler generated dependencies file for bench_l56_ndmap.
# This may be replaced when dependencies are built.
