file(REMOVE_RECURSE
  "CMakeFiles/bench_l56_ndmap.dir/bench_l56_ndmap.cpp.o"
  "CMakeFiles/bench_l56_ndmap.dir/bench_l56_ndmap.cpp.o.d"
  "bench_l56_ndmap"
  "bench_l56_ndmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_l56_ndmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
