file(REMOVE_RECURSE
  "CMakeFiles/bench_l4_symbolic.dir/bench_l4_symbolic.cpp.o"
  "CMakeFiles/bench_l4_symbolic.dir/bench_l4_symbolic.cpp.o.d"
  "bench_l4_symbolic"
  "bench_l4_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_l4_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
