# Empty compiler generated dependencies file for bench_l4_symbolic.
# This may be replaced when dependencies are built.
