# Empty compiler generated dependencies file for bench_l12_parse_lower.
# This may be replaced when dependencies are built.
