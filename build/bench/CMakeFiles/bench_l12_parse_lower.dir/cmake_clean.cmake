file(REMOVE_RECURSE
  "CMakeFiles/bench_l12_parse_lower.dir/bench_l12_parse_lower.cpp.o"
  "CMakeFiles/bench_l12_parse_lower.dir/bench_l12_parse_lower.cpp.o.d"
  "bench_l12_parse_lower"
  "bench_l12_parse_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_l12_parse_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
