# Empty dependencies file for cac_ptx.
# This may be replaced when dependencies are built.
