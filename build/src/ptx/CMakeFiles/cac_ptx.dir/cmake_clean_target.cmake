file(REMOVE_RECURSE
  "libcac_ptx.a"
)
