
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptx/cfg.cc" "src/ptx/CMakeFiles/cac_ptx.dir/cfg.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/cfg.cc.o.d"
  "/root/repo/src/ptx/dtype.cc" "src/ptx/CMakeFiles/cac_ptx.dir/dtype.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/dtype.cc.o.d"
  "/root/repo/src/ptx/emit.cc" "src/ptx/CMakeFiles/cac_ptx.dir/emit.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/emit.cc.o.d"
  "/root/repo/src/ptx/instr.cc" "src/ptx/CMakeFiles/cac_ptx.dir/instr.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/instr.cc.o.d"
  "/root/repo/src/ptx/lexer.cc" "src/ptx/CMakeFiles/cac_ptx.dir/lexer.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/lexer.cc.o.d"
  "/root/repo/src/ptx/lower.cc" "src/ptx/CMakeFiles/cac_ptx.dir/lower.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/lower.cc.o.d"
  "/root/repo/src/ptx/operand.cc" "src/ptx/CMakeFiles/cac_ptx.dir/operand.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/operand.cc.o.d"
  "/root/repo/src/ptx/parser.cc" "src/ptx/CMakeFiles/cac_ptx.dir/parser.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/parser.cc.o.d"
  "/root/repo/src/ptx/program.cc" "src/ptx/CMakeFiles/cac_ptx.dir/program.cc.o" "gcc" "src/ptx/CMakeFiles/cac_ptx.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
