file(REMOVE_RECURSE
  "CMakeFiles/cac_ptx.dir/cfg.cc.o"
  "CMakeFiles/cac_ptx.dir/cfg.cc.o.d"
  "CMakeFiles/cac_ptx.dir/dtype.cc.o"
  "CMakeFiles/cac_ptx.dir/dtype.cc.o.d"
  "CMakeFiles/cac_ptx.dir/emit.cc.o"
  "CMakeFiles/cac_ptx.dir/emit.cc.o.d"
  "CMakeFiles/cac_ptx.dir/instr.cc.o"
  "CMakeFiles/cac_ptx.dir/instr.cc.o.d"
  "CMakeFiles/cac_ptx.dir/lexer.cc.o"
  "CMakeFiles/cac_ptx.dir/lexer.cc.o.d"
  "CMakeFiles/cac_ptx.dir/lower.cc.o"
  "CMakeFiles/cac_ptx.dir/lower.cc.o.d"
  "CMakeFiles/cac_ptx.dir/operand.cc.o"
  "CMakeFiles/cac_ptx.dir/operand.cc.o.d"
  "CMakeFiles/cac_ptx.dir/parser.cc.o"
  "CMakeFiles/cac_ptx.dir/parser.cc.o.d"
  "CMakeFiles/cac_ptx.dir/program.cc.o"
  "CMakeFiles/cac_ptx.dir/program.cc.o.d"
  "libcac_ptx.a"
  "libcac_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
