file(REMOVE_RECURSE
  "CMakeFiles/cac_check.dir/model.cc.o"
  "CMakeFiles/cac_check.dir/model.cc.o.d"
  "CMakeFiles/cac_check.dir/ndmap.cc.o"
  "CMakeFiles/cac_check.dir/ndmap.cc.o.d"
  "CMakeFiles/cac_check.dir/profile.cc.o"
  "CMakeFiles/cac_check.dir/profile.cc.o.d"
  "CMakeFiles/cac_check.dir/race.cc.o"
  "CMakeFiles/cac_check.dir/race.cc.o.d"
  "CMakeFiles/cac_check.dir/spec.cc.o"
  "CMakeFiles/cac_check.dir/spec.cc.o.d"
  "CMakeFiles/cac_check.dir/trace.cc.o"
  "CMakeFiles/cac_check.dir/trace.cc.o.d"
  "CMakeFiles/cac_check.dir/transparency.cc.o"
  "CMakeFiles/cac_check.dir/transparency.cc.o.d"
  "CMakeFiles/cac_check.dir/validate.cc.o"
  "CMakeFiles/cac_check.dir/validate.cc.o.d"
  "libcac_check.a"
  "libcac_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
