
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/model.cc" "src/check/CMakeFiles/cac_check.dir/model.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/model.cc.o.d"
  "/root/repo/src/check/ndmap.cc" "src/check/CMakeFiles/cac_check.dir/ndmap.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/ndmap.cc.o.d"
  "/root/repo/src/check/profile.cc" "src/check/CMakeFiles/cac_check.dir/profile.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/profile.cc.o.d"
  "/root/repo/src/check/race.cc" "src/check/CMakeFiles/cac_check.dir/race.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/race.cc.o.d"
  "/root/repo/src/check/spec.cc" "src/check/CMakeFiles/cac_check.dir/spec.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/spec.cc.o.d"
  "/root/repo/src/check/trace.cc" "src/check/CMakeFiles/cac_check.dir/trace.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/trace.cc.o.d"
  "/root/repo/src/check/transparency.cc" "src/check/CMakeFiles/cac_check.dir/transparency.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/transparency.cc.o.d"
  "/root/repo/src/check/validate.cc" "src/check/CMakeFiles/cac_check.dir/validate.cc.o" "gcc" "src/check/CMakeFiles/cac_check.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/cac_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cac_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cac_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/cac_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
