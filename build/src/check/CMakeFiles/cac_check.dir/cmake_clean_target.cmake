file(REMOVE_RECURSE
  "libcac_check.a"
)
