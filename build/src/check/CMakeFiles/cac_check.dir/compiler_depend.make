# Empty compiler generated dependencies file for cac_check.
# This may be replaced when dependencies are built.
