# Empty compiler generated dependencies file for cac_programs.
# This may be replaced when dependencies are built.
