file(REMOVE_RECURSE
  "libcac_programs.a"
)
