file(REMOVE_RECURSE
  "CMakeFiles/cac_programs.dir/corpus.cc.o"
  "CMakeFiles/cac_programs.dir/corpus.cc.o.d"
  "libcac_programs.a"
  "libcac_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
