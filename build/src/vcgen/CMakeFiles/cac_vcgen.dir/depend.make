# Empty dependencies file for cac_vcgen.
# This may be replaced when dependencies are built.
