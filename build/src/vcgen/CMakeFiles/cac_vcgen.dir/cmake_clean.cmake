file(REMOVE_RECURSE
  "CMakeFiles/cac_vcgen.dir/prove.cc.o"
  "CMakeFiles/cac_vcgen.dir/prove.cc.o.d"
  "libcac_vcgen.a"
  "libcac_vcgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_vcgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
