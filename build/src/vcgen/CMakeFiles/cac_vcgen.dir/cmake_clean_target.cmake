file(REMOVE_RECURSE
  "libcac_vcgen.a"
)
