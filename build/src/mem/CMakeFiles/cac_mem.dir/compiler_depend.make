# Empty compiler generated dependencies file for cac_mem.
# This may be replaced when dependencies are built.
