file(REMOVE_RECURSE
  "libcac_mem.a"
)
