file(REMOVE_RECURSE
  "CMakeFiles/cac_mem.dir/memory.cc.o"
  "CMakeFiles/cac_mem.dir/memory.cc.o.d"
  "libcac_mem.a"
  "libcac_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
