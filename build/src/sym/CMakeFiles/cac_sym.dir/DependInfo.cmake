
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/block_exec.cc" "src/sym/CMakeFiles/cac_sym.dir/block_exec.cc.o" "gcc" "src/sym/CMakeFiles/cac_sym.dir/block_exec.cc.o.d"
  "/root/repo/src/sym/exec.cc" "src/sym/CMakeFiles/cac_sym.dir/exec.cc.o" "gcc" "src/sym/CMakeFiles/cac_sym.dir/exec.cc.o.d"
  "/root/repo/src/sym/state.cc" "src/sym/CMakeFiles/cac_sym.dir/state.cc.o" "gcc" "src/sym/CMakeFiles/cac_sym.dir/state.cc.o.d"
  "/root/repo/src/sym/term.cc" "src/sym/CMakeFiles/cac_sym.dir/term.cc.o" "gcc" "src/sym/CMakeFiles/cac_sym.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/cac_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cac_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/cac_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
