# Empty compiler generated dependencies file for cac_sym.
# This may be replaced when dependencies are built.
