file(REMOVE_RECURSE
  "CMakeFiles/cac_sym.dir/block_exec.cc.o"
  "CMakeFiles/cac_sym.dir/block_exec.cc.o.d"
  "CMakeFiles/cac_sym.dir/exec.cc.o"
  "CMakeFiles/cac_sym.dir/exec.cc.o.d"
  "CMakeFiles/cac_sym.dir/state.cc.o"
  "CMakeFiles/cac_sym.dir/state.cc.o.d"
  "CMakeFiles/cac_sym.dir/term.cc.o"
  "CMakeFiles/cac_sym.dir/term.cc.o.d"
  "libcac_sym.a"
  "libcac_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
