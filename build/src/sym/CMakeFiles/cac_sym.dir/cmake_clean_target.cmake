file(REMOVE_RECURSE
  "libcac_sym.a"
)
