# Empty compiler generated dependencies file for cac_sem.
# This may be replaced when dependencies are built.
