
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sem/config.cc" "src/sem/CMakeFiles/cac_sem.dir/config.cc.o" "gcc" "src/sem/CMakeFiles/cac_sem.dir/config.cc.o.d"
  "/root/repo/src/sem/launch.cc" "src/sem/CMakeFiles/cac_sem.dir/launch.cc.o" "gcc" "src/sem/CMakeFiles/cac_sem.dir/launch.cc.o.d"
  "/root/repo/src/sem/state.cc" "src/sem/CMakeFiles/cac_sem.dir/state.cc.o" "gcc" "src/sem/CMakeFiles/cac_sem.dir/state.cc.o.d"
  "/root/repo/src/sem/step.cc" "src/sem/CMakeFiles/cac_sem.dir/step.cc.o" "gcc" "src/sem/CMakeFiles/cac_sem.dir/step.cc.o.d"
  "/root/repo/src/sem/thread.cc" "src/sem/CMakeFiles/cac_sem.dir/thread.cc.o" "gcc" "src/sem/CMakeFiles/cac_sem.dir/thread.cc.o.d"
  "/root/repo/src/sem/warp.cc" "src/sem/CMakeFiles/cac_sem.dir/warp.cc.o" "gcc" "src/sem/CMakeFiles/cac_sem.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptx/CMakeFiles/cac_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cac_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
