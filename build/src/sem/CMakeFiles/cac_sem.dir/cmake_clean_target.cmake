file(REMOVE_RECURSE
  "libcac_sem.a"
)
