file(REMOVE_RECURSE
  "CMakeFiles/cac_sem.dir/config.cc.o"
  "CMakeFiles/cac_sem.dir/config.cc.o.d"
  "CMakeFiles/cac_sem.dir/launch.cc.o"
  "CMakeFiles/cac_sem.dir/launch.cc.o.d"
  "CMakeFiles/cac_sem.dir/state.cc.o"
  "CMakeFiles/cac_sem.dir/state.cc.o.d"
  "CMakeFiles/cac_sem.dir/step.cc.o"
  "CMakeFiles/cac_sem.dir/step.cc.o.d"
  "CMakeFiles/cac_sem.dir/thread.cc.o"
  "CMakeFiles/cac_sem.dir/thread.cc.o.d"
  "CMakeFiles/cac_sem.dir/warp.cc.o"
  "CMakeFiles/cac_sem.dir/warp.cc.o.d"
  "libcac_sem.a"
  "libcac_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
