# Empty dependencies file for cac_sched.
# This may be replaced when dependencies are built.
