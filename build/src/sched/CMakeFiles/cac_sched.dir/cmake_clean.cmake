file(REMOVE_RECURSE
  "CMakeFiles/cac_sched.dir/explore.cc.o"
  "CMakeFiles/cac_sched.dir/explore.cc.o.d"
  "CMakeFiles/cac_sched.dir/scheduler.cc.o"
  "CMakeFiles/cac_sched.dir/scheduler.cc.o.d"
  "libcac_sched.a"
  "libcac_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
