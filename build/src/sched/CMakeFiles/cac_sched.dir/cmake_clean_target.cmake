file(REMOVE_RECURSE
  "libcac_sched.a"
)
