file(REMOVE_RECURSE
  "libcac_support.a"
)
