file(REMOVE_RECURSE
  "CMakeFiles/cac_support.dir/diag.cc.o"
  "CMakeFiles/cac_support.dir/diag.cc.o.d"
  "CMakeFiles/cac_support.dir/strings.cc.o"
  "CMakeFiles/cac_support.dir/strings.cc.o.d"
  "libcac_support.a"
  "libcac_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
