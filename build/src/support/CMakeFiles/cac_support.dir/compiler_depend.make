# Empty compiler generated dependencies file for cac_support.
# This may be replaced when dependencies are built.
