file(REMOVE_RECURSE
  "CMakeFiles/test_vcgen.dir/vcgen/prove_test.cc.o"
  "CMakeFiles/test_vcgen.dir/vcgen/prove_test.cc.o.d"
  "test_vcgen"
  "test_vcgen.pdb"
  "test_vcgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
