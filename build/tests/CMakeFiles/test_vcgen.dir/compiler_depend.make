# Empty compiler generated dependencies file for test_vcgen.
# This may be replaced when dependencies are built.
