file(REMOVE_RECURSE
  "CMakeFiles/test_sym.dir/sym/block_differential_test.cc.o"
  "CMakeFiles/test_sym.dir/sym/block_differential_test.cc.o.d"
  "CMakeFiles/test_sym.dir/sym/block_exec_test.cc.o"
  "CMakeFiles/test_sym.dir/sym/block_exec_test.cc.o.d"
  "CMakeFiles/test_sym.dir/sym/exec_test.cc.o"
  "CMakeFiles/test_sym.dir/sym/exec_test.cc.o.d"
  "CMakeFiles/test_sym.dir/sym/term_test.cc.o"
  "CMakeFiles/test_sym.dir/sym/term_test.cc.o.d"
  "test_sym"
  "test_sym.pdb"
  "test_sym[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
