file(REMOVE_RECURSE
  "CMakeFiles/test_check.dir/check/lane_order_test.cc.o"
  "CMakeFiles/test_check.dir/check/lane_order_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/model_test.cc.o"
  "CMakeFiles/test_check.dir/check/model_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/ndmap_test.cc.o"
  "CMakeFiles/test_check.dir/check/ndmap_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/profile_test.cc.o"
  "CMakeFiles/test_check.dir/check/profile_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/race_test.cc.o"
  "CMakeFiles/test_check.dir/check/race_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/spec_test.cc.o"
  "CMakeFiles/test_check.dir/check/spec_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/trace_test.cc.o"
  "CMakeFiles/test_check.dir/check/trace_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/transparency_test.cc.o"
  "CMakeFiles/test_check.dir/check/transparency_test.cc.o.d"
  "CMakeFiles/test_check.dir/check/validate_test.cc.o"
  "CMakeFiles/test_check.dir/check/validate_test.cc.o.d"
  "test_check"
  "test_check.pdb"
  "test_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
