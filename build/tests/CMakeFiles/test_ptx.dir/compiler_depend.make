# Empty compiler generated dependencies file for test_ptx.
# This may be replaced when dependencies are built.
