file(REMOVE_RECURSE
  "CMakeFiles/test_ptx.dir/ptx/cfg_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/cfg_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/dtype_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/dtype_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/emit_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/emit_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/fuzz_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/fuzz_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/isa_ext_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/isa_ext_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/lexer_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/lexer_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/lower_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/lower_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/operand_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/operand_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/parser_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/parser_test.cc.o.d"
  "CMakeFiles/test_ptx.dir/ptx/program_test.cc.o"
  "CMakeFiles/test_ptx.dir/ptx/program_test.cc.o.d"
  "test_ptx"
  "test_ptx.pdb"
  "test_ptx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
