# Empty compiler generated dependencies file for cac_test_common.
# This may be replaced when dependencies are built.
