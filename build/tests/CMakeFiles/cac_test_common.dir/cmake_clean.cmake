file(REMOVE_RECURSE
  "CMakeFiles/cac_test_common.dir/common/random_program.cc.o"
  "CMakeFiles/cac_test_common.dir/common/random_program.cc.o.d"
  "libcac_test_common.a"
  "libcac_test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cac_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
