file(REMOVE_RECURSE
  "libcac_test_common.a"
)
