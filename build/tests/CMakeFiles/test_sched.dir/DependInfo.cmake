
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/explore_property_test.cc" "tests/CMakeFiles/test_sched.dir/sched/explore_property_test.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/explore_property_test.cc.o.d"
  "/root/repo/tests/sched/explore_test.cc" "tests/CMakeFiles/test_sched.dir/sched/explore_test.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/explore_test.cc.o.d"
  "/root/repo/tests/sched/por_test.cc" "tests/CMakeFiles/test_sched.dir/sched/por_test.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/por_test.cc.o.d"
  "/root/repo/tests/sched/scheduler_test.cc" "tests/CMakeFiles/test_sched.dir/sched/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/scheduler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cac_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/cac_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cac_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/cac_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/programs/CMakeFiles/cac_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cac_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/cac_check.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/cac_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/vcgen/CMakeFiles/cac_vcgen.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/cac_test_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
