file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/explore_property_test.cc.o"
  "CMakeFiles/test_sched.dir/sched/explore_property_test.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/explore_test.cc.o"
  "CMakeFiles/test_sched.dir/sched/explore_test.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/por_test.cc.o"
  "CMakeFiles/test_sched.dir/sched/por_test.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/scheduler_test.cc.o"
  "CMakeFiles/test_sched.dir/sched/scheduler_test.cc.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
