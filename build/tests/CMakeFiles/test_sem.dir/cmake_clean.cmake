file(REMOVE_RECURSE
  "CMakeFiles/test_sem.dir/sem/config_test.cc.o"
  "CMakeFiles/test_sem.dir/sem/config_test.cc.o.d"
  "CMakeFiles/test_sem.dir/sem/state_test.cc.o"
  "CMakeFiles/test_sem.dir/sem/state_test.cc.o.d"
  "CMakeFiles/test_sem.dir/sem/step_test.cc.o"
  "CMakeFiles/test_sem.dir/sem/step_test.cc.o.d"
  "CMakeFiles/test_sem.dir/sem/warp_test.cc.o"
  "CMakeFiles/test_sem.dir/sem/warp_test.cc.o.d"
  "CMakeFiles/test_sem.dir/sem/width_test.cc.o"
  "CMakeFiles/test_sem.dir/sem/width_test.cc.o.d"
  "test_sem"
  "test_sem.pdb"
  "test_sem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
