# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ptx[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_sem[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_check[1]_include.cmake")
include("/root/repo/build/tests/test_sym[1]_include.cmake")
include("/root/repo/build/tests/test_vcgen[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
