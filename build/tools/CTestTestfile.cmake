# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cacval_check_vecadd "/root/repo/build/tools/cacval" "check" "/root/repo/tools/../tests/data/vecadd.ptx" "--block" "4" "--warp" "2" "--global" "1024" "--param" "arr_A=0x100" "--param" "arr_B=0x200" "--param" "arr_C=0x300" "--param" "size=4" "--init" "0x100=1" "--init" "0x104=2" "--init" "0x108=3" "--init" "0x10c=4" "--init" "0x200=10" "--init" "0x204=20" "--init" "0x208=30" "--init" "0x20c=40" "--expect" "0x300=11" "--expect" "0x304=22" "--expect" "0x308=33" "--expect" "0x30c=44" "--independent" "--exact-steps" "44")
set_tests_properties(cacval_check_vecadd PROPERTIES  PASS_REGULAR_EXPRESSION "proved" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cacval_races_detects "/root/repo/build/tools/cacval" "races" "/root/repo/tools/../tests/data/racy.ptx" "--grid" "2" "--block" "1" "--warp" "1" "--global" "64" "--param" "out=0")
set_tests_properties(cacval_races_detects PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cacval_validate_vecadd "/root/repo/build/tools/cacval" "validate" "/root/repo/tools/../tests/data/vecadd.ptx" "--block" "4" "--warp" "2" "--global" "1024" "--param" "arr_A=0x100" "--param" "arr_B=0x200" "--param" "arr_C=0x300" "--param" "size=4" "--init" "0x100=1" "--init" "0x200=2" "--expect" "0x300=3" "--por")
set_tests_properties(cacval_validate_vecadd PROPERTIES  PASS_REGULAR_EXPRESSION "VERDICT: validated" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cacval_equiv_self "/root/repo/build/tools/cacval" "equiv" "/root/repo/tools/../tests/data/vecadd.ptx" "/root/repo/tools/../tests/data/vecadd.ptx" "--block" "8" "--warp" "8")
set_tests_properties(cacval_equiv_self PROPERTIES  PASS_REGULAR_EXPRESSION "PROVED" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cacval_equiv_different_fails "/root/repo/build/tools/cacval" "equiv" "/root/repo/tools/../tests/data/vecadd.ptx" "/root/repo/tools/../tests/data/racy.ptx" "--block" "2" "--warp" "2")
set_tests_properties(cacval_equiv_different_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cacval_run_profile "/root/repo/build/tools/cacval" "run" "/root/repo/tools/../tests/data/vecadd.ptx" "--block" "8" "--global" "1024" "--param" "arr_A=0x100" "--param" "arr_B=0x200" "--param" "arr_C=0x300" "--param" "size=8" "--profile")
set_tests_properties(cacval_run_profile PROPERTIES  PASS_REGULAR_EXPRESSION "terminated" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
