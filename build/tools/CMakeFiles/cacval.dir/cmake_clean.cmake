file(REMOVE_RECURSE
  "CMakeFiles/cacval.dir/cacval.cpp.o"
  "CMakeFiles/cacval.dir/cacval.cpp.o.d"
  "cacval"
  "cacval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
