# Empty dependencies file for cacval.
# This may be replaced when dependencies are built.
