// Shared memory, barriers, and what the valid-bit memory model buys
// (paper §III-2): a block-level tree reduction, plus the two classic
// bugs the framework catches mechanically:
//
//  * missing bar.sync  -> schedule-dependent result, flagged both by
//    the valid-bit discipline (invalid reads) and by exhaustive
//    exploration (multiple terminal states);
//  * barrier divergence -> deadlock (paper §III-8), with a replayable
//    counterexample schedule re-validated through the trusted kernel.
#include <cstdio>

#include "check/model.h"
#include "check/trace.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "vcgen/prove.h"

using namespace cac;

namespace {

sem::Launch reduce_launch(const ptx::Program& prg,
                          const sem::KernelConfig& kc, std::uint32_t n) {
  sem::Launch launch(prg, kc, mem::MemSizes{256, 0, 256, 0, 1});
  launch.param("arr_A", 0).param("out", 128);
  for (std::uint32_t i = 0; i < n; ++i) launch.global_u32(4 * i, i * i + 1);
  return launch;
}

std::uint32_t expected_sum(std::uint32_t n) {
  std::uint32_t s = 0;
  for (std::uint32_t i = 0; i < n; ++i) s += i * i + 1;
  return s;
}

}  // namespace

int main() {
  std::printf("== reduce_shared: barriers and the valid-bit model ==\n\n");

  const ptx::Program good =
      ptx::load_ptx(programs::reduce_shared_ptx()).kernel("reduce");
  const ptx::Program nobar =
      ptx::load_ptx(programs::reduce_shared_nobar_ptx()).kernel("reduce");

  // Concrete run: 8 threads, 2 warps of 4 (real inter-warp barrier).
  const sem::KernelConfig kc{{1, 1, 1}, {8, 1, 1}, 4};
  {
    sem::Machine m = reduce_launch(good, kc, 8).machine();
    sched::RoundRobinScheduler rr;
    const sched::RunResult r = sched::run(good, kc, m, rr);
    std::printf("correct kernel:   %s, out = %llu (expected %u), "
                "invalid reads: %zu\n",
                to_string(r.status).c_str(),
                static_cast<unsigned long long>(
                    m.memory.load(mem::Space::Global, 128, 4)),
                expected_sum(8), r.events.invalid_reads.size());
  }
  {
    sem::Machine m = reduce_launch(nobar, kc, 8).machine();
    sched::FirstChoiceScheduler fc;  // runs warp 0 to completion first
    const sched::RunResult r = sched::run(nobar, kc, m, fc);
    std::printf("barriers removed: %s, out = %llu (expected %u), "
                "invalid reads: %zu  <-- bug visible twice\n\n",
                to_string(r.status).c_str(),
                static_cast<unsigned long long>(
                    m.memory.load(mem::Space::Global, 128, 4)),
                expected_sum(8), r.events.invalid_reads.size());
  }

  // All-schedules proofs on a 2-warp exhaustive configuration.
  const sem::KernelConfig kc2{{1, 1, 1}, {4, 1, 1}, 2};
  {
    check::Spec post;
    post.mem_u32(mem::Space::Global, 128, expected_sum(4));
    check::ModelCheckOptions opts;
    opts.require_schedule_independence = true;
    const check::Verdict v = check::prove_total(
        good, kc2, reduce_launch(good, kc2, 4).machine(), post, opts);
    std::printf("with barriers, every schedule: %s\n  %s\n",
                to_string(v.kind).c_str(), v.detail.c_str());
  }
  {
    check::ModelCheckOptions opts;
    opts.require_schedule_independence = true;
    const check::Verdict v = check::prove_total(
        nobar, kc2, reduce_launch(nobar, kc2, 4).machine(), check::Spec{},
        opts);
    std::printf("without barriers:              %s\n  %s\n\n",
                to_string(v.kind).c_str(), v.detail.c_str());
  }

  // For ALL inputs: the block-level symbolic engine proves out[0] is
  // the exact addition tree over arbitrary A — barriers, Shared
  // traffic and divergence included.
  {
    const sem::KernelConfig kcs{{1, 1, 1}, {8, 1, 1}, 4};
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, good);
    const vcgen::ProofResult p = vcgen::prove_block_writes(
        good, kcs, env, [](sym::TermArena& a) {
          std::vector<sym::TermRef> v;
          for (unsigned i = 0; i < 8; ++i) {
            v.push_back(a.var("arr_A[" + std::to_string(4 * i) + "]", 32));
          }
          for (unsigned offset = 4; offset; offset >>= 1) {
            for (unsigned i = 0; i < offset; ++i) {
              v[i] = a.add(v[i + offset], v[i]);
            }
          }
          return std::vector<sym::SymWrite>{{"out", 0, 4, v[0]}};
        });
    std::printf("for-all-inputs sum tree (2 warps, symbolic A): %s (%s)\n\n",
                p.proved ? "PROVED" : "REFUTED", p.detail.c_str());
  }

  // Barrier divergence (paper §III-8): deadlock + verified witness.
  {
    const ptx::Program dead = ptx::load_ptx(programs::barrier_divergence_ptx())
                                  .kernel("barrier_divergence");
    const sem::KernelConfig kc3{{1, 1, 1}, {4, 1, 1}, 4};
    const sem::Machine init =
        sem::Launch(dead, kc3, mem::MemSizes{}).machine();
    const check::Verdict v = check::prove_termination(dead, kc3, init);
    std::printf("barrier-divergence kernel: %s\n  %s",
                to_string(v.kind).c_str(), v.detail.c_str());
    const check::ReplayResult rep =
        check::replay(dead, kc3, init, v.counterexample);
    std::printf("  counterexample schedule (%zu steps) replayed through the "
                "trusted kernel: %s, stuck=%s\n",
                v.counterexample.size(), rep.valid ? "valid" : "INVALID",
                rep.final_stuck ? "yes" : "no");
  }
  return 0;
}
