// GPU virus scanning (paper §I motivation): every thread tests whether
// a byte signature occurs at its offset of a data buffer, writing a
// match bitmap.  Validated concretely, over all schedules, and
// symbolically (arbitrary buffer and signature *contents*; lengths are
// concrete, as loop trip counts must be).
#include <cstdio>
#include <string>

#include "check/model.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "vcgen/prove.h"

using namespace cac;

namespace {
constexpr std::uint64_t kData = 0x000, kPat = 0x100, kOut = 0x180;
}

int main() {
  const ptx::Program prg = ptx::load_ptx(programs::scan_signature_ptx())
                               .kernel("scan_signature");
  const std::string data = "EICAR<virus>EICAR...EICAR";
  const std::string sig = "EICAR";
  const auto dlen = static_cast<std::uint32_t>(data.size());
  const auto plen = static_cast<std::uint32_t>(sig.size());

  std::printf("== scan_signature: parallel byte-signature scan ==\n\n");
  std::printf("data: \"%s\"\nsig:  \"%s\"\n\n", data.c_str(), sig.c_str());

  const sem::KernelConfig kc{{1, 1, 1}, {dlen, 1, 1}, 32};
  sem::Launch launch(prg, kc, mem::MemSizes{0x200, 0, 0, 0, 1});
  launch.param("data", kData).param("pattern", kPat).param("out", kOut)
      .param("dlen", dlen).param("plen", plen);
  launch.memory().write_init(mem::Space::Global, kData, data.data(),
                             data.size());
  launch.memory().write_init(mem::Space::Global, kPat, sig.data(),
                             sig.size());
  sem::Machine m = launch.machine();
  sched::RoundRobinScheduler rr;
  const sched::RunResult run = sched::run(prg, kc, m, rr);
  std::printf("run: %s in %llu steps; matches at:",
              to_string(run.status).c_str(),
              static_cast<unsigned long long>(run.steps));
  for (std::uint32_t i = 0; i + plen <= dlen; ++i) {
    if (m.memory.load(mem::Space::Global, kOut + i, 1) == 1) {
      std::printf(" %u", i);
    }
  }
  std::printf("\n\n");

  // All-schedules total correctness on a small exhaustive config.
  {
    const std::string d2 = "ababab";
    const sem::KernelConfig kc2{{1, 1, 1}, {6, 1, 1}, 3};  // 2 warps
    sem::Launch l2(prg, kc2, mem::MemSizes{0x200, 0, 0, 0, 1});
    l2.param("data", kData).param("pattern", kPat).param("out", kOut)
        .param("dlen", 6).param("plen", 2);
    l2.memory().write_init(mem::Space::Global, kData, d2.data(), d2.size());
    l2.memory().write_init(mem::Space::Global, kPat, "ab", 2);
    check::Spec post;
    for (std::uint32_t i = 0; i + 2 <= 6; ++i) {
      post.mem_u8(mem::Space::Global, kOut + i, i % 2 == 0 ? 1 : 0);
    }
    check::ModelCheckOptions opts;
    opts.require_schedule_independence = true;
    const check::Verdict v =
        check::prove_total(prg, kc2, l2.machine(), post, opts);
    std::printf("all-schedules total correctness (\"%s\" / \"ab\"): %s\n"
                "  %s\n\n",
                d2.c_str(), to_string(v.kind).c_str(), v.detail.c_str());
  }

  // Symbolic: arbitrary data/signature bytes, concrete lengths.
  {
    sym::TermArena arena;
    sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    env.bind(prg, "dlen", 8);
    env.bind(prg, "plen", 3);
    vcgen::GuardedWriteSpec spec;
    spec.guard = nullptr;  // concretized by dlen/plen
    spec.writes = [](sym::TermArena& a,
                     std::uint32_t tid) -> std::vector<sym::SymWrite> {
      if (tid > 5) return {};  // i > dlen - plen
      sym::TermRef match = a.konst(1, 32);
      for (unsigned j = 0; j < 3; ++j) {
        const sym::TermRef d =
            a.var("data[" + std::to_string(tid + j) + "]", 8);
        const sym::TermRef p = a.var("pattern[" + std::to_string(j) + "]", 8);
        match = a.ite(a.ne(a.zext(d, 32), a.zext(p, 32)), a.konst(0, 32),
                      match);
      }
      return {{"out", tid, 1, a.trunc(match, 8)}};
    };
    const vcgen::ProofResult p = vcgen::prove_guarded_writes(
        prg, {{1, 1, 1}, {8, 1, 1}, 8}, env, spec);
    std::printf("for-all-contents match-flag proof (dlen=8, plen=3): %s\n"
                "  %s\n",
                p.proved ? "PROVED" : "REFUTED", p.detail.c_str());
  }
  return 0;
}
