// Quickstart: the paper's §IV walk-through, end to end.
//
//  1. Parse the verbatim vector-sum PTX of Listing 1.
//  2. Lower it to the formal model (the Listing 2 translation),
//     with Sync inserted mechanically at the reconvergence point.
//  3. Run it concretely under a deterministic scheduler.
//  4. Machine-check the paper's theorems:
//       - add_vector_terminates (19 grid steps, every schedule),
//       - partial correctness A + B = C over every schedule,
//       - for-all-inputs partial correctness via symbolic execution.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "check/model.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "vcgen/prove.h"

using namespace cac;

int main() {
  std::printf("== CUDA au C++: quickstart (the paper's §IV walk-through) ==\n\n");

  // 1+2. Parse and lower Listing 1.
  const ptx::LoweredModule mod = ptx::load_ptx(programs::vector_add_ptx());
  const ptx::Program& mech = mod.kernel("add_vector");
  std::printf("Lowered %s: %zu instructions (Listing 2 had 20; ours keeps\n"
              "the three cvta Movs the authors dropped by hand)\n\n%s\n",
              mech.name().c_str(), mech.size(),
              ptx::to_string(mech).c_str());

  // The paper's hand translation, instruction for instruction.
  const ptx::Program hand = programs::vector_add_listing2();

  // 3. Concrete run at the paper's configuration kc = ((1,1,1),(32,1,1)).
  //    LaunchSpec is the declarative launch surface shared with cacval
  //    and the benches (the flags --grid/--block/--param/--init map to
  //    these fields one for one).
  const programs::VecAddLayout L;
  sem::LaunchSpec spec;
  spec.block = {32, 1, 1};
  spec.global_bytes = L.global_bytes;
  spec.shared_bytes = 0;
  spec.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                 {"size", 32}};
  for (std::uint32_t i = 0; i < 32; ++i) {
    spec.inits.emplace_back(L.a + 4 * i, i);
    spec.inits.emplace_back(L.b + 4 * i, 100 * i);
  }
  const sem::KernelConfig kc = spec.to_config();
  sem::Launch launch = spec.to_launch(hand);
  sem::Machine m = launch.machine();
  sched::FirstChoiceScheduler det;
  const sched::RunResult run = sched::run(hand, kc, m, det);
  std::printf("Concrete run: %s after %llu grid steps (paper: 19)\n",
              to_string(run.status).c_str(),
              static_cast<unsigned long long>(run.steps));
  std::printf("  C[7] = %llu (expected %u)\n\n",
              static_cast<unsigned long long>(
                  m.memory.load(mem::Space::Global, L.c + 28, 4)),
              7 + 700);

  // 4a. add_vector_terminates: every schedule, exactly 19 steps.
  //     (Exhaustive exploration needs a finite schedule space; with a
  //     single warp it is a chain, with two warps a true lattice.)
  {
    sem::LaunchSpec spec2;
    spec2.block = {8, 1, 1};
    spec2.warp_size = 4;  // two warps
    spec2.global_bytes = L.global_bytes;
    spec2.shared_bytes = 0;
    spec2.params = {{"arr_A", L.a}, {"arr_B", L.b}, {"arr_C", L.c},
                    {"size", 8}};
    for (std::uint32_t i = 0; i < 8; ++i) {
      spec2.inits.emplace_back(L.a + 4 * i, i);
      spec2.inits.emplace_back(L.b + 4 * i, 100 * i);
    }
    const sem::KernelConfig kc2 = spec2.to_config();
    sem::Launch l2 = spec2.to_launch(hand);
    check::Spec post;
    for (std::uint32_t i = 0; i < 8; ++i) {
      post.mem_u32(mem::Space::Global, L.c + 4 * i, i + 100 * i);
    }
    check::ModelCheckOptions opts;
    opts.expect_exact_steps = 38;  // 2 warps x 19
    opts.require_schedule_independence = true;
    const check::Verdict v =
        check::prove_total(hand, kc2, l2.machine(), post, opts);
    std::printf("Total correctness over ALL schedules (2 warps): %s\n  %s\n\n",
                to_string(v.kind).c_str(), v.detail.c_str());
  }

  // 4b. For-all-inputs partial correctness (symbolic execution): the
  //     arrays' contents and `size` are left symbolic.
  {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, hand);
    vcgen::GuardedWriteSpec spec;
    spec.guard = [](sym::TermArena& a, std::uint32_t tid) {
      return a.lt(a.konst(tid, 32), a.var("size", 32), true);
    };
    spec.writes = [](sym::TermArena& a, std::uint32_t tid) {
      const std::string i = std::to_string(4 * tid);
      return std::vector<sym::SymWrite>{
          {"arr_C", 4ull * tid, 4,
           a.add(a.var("arr_A[" + i + "]", 32),
                 a.var("arr_B[" + i + "]", 32))}};
    };
    const vcgen::ProofResult p = vcgen::prove_guarded_writes(
        hand, {{1, 1, 1}, {32, 1, 1}, 32}, env, spec);
    std::printf("For-all-inputs A+B=C (32 threads, symbolic size & data):\n"
                "  %s (%s)\n\n",
                p.proved ? "PROVED" : "REFUTED", p.detail.c_str());

    // 4c. And the translation-validation bonus: the mechanical lowering
    //     of Listing 1 is equivalent to the paper's hand translation.
    const vcgen::ProofResult eq = vcgen::prove_equivalent(
        mech, hand, {{1, 1, 1}, {32, 1, 1}, 32}, env);
    std::printf("Listing 1 (mechanical) == Listing 2 (hand): %s (%s)\n",
                eq.proved ? "PROVED" : "REFUTED", eq.detail.c_str());
  }
  return 0;
}
