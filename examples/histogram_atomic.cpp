// Contended atomics: a parallel byte histogram (hist[b & mask]++ via
// atom.add), validated three ways:
//
//  * concrete multi-block run checked against a host-side histogram,
//  * the race detector confirms contended atom.adds are not races
//    (the paper's §III-2 atomics carve-out),
//  * the model checker proves the final counts are identical on every
//    schedule of a small configuration — atomics commute even though
//    each thread's fetched old value differs per schedule.
#include <cstdio>
#include <string>

#include "check/model.h"
#include "check/race.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

using namespace cac;

namespace {
constexpr std::uint64_t kData = 0x000, kHist = 0x100;
constexpr std::uint32_t kBins = 8;
}

int main() {
  const ptx::Program prg =
      ptx::load_ptx(programs::histogram_ptx()).kernel("histogram");
  const std::string data = "the quick brown gpu jumps over the lazy cpu";
  const auto n = static_cast<std::uint32_t>(data.size());

  std::printf("== histogram_atomic: contended atom.add ==\n\n");

  // Concrete run: 4 blocks x 16 threads (partially out of range).
  const sem::KernelConfig kc{{4, 1, 1}, {16, 1, 1}, 8};
  sem::Launch launch(prg, kc, mem::MemSizes{0x200, 0, 0, 0, 1});
  launch.param("data", kData).param("hist", kHist).param("size", n)
      .param("mask", kBins - 1);
  launch.memory().write_init(mem::Space::Global, kData, data.data(),
                             data.size());
  for (std::uint32_t b = 0; b < kBins; ++b) launch.global_u32(kHist + 4 * b, 0);

  sem::Machine m = launch.machine();
  sched::RandomScheduler rnd(7);
  check::RaceReport rr = check::detect_races(prg, kc, m, rnd);
  std::printf("run: %s; races: %s\n\nbin  device  host\n",
              to_string(rr.run.status).c_str(), rr.summary().c_str());

  std::uint32_t host[kBins] = {};
  for (char c : data) ++host[static_cast<std::uint8_t>(c) & (kBins - 1)];
  bool all_ok = true;
  for (std::uint32_t b = 0; b < kBins; ++b) {
    const std::uint64_t dev = m.memory.load(mem::Space::Global, kHist + 4 * b, 4);
    all_ok &= dev == host[b];
    std::printf("%3u  %6llu  %4u%s\n", b,
                static_cast<unsigned long long>(dev), host[b],
                dev == host[b] ? "" : "  MISMATCH");
  }
  std::printf("%s\n\n", all_ok ? "device == host" : "MISMATCH");

  // All-schedules proof on a small exhaustive configuration.
  {
    const std::string d2 = "abcabb";
    const sem::KernelConfig kc2{{2, 1, 1}, {4, 1, 1}, 2};  // 4 warps total
    sem::Launch l2(prg, kc2, mem::MemSizes{0x200, 0, 0, 0, 1});
    l2.param("data", kData).param("hist", kHist)
        .param("size", d2.size()).param("mask", 3);
    l2.memory().write_init(mem::Space::Global, kData, d2.data(), d2.size());
    for (std::uint32_t b = 0; b < 4; ++b) l2.global_u32(kHist + 4 * b, 0);

    check::Spec post;
    std::uint32_t expect[4] = {};
    for (char c : d2) ++expect[static_cast<std::uint8_t>(c) & 3];
    for (std::uint32_t b = 0; b < 4; ++b) {
      post.mem_u32(mem::Space::Global, kHist + 4 * b, expect[b]);
      post.mem_valid(mem::Space::Global, kHist + 4 * b, 4);
    }
    const check::Verdict v = check::prove_total(prg, kc2, l2.machine(), post);
    std::printf("all-schedules count correctness (\"%s\", 4 bins): %s\n"
                "  %s\n",
                d2.c_str(), to_string(v.kind).c_str(), v.detail.c_str());
  }
  return all_ok ? 0 : 1;
}
