// GPU cryptography (paper §I motivation): a keystream XOR cipher,
// validated three ways:
//
//  * concrete encrypt -> decrypt round trip,
//  * scheduler transparency (all schedules agree with the
//    deterministic one) on a small exhaustive configuration,
//  * for-all-inputs symbolic proof that C[i] = A[i] ^ B[i] — i.e. the
//    ciphertext is exactly plaintext xor keystream for ANY key, ANY
//    plaintext and ANY message length.
#include <cstdio>
#include <string>

#include "check/transparency.h"
#include "programs/corpus.h"
#include "ptx/lower.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "vcgen/prove.h"

using namespace cac;

namespace {

constexpr std::uint64_t kPlain = 0x000, kKey = 0x100, kCipher = 0x200;

sem::Launch make_launch(const ptx::Program& prg, const sem::KernelConfig& kc,
                        std::uint64_t in, std::uint64_t out,
                        std::uint32_t n) {
  sem::Launch launch(prg, kc, mem::MemSizes{0x300, 0, 0, 0, 1});
  launch.param("arr_A", in).param("arr_B", kKey).param("arr_C", out).param(
      "size", n);
  return launch;
}

}  // namespace

int main() {
  const ptx::Program prg =
      ptx::load_ptx(programs::xor_cipher_ptx()).kernel("xor_cipher");
  const std::string message = "CUDA au Coq in C++!!";
  const auto n = static_cast<std::uint32_t>((message.size() + 3) / 4);

  std::printf("== crypto_xor: one-time-pad keystream cipher ==\n\n");

  // Encrypt.
  const sem::KernelConfig kc{{1, 1, 1}, {n, 1, 1}, 32};
  sem::Launch enc = make_launch(prg, kc, kPlain, kCipher, n);
  enc.memory().write_init(mem::Space::Global, kPlain, message.data(),
                          message.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    enc.global_u32(kKey + 4 * i, 0x9e3779b9u * (i + 1));  // keystream
  }
  sem::Machine m1 = enc.machine();
  sched::RoundRobinScheduler rr;
  if (!sched::run(prg, kc, m1, rr).terminated()) return 1;
  std::printf("ciphertext: ");
  for (std::uint32_t i = 0; i < message.size(); ++i) {
    std::printf("%02x",
                static_cast<unsigned>(
                    m1.memory.load(mem::Space::Global, kCipher + i, 1)));
  }
  std::printf("\n");

  // Decrypt: run the same kernel on the ciphertext.
  sem::Launch dec = make_launch(prg, kc, kCipher, kPlain, n);
  for (std::uint32_t i = 0; i < 4 * n; ++i) {
    const std::uint8_t byte =
        m1.memory.cell(mem::Space::Global, kCipher + i).byte;
    dec.memory().write_init(mem::Space::Global, kCipher + i, &byte, 1);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    dec.global_u32(kKey + 4 * i, 0x9e3779b9u * (i + 1));
  }
  sem::Machine m2 = dec.machine();
  sched::RandomScheduler rnd(2024);
  if (!sched::run(prg, kc, m2, rnd).terminated()) return 1;
  std::string round_trip;
  for (std::uint32_t i = 0; i < message.size(); ++i) {
    round_trip += static_cast<char>(
        m2.memory.load(mem::Space::Global, kPlain + i, 1));
  }
  std::printf("decrypted:  \"%s\" (%s)\n\n", round_trip.c_str(),
              round_trip == message ? "round trip OK" : "MISMATCH");

  // Scheduler transparency on an exhaustively explorable config.
  {
    const sem::KernelConfig kc2{{1, 1, 1}, {4, 1, 1}, 2};  // 2 warps
    sem::Launch l = make_launch(prg, kc2, kPlain, kCipher, 4);
    for (std::uint32_t i = 0; i < 4; ++i) {
      l.global_u32(kPlain + 4 * i, 0x41424344 + i);
      l.global_u32(kKey + 4 * i, 0x13371337 * (i + 1));
    }
    const check::TransparencyResult t =
        check::check_scheduler_transparency(prg, kc2, l.machine());
    std::printf("scheduler transparency (2 warps, every schedule): %s\n"
                "  %s\n\n",
                t.holds ? "HOLDS" : "FAILS", t.detail.c_str());
  }

  // For-all-inputs proof: ciphertext == plaintext ^ keystream.
  {
    sym::TermArena arena;
    const sym::SymEnv env = sym::SymEnv::symbolic(arena, prg);
    vcgen::GuardedWriteSpec spec;
    spec.guard = [](sym::TermArena& a, std::uint32_t tid) {
      return a.lt(a.konst(tid, 32), a.var("size", 32), false);
    };
    spec.writes = [](sym::TermArena& a, std::uint32_t tid) {
      const std::string i = std::to_string(4 * tid);
      return std::vector<sym::SymWrite>{
          {"arr_C", 4ull * tid, 4,
           a.bxor(a.var("arr_A[" + i + "]", 32),
                  a.var("arr_B[" + i + "]", 32))}};
    };
    const vcgen::ProofResult p = vcgen::prove_guarded_writes(
        prg, {{1, 1, 1}, {32, 1, 1}, 32}, env, spec);
    std::printf("for-all-inputs C = A ^ B: %s (%s)\n",
                p.proved ? "PROVED" : "REFUTED", p.detail.c_str());
  }
  return 0;
}
